module netmax

go 1.24
