module netmax

go 1.23
