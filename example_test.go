package netmax_test

import (
	"fmt"

	"netmax"
	"netmax/internal/simnet"
)

// ExampleTrain trains NetMax on a small heterogeneous cluster. Virtual time
// depends only on the seeds, so the output is deterministic.
func ExampleTrain() {
	train, test := netmax.Dataset(netmax.SynthMNIST, 1)
	cfg := netmax.ClusterConfig(netmax.SimMobileNet, train, test, 4, 4, 1)
	r := netmax.Train(cfg, netmax.Options{})
	fmt.Println("epochs:", r.Epochs)
	fmt.Println("learned:", r.FinalAccuracy > 0.9)
	// Output:
	// epochs: 4
	// learned: true
}

// ExampleGeneratePolicy shows Algorithm 3 preferring a fast link.
func ExampleGeneratePolicy() {
	// Worker 0 reaches worker 1 in 1s but worker 2 only in 10s.
	times := [][]float64{
		{0, 1, 10},
		{1, 0, 1},
		{10, 1, 0},
	}
	pol, err := netmax.GeneratePolicy(times, simnet.FullyConnected(3), 0.1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("fast neighbor preferred:", pol.P[0][1] > pol.P[0][2])
	fmt.Println("policy converges:", pol.Lambda2 < 1)
	// Output:
	// fast neighbor preferred: true
	// policy converges: true
}

// ExampleTrain_churn injects a declarative failure schedule into a
// simulated run: worker 1 crashes and rejoins, worker 2 hangs
// (undetectable), and the monitor's liveness tracking routes around both.
func ExampleTrain_churn() {
	train, test := netmax.Dataset(netmax.SynthMNIST, 1)
	cfg := netmax.ClusterConfig(netmax.SimMobileNet, train, test, 4, 3, 1)
	cfg.Failures = netmax.NewFailureSchedule().
		Crash(1, 2, 4). // worker 1 down for 2 virtual seconds
		Hang(2, 1, 3)   // worker 2 freezes (no membership event)
	r := netmax.Train(cfg, netmax.Options{StalePeriods: 2})
	fmt.Println("epochs:", r.Epochs)
	fmt.Println("survived and learned:", r.FinalAccuracy > 0.9)
	// Output:
	// epochs: 3
	// survived and learned: true
}

// ExampleRunScenario drives a run from a declarative manifest instead of
// code: the JSON fully describes the workload, and the report carries the
// resolved (fully-defaulted) manifest that reproduces it.
func ExampleRunScenario() {
	manifest := []byte(`{
	  "name": "quickstart",
	  "model": "MobileNet",
	  "dataset": "MNIST",
	  "workers": 4,
	  "epochs": 4
	}`)
	sc, err := netmax.ParseScenario(manifest)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := netmax.RunScenario(sc, netmax.ScenarioRunOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("algorithm:", rep.Manifest.Algorithm)
	fmt.Println("epochs:", rep.Engine.Epochs)
	fmt.Println("learned:", rep.Engine.FinalAccuracy > 0.9)
	// Output:
	// algorithm: netmax
	// epochs: 4
	// learned: true
}

// ExampleParseScenario_invalid shows the manifest validator rejecting a
// cross-field inconsistency: a crash scheduled after its own rejoin.
func ExampleParseScenario_invalid() {
	_, err := netmax.ParseScenario([]byte(`{
	  "name": "bad",
	  "failures": {"events": [{"kind": "crash", "worker": 1, "at": 9, "rejoin": 5}]}
	}`))
	fmt.Println(err)
	// Output:
	// scenario "bad": failure event 0: crash rejoin (5) must come after the crash (9); use kind "leave" for a permanent crash
}

// ExampleRunSuite runs a multi-arm, multi-seed comparison from one suite
// document: a base manifest expanded over two algorithm arms and two
// replication seeds, summarized per arm in a joint table.
func ExampleRunSuite() {
	suite := []byte(`{
	  "name": "quickcompare",
	  "base": {"manifest": {
	    "name": "base",
	    "model": "MobileNet",
	    "dataset": "MNIST",
	    "workers": 4,
	    "epochs": 2,
	    "network": {"kind": "static"}
	  }},
	  "grid": {
	    "algorithms": ["netmax", "adpsgd"],
	    "replicate": {"n": 2}
	  }
	}`)
	s, err := netmax.ParseSuite(suite)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep, err := netmax.RunSuite(s, netmax.SuiteRunOptions{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("runs:", len(rep.Reports))
	for _, arm := range rep.Table.Arms {
		fmt.Printf("%s: n=%d, learned=%v\n", arm.Arm, arm.N, arm.FinalLoss.Mean < 0.5)
	}
	// Output:
	// runs: 4
	// netmax: n=2, learned=true
	// adpsgd: n=2, learned=true
}

// ExampleExperiment regenerates a paper figure programmatically.
func ExampleExperiment() {
	res, err := netmax.Experiment("fig3", 1, true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("id:", res.ID)
	fmt.Println("rows:", len(res.Rows))
	// Output:
	// id: fig3
	// rows: 2
}
