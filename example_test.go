package netmax_test

import (
	"fmt"

	"netmax"
	"netmax/internal/simnet"
)

// ExampleTrain trains NetMax on a small heterogeneous cluster. Virtual time
// depends only on the seeds, so the output is deterministic.
func ExampleTrain() {
	train, test := netmax.Dataset(netmax.SynthMNIST, 1)
	cfg := netmax.ClusterConfig(netmax.SimMobileNet, train, test, 4, 4, 1)
	r := netmax.Train(cfg, netmax.Options{})
	fmt.Println("epochs:", r.Epochs)
	fmt.Println("learned:", r.FinalAccuracy > 0.9)
	// Output:
	// epochs: 4
	// learned: true
}

// ExampleGeneratePolicy shows Algorithm 3 preferring a fast link.
func ExampleGeneratePolicy() {
	// Worker 0 reaches worker 1 in 1s but worker 2 only in 10s.
	times := [][]float64{
		{0, 1, 10},
		{1, 0, 1},
		{10, 1, 0},
	}
	pol, err := netmax.GeneratePolicy(times, simnet.FullyConnected(3), 0.1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("fast neighbor preferred:", pol.P[0][1] > pol.P[0][2])
	fmt.Println("policy converges:", pol.Lambda2 < 1)
	// Output:
	// fast neighbor preferred: true
	// policy converges: true
}

// ExampleExperiment regenerates a paper figure programmatically.
func ExampleExperiment() {
	res, err := netmax.Experiment("fig3", 1, true)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("id:", res.ID)
	fmt.Println("rows:", len(res.Rows))
	// Output:
	// id: fig3
	// rows: 2
}
