// Package netmax is a from-scratch Go reproduction of "Communication-
// efficient Decentralized Machine Learning over Heterogeneous Networks"
// (Zhou et al., ICDE 2021): the NetMax consensus-SGD algorithm, its Network
// Monitor and communication-policy generator, the decentralized and
// centralized baselines it is evaluated against, and a discrete-event
// heterogeneous-network simulator that regenerates every table and figure
// of the paper's evaluation.
//
// Quick start:
//
//	train, test := netmax.Dataset(netmax.SynthCIFAR10, 1)
//	cfg := netmax.ClusterConfig(netmax.SimResNet18, train, test, 8, 40, 1)
//	result := netmax.Train(cfg, netmax.Options{})
//	fmt.Println(result.FinalAccuracy, result.TotalTime)
//
// See the examples directory for runnable scenarios and cmd/netmax-bench
// for the experiment harness.
//
// # Performance
//
// The compute core scales with the host: large tensor products shard across
// a persistent worker pool, the autograd tape reuses buffers from a
// size-keyed arena instead of allocating per op, and the discrete-event
// engine steps workers whose events are independent at the same virtual
// timestamp concurrently. All of it is bitwise deterministic — results are
// identical at any parallelism, only wall-clock changes. Config.Parallelism
// (or Options.Parallelism for NetMax runs) bounds the concurrency: 0 means
// one worker per CPU, 1 reproduces the serial loop. cmd/netmax-bench -par
// pins it process-wide and -bench-out records the perf trajectory (see
// BENCH_baseline.json / BENCH_pr1.json and README.md for the buffer-pool
// lifecycle rules).
package netmax

import (
	"netmax/internal/baselines"
	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/experiments"
	"netmax/internal/nn"
	"netmax/internal/policy"
	"netmax/internal/scenario"
	"netmax/internal/simnet"
)

// Config describes one training run (model, data partition, network,
// hyper-parameters). See engine.Config for field documentation.
type Config = engine.Config

// Result aggregates the metrics of a run: loss curve, accuracy, virtual
// wall-clock, and the computation/communication cost decomposition.
type Result = engine.Result

// Point is one sample of a training curve.
type Point = engine.Point

// Options tunes NetMax (monitor period Ts, EMA beta, policy grid size,
// ablation switches).
type Options = core.Options

// Policy is a generated communication policy (P, rho, lambda2, predicted
// convergence time).
type Policy = policy.Policy

// FailureSchedule is a deterministic schedule of churn events — crashes,
// hangs, permanent leaves, link blackouts — injected into a simulated run
// via Config.Failures. See internal/simnet.
type FailureSchedule = simnet.FailureSchedule

// NewFailureSchedule returns an empty churn schedule; chain Crash, Hang,
// Leave and Blackout to populate it.
var NewFailureSchedule = simnet.NewFailureSchedule

// NewRandomChurn builds a deterministic random crash schedule (expected
// crashes per worker over the horizon, mean downtime seconds).
var NewRandomChurn = simnet.NewRandomChurn

// Model specs mirroring the paper's models (parameter counts and compute
// costs preserved; see internal/nn).
var (
	SimMobileNet = nn.SimMobileNet
	SimResNet18  = nn.SimResNet18
	SimResNet50  = nn.SimResNet50
	SimVGG19     = nn.SimVGG19
	SimGoogLeNet = nn.SimGoogLeNet
)

// Dataset specs substituting the paper's datasets (class counts preserved).
var (
	SynthMNIST        = data.SynthMNIST
	SynthCIFAR10      = data.SynthCIFAR10
	SynthCIFAR100     = data.SynthCIFAR100
	SynthTinyImageNet = data.SynthTinyImageNet
	SynthImageNet     = data.SynthImageNet
)

// Dataset materializes a dataset spec deterministically.
func Dataset(spec data.Spec, seed int64) (train, test *data.Dataset) {
	return spec.Generate(seed)
}

// ClusterConfig builds a ready-to-run heterogeneous-cluster configuration:
// `workers` nodes placed as in the paper (Section V-A), uniform data
// partition, the dynamic 2-100x slow-link schedule, and the paper's
// default hyper-parameters.
func ClusterConfig(spec nn.ModelSpec, train, test *data.Dataset, workers, epochs int, seed int64) *Config {
	evalN := 400
	if evalN > train.Len() {
		evalN = train.Len()
	}
	idx := make([]int, evalN)
	for i := range idx {
		idx[i] = i
	}
	topo := simnet.PaperCluster(workers)
	return &Config{
		Spec:         spec,
		Part:         data.Uniform(train, workers, seed),
		Eval:         train.Slice(idx),
		Test:         test,
		Net:          simnet.NewHeterogeneousPeriod(topo, seed, 1e7, experiments.SlowPeriod),
		LR:           0.1,
		Batch:        16,
		Epochs:       epochs,
		Seed:         seed,
		Overlap:      true,
		LRDecayEpoch: epochs * 7 / 10,
	}
}

// HomogeneousConfig is ClusterConfig on the single-server 10 Gbps network.
func HomogeneousConfig(spec nn.ModelSpec, train, test *data.Dataset, workers, epochs int, seed int64) *Config {
	cfg := ClusterConfig(spec, train, test, workers, epochs, seed)
	cfg.Net = simnet.NewHomogeneous(simnet.SingleMachine(workers))
	return cfg
}

// Train runs NetMax (consensus SGD + Network Monitor) and returns the
// aggregated result.
func Train(cfg *Config, opts Options) *Result {
	if opts.Ts <= 0 {
		opts.Ts = experiments.MonitorTs
	}
	return core.Run(cfg, opts)
}

// Baseline trainers, for comparisons on identical configurations.
var (
	// TrainADPSGD runs asynchronous decentralized parallel SGD [Lian et al.].
	TrainADPSGD = baselines.RunADPSGD
	// TrainAllreduce runs synchronous ring-allreduce SGD.
	TrainAllreduce = baselines.RunAllreduce
	// TrainPrague runs Prague-style randomized partial allreduce.
	TrainPrague = baselines.RunPrague
	// TrainPSSync runs a synchronous parameter server.
	TrainPSSync = baselines.RunPSSync
	// TrainPSAsync runs an asynchronous parameter server.
	TrainPSAsync = baselines.RunPSAsync
	// TrainGossip runs GoSGD-style uniform gossip.
	TrainGossip = baselines.RunGossip
	// TrainSAPS runs SAPS-PSGD on the static initially-fast subgraph.
	TrainSAPS = baselines.RunSAPS
	// TrainDLion runs DLion-style capacity-proportional partial transfers.
	TrainDLion = baselines.RunDLion
	// TrainSyncDPSGD runs synchronous D-PSGD neighborhood averaging.
	TrainSyncDPSGD = baselines.RunSyncDPSGD
)

// TrainHop runs Hop-style bounded-staleness gossip; staleness <= 0 selects
// the default bound.
func TrainHop(cfg *Config, staleness int) *Result {
	return baselines.RunHop(cfg, staleness)
}

// TrainADPSGDMonitor runs the Section III-D extension: AD-PSGD steered by
// the Network Monitor's adaptive policy.
func TrainADPSGDMonitor(cfg *Config, opts Options) *Result {
	if opts.Ts <= 0 {
		opts.Ts = experiments.MonitorTs
	}
	return core.RunADPSGDMonitor(cfg, opts)
}

// GeneratePolicy runs Algorithm 3 directly on an iteration-time matrix:
// times[i][m] is worker i's measured iteration time against neighbor m, adj
// is the communication graph, alpha the SGD learning rate.
func GeneratePolicy(times [][]float64, adj [][]bool, alpha float64) (*Policy, error) {
	return policy.Generate(policy.Input{Times: times, Adj: adj, Alpha: alpha})
}

// Experiment regenerates a paper table/figure by id (fig3..fig19, tab2,
// tab3, tab5, abl-*); see cmd/netmax-bench -list.
func Experiment(id string, seed int64, quick bool) (*experiments.Result, error) {
	return experiments.Run(id, experiments.Options{Seed: seed, Quick: quick})
}

// Scenario is a declarative manifest fully describing a run — runtime,
// algorithm, topology, network dynamics, partitioning, heterogeneity,
// failure schedule, codec, seeds. See internal/scenario and the checked-in
// library under scenarios/.
type Scenario = scenario.Manifest

// ScenarioReport is the outcome of one scenario run: the resolved manifest
// that actually ran plus the engine result or live stats.
type ScenarioReport = scenario.Report

// ScenarioRunOptions tunes RunScenario (quick overrides, output directory).
type ScenarioRunOptions = scenario.RunOptions

// LoadScenario reads, parses and validates a scenario manifest file;
// ParseScenario does the same from bytes. Both reject unknown fields.
var (
	LoadScenario  = scenario.Load
	ParseScenario = scenario.Parse
)

// RunScenario executes a manifest end to end and, when an output directory
// is configured, writes the fully-resolved manifest next to the results so
// the run is reproducible from one file.
func RunScenario(m *Scenario, opt ScenarioRunOptions) (*ScenarioReport, error) {
	return scenario.Run(m, opt)
}

// Suite is a declarative comparison: one JSON document describing N runs,
// either an explicit member list or a base manifest expanded over a grid of
// algorithm arms, codec arms and replication seeds. See internal/scenario
// and the suite-*.json files under scenarios/.
type Suite = scenario.Suite

// SuiteReport is the outcome of a suite run: the resolved explicit run
// list, the per-member reports, and the joint per-arm mean +/- stddev
// table.
type SuiteReport = scenario.SuiteReport

// SuiteRunOptions tunes RunSuite (quick overrides, output directory, and
// the bounded parallelism of the member-run driver).
type SuiteRunOptions = scenario.SuiteRunOptions

// SuiteTable is the joint comparison table of a suite run (the suite.json
// schema): one row per arm, metrics summarized as mean +/- sample stddev.
type SuiteTable = scenario.SuiteTable

// LoadSuite reads, parses and validates a suite file (member paths resolve
// relative to it); ParseSuite does the same from bytes. Both reject
// unknown fields and validate every run the suite expands to.
var (
	LoadSuite  = scenario.LoadSuite
	ParseSuite = scenario.ParseSuite
)

// RunSuite executes a suite end to end under the bounded-parallel driver
// and, when an output directory is configured, writes the explicit
// resolved run list (resolved-suite.json) and the joint table (suite.json)
// next to the per-run outputs, so a multi-arm multi-seed comparison is
// reproducible — bitwise, on the engine runtime — from one file.
func RunSuite(s *Suite, opt SuiteRunOptions) (*SuiteReport, error) {
	return scenario.RunSuite(s, opt)
}
