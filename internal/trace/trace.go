// Package trace exports training results in machine-readable formats so the
// regenerated figures can be plotted externally: CSV for single curves and
// JSON for full multi-series experiment results. Only the standard library
// encoders are used.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"netmax/internal/engine"
)

// WriteCurveCSV writes one training curve as epoch,time,value rows.
func WriteCurveCSV(w io.Writer, curve []engine.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"epoch", "time_seconds", "value"}); err != nil {
		return err
	}
	for _, p := range curve {
		rec := []string{
			strconv.FormatFloat(p.Epoch, 'g', -1, 64),
			strconv.FormatFloat(p.Time, 'g', -1, 64),
			strconv.FormatFloat(p.Value, 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCurvesCSV writes multiple labeled curves as series,epoch,time,value
// rows, series sorted by label for deterministic output.
func WriteCurvesCSV(w io.Writer, curves map[string][]engine.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "epoch", "time_seconds", "value"}); err != nil {
		return err
	}
	labels := make([]string, 0, len(curves))
	for k := range curves {
		labels = append(labels, k)
	}
	sort.Strings(labels)
	for _, label := range labels {
		for _, p := range curves[label] {
			rec := []string{
				label,
				strconv.FormatFloat(p.Epoch, 'g', -1, 64),
				strconv.FormatFloat(p.Time, 'g', -1, 64),
				strconv.FormatFloat(p.Value, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ResultJSON is the JSON projection of an engine.Result.
type ResultJSON struct {
	Algo          string         `json:"algo"`
	Curve         []engine.Point `json:"curve"`
	FinalLoss     float64        `json:"final_loss"`
	FinalAccuracy float64        `json:"final_accuracy"`
	TotalTime     float64        `json:"total_time_seconds"`
	GlobalSteps   int            `json:"global_steps"`
	CompSecs      float64        `json:"comp_seconds"`
	CommSecs      float64        `json:"comm_seconds"`
	BytesSent     int64          `json:"bytes_sent"`
	Epochs        int            `json:"epochs"`
}

// WriteResultJSON writes one result as indented JSON.
func WriteResultJSON(w io.Writer, r *engine.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ResultJSON{
		Algo:          r.Algo,
		Curve:         r.Curve,
		FinalLoss:     r.FinalLoss,
		FinalAccuracy: r.FinalAccuracy,
		TotalTime:     r.TotalTime,
		GlobalSteps:   r.GlobalSteps,
		CompSecs:      r.CompSecs,
		CommSecs:      r.CommSecs,
		BytesSent:     r.BytesSent,
		Epochs:        r.Epochs,
	})
}

// ReadResultJSON parses a result written by WriteResultJSON back into an
// engine.Result.
func ReadResultJSON(r io.Reader) (*engine.Result, error) {
	var rj ResultJSON
	if err := json.NewDecoder(r).Decode(&rj); err != nil {
		return nil, fmt.Errorf("trace: decode result: %w", err)
	}
	return &engine.Result{
		Algo:          rj.Algo,
		Curve:         rj.Curve,
		FinalLoss:     rj.FinalLoss,
		FinalAccuracy: rj.FinalAccuracy,
		TotalTime:     rj.TotalTime,
		GlobalSteps:   rj.GlobalSteps,
		CompSecs:      rj.CompSecs,
		CommSecs:      rj.CommSecs,
		BytesSent:     rj.BytesSent,
		Epochs:        rj.Epochs,
	}, nil
}
