package trace

import (
	"bytes"
	"strings"
	"testing"

	"netmax/internal/engine"
)

func sampleResult() *engine.Result {
	return &engine.Result{
		Algo: "NetMax",
		Curve: []engine.Point{
			{Epoch: 1, Time: 2.5, Value: 1.2},
			{Epoch: 2, Time: 5.0, Value: 0.8},
		},
		FinalLoss:     0.8,
		FinalAccuracy: 0.91,
		TotalTime:     5.0,
		GlobalSteps:   100,
		CompSecs:      1.5,
		CommSecs:      3.5,
		Epochs:        2,
	}
}

func TestWriteCurveCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCurveCSV(&buf, sampleResult().Curve); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "epoch,time_seconds,value" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "1,2.5,1.2" {
		t.Fatalf("row = %q", lines[1])
	}
}

func TestWriteCurvesCSVSortedSeries(t *testing.T) {
	var buf bytes.Buffer
	curves := map[string][]engine.Point{
		"b": {{Epoch: 1, Time: 1, Value: 2}},
		"a": {{Epoch: 1, Time: 1, Value: 3}},
	}
	if err := WriteCurvesCSV(&buf, curves); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	ia, ib := strings.Index(out, "\na,"), strings.Index(out, "\nb,")
	if ia == -1 || ib == -1 || ia > ib {
		t.Fatalf("series not sorted:\n%s", out)
	}
}

func TestResultJSONRoundTrip(t *testing.T) {
	r := sampleResult()
	var buf bytes.Buffer
	if err := WriteResultJSON(&buf, r); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResultJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Algo != r.Algo || got.FinalLoss != r.FinalLoss || got.TotalTime != r.TotalTime ||
		got.GlobalSteps != r.GlobalSteps || len(got.Curve) != len(r.Curve) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, r)
	}
	if got.Curve[1] != r.Curve[1] {
		t.Fatalf("curve point mismatch: %+v vs %+v", got.Curve[1], r.Curve[1])
	}
}

func TestReadResultJSONBadInput(t *testing.T) {
	if _, err := ReadResultJSON(strings.NewReader("{nope")); err == nil {
		t.Fatal("expected decode error")
	}
}
