// Package lp implements a small, self-contained two-phase primal simplex
// solver for linear programs in the form
//
//	minimize    cᵀx
//	subject to  Aeq x  = beq
//	            Aub x <= bub
//	            x >= lower   (per-variable lower bounds)
//
// It exists because the communication-policy generator (Algorithm 3 of the
// paper, Eq. 14) solves one linear program per worker row per candidate
// (ρ, t̄) pair, and no external solver is available. Bland's rule is used for
// pivot selection so the method cannot cycle.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Problem is a linear program. All rows of Aeq/Aub must have len(C) columns.
// Lower may be nil (all zeros).
type Problem struct {
	C     []float64
	Aeq   [][]float64
	Beq   []float64
	Aub   [][]float64
	Bub   []float64
	Lower []float64
}

// ErrInfeasible is returned when the constraint set is empty.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded is returned when the objective is unbounded below.
var ErrUnbounded = errors.New("lp: unbounded")

// eps is the pivot/optimality tolerance of the simplex iterations. It is
// applied to an equilibrated tableau: Solve rescales every constraint row
// (and the objective) to unit max-magnitude before iterating, so the
// absolute comparison is effectively relative to each row's scale. Without
// that, rows whose coefficients sit far below eps — e.g. iteration times
// recorded in microseconds — had every pivot candidate rejected and were
// silently dropped from the solution.
const eps = 1e-9

// Solve returns an optimal x and the objective value cᵀx.
func Solve(p *Problem) ([]float64, float64, error) {
	n := len(p.C)
	if n == 0 {
		return nil, 0, errors.New("lp: empty problem")
	}
	for _, row := range p.Aeq {
		if len(row) != n {
			return nil, 0, fmt.Errorf("lp: Aeq row has %d cols, want %d", len(row), n)
		}
	}
	for _, row := range p.Aub {
		if len(row) != n {
			return nil, 0, fmt.Errorf("lp: Aub row has %d cols, want %d", len(row), n)
		}
	}
	if len(p.Beq) != len(p.Aeq) || len(p.Bub) != len(p.Aub) {
		return nil, 0, errors.New("lp: rhs length mismatch")
	}

	// Shift lower bounds: x = y + lower, y >= 0.
	lower := p.Lower
	if lower == nil {
		lower = make([]float64, n)
	} else if len(lower) != n {
		return nil, 0, errors.New("lp: Lower length mismatch")
	}

	mEq, mUb := len(p.Aeq), len(p.Aub)
	m := mEq + mUb
	// Standard form: A y (+ slack) = b, y >= 0. Columns: n original + mUb slacks.
	cols := n + mUb
	a := make([][]float64, m)
	b := make([]float64, m)
	for i := 0; i < mEq; i++ {
		a[i] = make([]float64, cols)
		copy(a[i], p.Aeq[i])
		b[i] = p.Beq[i]
		for j := 0; j < n; j++ {
			b[i] -= p.Aeq[i][j] * lower[j]
		}
	}
	for i := 0; i < mUb; i++ {
		r := mEq + i
		a[r] = make([]float64, cols)
		copy(a[r], p.Aub[i])
		a[r][n+i] = 1 // slack
		b[r] = p.Bub[i]
		for j := 0; j < n; j++ {
			b[r] -= p.Aub[i][j] * lower[j]
		}
	}
	// Make all b >= 0 by row negation (flips slack signs too, which is fine:
	// the slack then acts as a surplus variable and phase 1 restores
	// feasibility with an artificial).
	for i := range a {
		if b[i] < 0 {
			for j := range a[i] {
				a[i][j] = -a[i][j]
			}
			b[i] = -b[i]
		}
	}
	// Row equilibration: divide each row's original-variable coefficients
	// (and its rhs) by their largest magnitude, so the simplex tolerances
	// act relative to every row's scale. Positive row scaling preserves
	// the feasible set and the optimal vertex exactly. Slack columns are
	// deliberately left at ±1: dividing them too would shrink a large-
	// scale inequality row's slack coefficient below the pivot tolerance,
	// locking the slack out of the basis and silently forcing the
	// constraint binding. Leaving the coefficient alone just rescales the
	// slack variable (slack' = slack/s ≥ 0), which is equally exact.
	for i := range a {
		s := 0.0
		for j := 0; j < n; j++ {
			if v := math.Abs(a[i][j]); v > s {
				s = v
			}
		}
		if s > 0 && s != 1 {
			for j := 0; j < n; j++ {
				a[i][j] /= s
			}
			b[i] /= s
		}
	}

	c := make([]float64, cols)
	copy(c, p.C)
	// Objective normalization: argmin is invariant under positive scaling,
	// and a unit-magnitude objective keeps the reduced-cost tolerance
	// meaningful for costs recorded at extreme scales.
	cs := 0.0
	for _, v := range c {
		if m := math.Abs(v); m > cs {
			cs = m
		}
	}
	if cs > 0 && cs != 1 {
		for j := range c {
			c[j] /= cs
		}
	}

	y, err := twoPhase(a, b, c)
	if err != nil {
		return nil, 0, err
	}
	x := make([]float64, n)
	obj := 0.0
	for j := 0; j < n; j++ {
		x[j] = y[j] + lower[j]
		obj += p.C[j] * x[j]
	}
	return x, obj, nil
}

// twoPhase solves min cᵀy s.t. Ay=b, y>=0, b>=0 via phase-1 artificials.
func twoPhase(a [][]float64, b, c []float64) ([]float64, error) {
	m := len(a)
	if m == 0 {
		// No constraints: the minimum is at y=0 unless some cost is
		// negative, in which case the problem is unbounded below.
		for _, cj := range c {
			if cj < -eps {
				return nil, ErrUnbounded
			}
		}
		return make([]float64, len(c)), nil
	}
	n := len(a[0])

	// Tableau with artificial variables appended: columns n..n+m-1.
	total := n + m
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, total+1)
		copy(t[i], a[i])
		t[i][n+i] = 1
		t[i][total] = b[i]
		basis[i] = n + i
	}

	// Phase 1: minimize sum of artificials.
	phase1 := make([]float64, total)
	for j := n; j < total; j++ {
		phase1[j] = 1
	}
	if obj := simplexIterate(t, basis, phase1, total); obj > eps {
		return nil, ErrInfeasible
	}
	// Drive remaining artificials out of the basis where possible.
	for i, bj := range basis {
		if bj >= n {
			pivoted := false
			for j := 0; j < n; j++ {
				if math.Abs(t[i][j]) > eps {
					pivot(t, basis, i, j, total)
					pivoted = true
					break
				}
			}
			if !pivoted {
				// Redundant row; harmless to leave (artificial stays at 0).
				_ = pivoted
			}
		}
	}

	// Phase 2: original objective; artificial columns are forbidden by
	// giving them a huge cost (they are at value 0 and stay there).
	phase2 := make([]float64, total)
	copy(phase2, c)
	for j := n; j < total; j++ {
		phase2[j] = 1e18
	}
	obj := simplexIterate(t, basis, phase2, total)
	if math.IsInf(obj, -1) {
		return nil, ErrUnbounded
	}
	y := make([]float64, n)
	for i, bj := range basis {
		if bj < n {
			y[bj] = t[i][total]
		}
	}
	return y, nil
}

// simplexIterate runs primal simplex with Bland's rule on tableau t with the
// given objective, returning the final objective value (or -Inf if
// unbounded). basis is updated in place.
func simplexIterate(t [][]float64, basis []int, c []float64, rhsCol int) float64 {
	m := len(t)
	for iter := 0; iter < 10000; iter++ {
		// Reduced costs: r_j = c_j - c_Bᵀ B⁻¹ A_j. The tableau is kept in
		// canonical form, so r_j = c_j - Σ_i c_basis[i] * t[i][j].
		entering := -1
		for j := 0; j < rhsCol; j++ {
			r := c[j]
			for i := 0; i < m; i++ {
				r -= c[basis[i]] * t[i][j]
			}
			if r < -eps {
				entering = j // Bland: first improving column
				break
			}
		}
		if entering == -1 {
			obj := 0.0
			for i := 0; i < m; i++ {
				obj += c[basis[i]] * t[i][rhsCol]
			}
			return obj
		}
		// Ratio test with Bland tie-break on basis index.
		leaving := -1
		best := math.Inf(1)
		for i := 0; i < m; i++ {
			if t[i][entering] > eps {
				ratio := t[i][rhsCol] / t[i][entering]
				if ratio < best-eps || (math.Abs(ratio-best) <= eps && (leaving == -1 || basis[i] < basis[leaving])) {
					best = ratio
					leaving = i
				}
			}
		}
		if leaving == -1 {
			return math.Inf(-1)
		}
		pivot(t, basis, leaving, entering, rhsCol)
	}
	// Iteration cap exceeded; treat current point as optimal enough.
	obj := 0.0
	for i := 0; i < m; i++ {
		obj += c[basis[i]] * t[i][rhsCol]
	}
	return obj
}

func pivot(t [][]float64, basis []int, row, col, rhsCol int) {
	pv := t[row][col]
	for j := 0; j <= rhsCol; j++ {
		t[row][j] /= pv
	}
	for i := range t {
		if i == row {
			continue
		}
		f := t[i][col]
		if f == 0 {
			continue
		}
		for j := 0; j <= rhsCol; j++ {
			t[i][j] -= f * t[row][j]
		}
	}
	basis[row] = col
}
