package lp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSimpleInequality(t *testing.T) {
	// min -x - y  s.t. x + y <= 4, x <= 2, x,y >= 0 -> x=2, y=2, obj=-4
	p := &Problem{
		C:   []float64{-1, -1},
		Aub: [][]float64{{1, 1}, {1, 0}},
		Bub: []float64{4, 2},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj+4) > 1e-6 {
		t.Fatalf("obj = %v, want -4 (x=%v)", obj, x)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x1 s.t. x1 + x2 = 1, x >= 0 -> x1=0, x2=1
	p := &Problem{
		C:   []float64{1, 0},
		Aeq: [][]float64{{1, 1}},
		Beq: []float64{1},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj) > 1e-8 || math.Abs(x[1]-1) > 1e-8 {
		t.Fatalf("x = %v obj = %v", x, obj)
	}
}

func TestLowerBounds(t *testing.T) {
	// min x1 + x2 s.t. x1 + x2 = 1, x1 >= 0.3, x2 >= 0.2
	p := &Problem{
		C:     []float64{2, 1},
		Aeq:   [][]float64{{1, 1}},
		Beq:   []float64{1},
		Lower: []float64{0.3, 0.2},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: x1 at its lower bound 0.3, x2 = 0.7, obj = 1.3.
	if math.Abs(x[0]-0.3) > 1e-8 || math.Abs(x[1]-0.7) > 1e-8 {
		t.Fatalf("x = %v, want [0.3 0.7]", x)
	}
	if math.Abs(obj-1.3) > 1e-8 {
		t.Fatalf("obj = %v, want 1.3", obj)
	}
}

func TestInfeasible(t *testing.T) {
	// x1 = 2 with x1 <= 1 is infeasible.
	p := &Problem{
		C:   []float64{1},
		Aeq: [][]float64{{1}},
		Beq: []float64{2},
		Aub: [][]float64{{1}},
		Bub: []float64{1},
	}
	if _, _, err := Solve(p); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleLowerBoundsVsSum(t *testing.T) {
	// x1 + x2 = 1 with both lower bounds 0.6 is infeasible.
	p := &Problem{
		C:     []float64{1, 1},
		Aeq:   [][]float64{{1, 1}},
		Beq:   []float64{1},
		Lower: []float64{0.6, 0.6},
	}
	if _, _, err := Solve(p); err != ErrInfeasible {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	// min -x with no upper constraints.
	p := &Problem{C: []float64{-1}}
	if _, _, err := Solve(p); err != ErrUnbounded {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestNegativeRHS(t *testing.T) {
	// min x s.t. -x <= -2  (i.e. x >= 2) -> x = 2.
	p := &Problem{
		C:   []float64{1},
		Aub: [][]float64{{-1}},
		Bub: []float64{-2},
	}
	x, _, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-8 {
		t.Fatalf("x = %v, want 2", x)
	}
}

func TestDegenerateTies(t *testing.T) {
	// A classic degenerate LP; Bland's rule must terminate.
	p := &Problem{
		C:   []float64{-0.75, 150, -0.02, 6},
		Aub: [][]float64{{0.25, -60, -0.04, 9}, {0.5, -90, -0.02, 3}, {0, 0, 1, 0}},
		Bub: []float64{0, 0, 1},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(obj+0.05) > 1e-6 {
		t.Fatalf("obj = %v (x=%v), want -0.05", obj, x)
	}
}

func TestPolicyRowShapeLP(t *testing.T) {
	// The exact LP shape used by the policy generator: one worker row with 3
	// neighbors, latencies t = [1, 2, 10], floor f = 0.05 each; time budget
	// sum(t_m p_m) = T; minimize self-probability p_self = 1 - sum(p_m)
	// i.e. maximize sum p_m.
	tm := []float64{1, 2, 10}
	floor := 0.05
	T := 1.5
	p := &Problem{
		C:     []float64{0, 0, 0, 1}, // minimize p_self
		Aeq:   [][]float64{{tm[0], tm[1], tm[2], 0}, {1, 1, 1, 1}},
		Beq:   []float64{T, 1},
		Lower: []float64{floor, floor, floor, 0},
	}
	x, _, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	// Feasibility checks.
	sum := x[0] + x[1] + x[2] + x[3]
	if math.Abs(sum-1) > 1e-7 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	dot := tm[0]*x[0] + tm[1]*x[1] + tm[2]*x[2]
	if math.Abs(dot-T) > 1e-7 {
		t.Fatalf("time budget = %v, want %v", dot, T)
	}
	for i := 0; i < 3; i++ {
		if x[i] < floor-1e-9 {
			t.Fatalf("x[%d] = %v below floor", i, x[i])
		}
	}
	// The fast neighbor should receive the bulk of the probability mass.
	if x[0] < x[2] {
		t.Fatalf("fast link prob %v < slow link prob %v", x[0], x[2])
	}
}

// TestScaleInvariance is the regression test for the scale-relative pivot
// tolerance: the policy-row LP solved with iteration times expressed at
// wildly different unit scales (seconds, microseconds-and-below, hours-and-
// above) must return the same probabilities. Before row equilibration, the
// absolute eps rejected every pivot in rows scaled below ~1e-10 and the
// solver silently returned a point violating the time-budget equality.
func TestScaleInvariance(t *testing.T) {
	tm := []float64{1, 2, 10}
	solve := func(s float64) []float64 {
		t.Helper()
		floor := 0.05
		p := &Problem{
			C:     []float64{0, 0, 0, 1}, // minimize p_self
			Aeq:   [][]float64{{tm[0] * s, tm[1] * s, tm[2] * s, 0}, {1, 1, 1, 1}},
			Beq:   []float64{1.5 * s, 1},
			Lower: []float64{floor, floor, floor, 0},
		}
		x, _, err := Solve(p)
		if err != nil {
			t.Fatalf("scale %g: %v", s, err)
		}
		sum := x[0] + x[1] + x[2] + x[3]
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("scale %g: probabilities sum to %v", s, sum)
		}
		dot := tm[0]*x[0] + tm[1]*x[1] + tm[2]*x[2]
		if math.Abs(dot-1.5) > 1e-6 {
			t.Fatalf("scale %g: time budget %v, want 1.5 (x=%v)", s, dot, x)
		}
		return x
	}
	ref := solve(1)
	for _, s := range []float64{1e-6, 1e-10, 1e-12, 1e6, 1e12} {
		x := solve(s)
		for i := range ref {
			if math.Abs(x[i]-ref[i]) > 1e-6 {
				t.Fatalf("scale %g: x = %v, want %v", s, x, ref)
			}
		}
	}
}

// TestScaleInvarianceInequality pins the slack-column handling: row
// equilibration must not divide the slack coefficient, or a large-scale
// inequality's slack falls below the pivot tolerance and the non-binding
// constraint is silently forced binding (min x s.t. 1e12·x <= 1e13,
// x >= 1 returned x=10 instead of 1).
func TestScaleInvarianceInequality(t *testing.T) {
	for _, s := range []float64{1, 1e-12, 1e12} {
		p := &Problem{
			C:     []float64{1},
			Aub:   [][]float64{{s}},
			Bub:   []float64{10 * s},
			Lower: []float64{1},
		}
		x, _, err := Solve(p)
		if err != nil {
			t.Fatalf("scale %g: %v", s, err)
		}
		if math.Abs(x[0]-1) > 1e-6 {
			t.Fatalf("scale %g: x = %v, want 1 (inequality wrongly binding)", s, x)
		}
	}
}

func TestRandomFeasibilityProperty(t *testing.T) {
	// Property: on random feasible problems, the solution satisfies all
	// constraints within tolerance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		// Random point z >= 0 gives a guaranteed-feasible constraint set.
		z := make([]float64, n)
		for i := range z {
			z[i] = rng.Float64() * 3
		}
		c := make([]float64, n)
		for i := range c {
			c[i] = rng.NormFloat64()
		}
		// One equality through z, two inequalities loose around z.
		aeq := make([]float64, n)
		beq := 0.0
		for i := range aeq {
			aeq[i] = rng.NormFloat64()
			beq += aeq[i] * z[i]
		}
		aub := make([][]float64, 2)
		bub := make([]float64, 2)
		for k := range aub {
			aub[k] = make([]float64, n)
			dot := 0.0
			for i := range aub[k] {
				aub[k][i] = rng.NormFloat64()
				dot += aub[k][i] * z[i]
			}
			bub[k] = dot + rng.Float64() // slack
		}
		// Bound the feasible region so the problem cannot be unbounded.
		ones := make([]float64, n)
		for i := range ones {
			ones[i] = 1
		}
		aub = append(aub, ones)
		bub = append(bub, 100)

		x, _, err := Solve(&Problem{C: c, Aeq: [][]float64{aeq}, Beq: []float64{beq}, Aub: aub, Bub: bub})
		if err != nil {
			return false
		}
		dotEq := 0.0
		for i := range x {
			if x[i] < -1e-7 {
				return false
			}
			dotEq += aeq[i] * x[i]
		}
		if math.Abs(dotEq-beq) > 1e-6 {
			return false
		}
		for k := range aub {
			dot := 0.0
			for i := range x {
				dot += aub[k][i] * x[i]
			}
			if dot > bub[k]+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOptimalityAgainstVertexEnumeration2D(t *testing.T) {
	// For 2-variable problems with box + one equality we can check by a fine
	// grid that no feasible point beats the solver's objective.
	p := &Problem{
		C:     []float64{3, -1},
		Aeq:   [][]float64{{1, 1}},
		Beq:   []float64{1},
		Lower: []float64{0.1, 0.1},
	}
	x, obj, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0.1; a <= 0.9; a += 0.001 {
		b := 1 - a
		if b < 0.1 {
			continue
		}
		if v := 3*a - b; v < obj-1e-6 {
			t.Fatalf("grid point (%v,%v) obj %v beats solver %v (x=%v)", a, b, v, obj, x)
		}
	}
}
