package experiments

import (
	"netmax/internal/baselines"
	"netmax/internal/data"
	"netmax/internal/nn"
)

func init() {
	register("abl-straggler", "Ablation: compute stragglers (one worker 5x slower)", runAblStraggler)
}

// runAblStraggler studies the compute-heterogeneity dimension targeted by
// Prague [14] and Hop [25]: one worker's gradient computation runs 5x
// slower. Barrier-synchronized approaches pay the straggler every round;
// asynchronous approaches (and Prague's group scheme) degrade gracefully.
func runAblStraggler(opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(16, opt)
	wl := buildWorkload(data.SynthCIFAR10, workers, opt.Seed+1)

	straggler := make([]float64, workers)
	for i := range straggler {
		straggler[i] = 1
	}
	straggler[3] = 5

	res := &Result{
		ID:     "abl-straggler",
		Title:  "One worker computing 5x slower, homogeneous network",
		Header: []string{"approach", "uniform compute (s)", "with straggler (s)", "slowdown"},
	}
	for _, a := range []algo{
		{"Allreduce", baselines.RunAllreduce},
		{"D-PSGD", baselines.RunSyncDPSGD},
		{"Prague", baselines.RunPrague},
		{"AD-PSGD", baselines.RunADPSGD},
		netmaxAlgo(),
	} {
		p := cfgParams{spec: nn.SimResNet18, wl: wl, net: homNet(workers), epochs: epochs, overlap: true, seed: opt.Seed + 3}
		base := a.run(p.config(opt.Seed + 5))
		cfg := p.config(opt.Seed + 5)
		cfg.ComputeScale = straggler
		slow := a.run(cfg)
		res.Rows = append(res.Rows, []string{a.name, f1(base.TotalTime), f1(slow.TotalTime), f2(slow.TotalTime / base.TotalTime)})
	}
	res.Notes = append(res.Notes,
		"expected: sync approaches slow down toward 5x; async approaches stay near 1x (the straggler only throttles its own share of samples)")
	return res, nil
}
