package experiments

import (
	"fmt"

	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/nn"
)

func init() {
	register("fig12", "ResNet18 on CIFAR100, non-uniform segments (Fig. 12)", runFig12)
	register("fig13", "ResNet50 on ImageNet, 16 workers, segments (Fig. 13)", runFig13)
	register("fig16", "ResNet18 on CIFAR10, segments (Fig. 16)", runFig16)
	register("fig17", "ResNet18 on Tiny-ImageNet, segments (Fig. 17)", runFig17)
	register("fig18", "MobileNet on non-IID MNIST (Fig. 18, Table IV skew)", runFig18)
	register("tab5", "Accuracy with non-uniform partitioning (Table V)", runTab5)
}

// segmentsExperiment runs the Section V-F protocol: segment-proportional
// shards and batch sizes (64 x segments), reporting loss vs epochs and vs
// time for the four cluster approaches.
func segmentsExperiment(id, title string, ds data.Spec, spec nn.ModelSpec, segments []int, fullEpochs int, opt Options) (*Result, error) {
	workers := len(segments)
	epochs := scaleEpochs(fullEpochs, opt)
	wl := buildWorkload(ds, workers, opt.Seed+1).withSegments(ds, segments, opt.Seed+1)
	// The paper uses batch 64 x segments; our shards are ~100x smaller, so
	// the per-segment batch is scaled to keep iterations-per-epoch similar.
	// LR 0.03: on the synthetic substrate the paper's 0.1 lets exact-
	// averaging baselines reach the plateau within a couple of epochs,
	// destroying the "curves coincide per epoch" shape of Fig. 12(a); the
	// lower rate restores comparable per-epoch convergence for all
	// approaches (a documented substitution on the synthetic substrate).
	p := cfgParams{spec: spec, wl: wl, net: hetNet(workers), epochs: epochs, batch: 8, lr: 0.03,
		decayAt: epochs * 2 / 3, overlap: true, seed: opt.Seed + 3}
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"approach", "total time (s)", "epochs to target", "time to target (s)", "final loss", "accuracy"},
		Curves: map[string][]engine.Point{},
	}
	rs := runAll(clusterAlgos(), p)
	target := lossTarget(rs)
	for _, r := range rs {
		res.Rows = append(res.Rows, []string{
			r.Algo, f1(r.TotalTime), f1(r.EpochToLoss(target)), f1(r.TimeToLoss(target)),
			fmt.Sprintf("%.3f", r.FinalLoss), pct(r.FinalAccuracy),
		})
		res.Curves[r.Algo] = r.Curve
	}
	res.Notes = append(res.Notes,
		"paper shape: loss-vs-epoch curves nearly coincide; loss-vs-time shows NetMax fastest")
	return res, nil
}

// runFig12 reproduces Fig. 12: ResNet18 / CIFAR100 / 8 workers / segments.
func runFig12(opt Options) (*Result, error) {
	return segmentsExperiment("fig12", "ResNet18 on CIFAR100, segments (1,1,1,1,2,1,2,1)",
		data.SynthCIFAR100, nn.SimResNet18, data.PaperSegments8(), 40, opt)
}

// runFig13 reproduces Fig. 13: ResNet50 / ImageNet / 16 workers / segments.
func runFig13(opt Options) (*Result, error) {
	return segmentsExperiment("fig13", "ResNet50 on ImageNet, 16 workers, segments",
		data.SynthImageNet, nn.SimResNet50, data.PaperSegments16(), 30, opt)
}

// runFig16 reproduces Appendix Fig. 16: ResNet18 / CIFAR10 / segments.
func runFig16(opt Options) (*Result, error) {
	return segmentsExperiment("fig16", "ResNet18 on CIFAR10, segments",
		data.SynthCIFAR10, nn.SimResNet18, data.PaperSegments8(), 40, opt)
}

// runFig17 reproduces Appendix Fig. 17: ResNet18 / Tiny-ImageNet / segments.
func runFig17(opt Options) (*Result, error) {
	return segmentsExperiment("fig17", "ResNet18 on Tiny-ImageNet, segments",
		data.SynthTinyImageNet, nn.SimResNet18, data.PaperSegments8(), 30, opt)
}

// runFig18 reproduces Appendix Fig. 18: MobileNet on MNIST with the extreme
// Table IV label skew. The paper: NetMax converges slightly slower per
// iteration but 2.45x/2.35x/1.39x faster in time than
// Prague/Allreduce/AD-PSGD.
func runFig18(opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(30, opt)
	wl := buildWorkload(data.SynthMNIST, workers, opt.Seed+1).
		withLabelSkew(data.SynthMNIST, data.TableIVSkew(), opt.Seed+1)
	p := cfgParams{spec: nn.SimMobileNet, wl: wl, net: hetNet(workers), epochs: epochs,
		batch: 8, lr: 0.05, overlap: true, seed: opt.Seed + 3}
	res := &Result{
		ID:     "fig18",
		Title:  "MobileNet on non-IID MNIST (Table IV skew)",
		Header: []string{"approach", "total time (s)", "time to target (s)", "final loss", "accuracy"},
		Curves: map[string][]engine.Point{},
	}
	rs := runAll(clusterAlgos(), p)
	target := lossTarget(rs)
	var netmaxT float64
	for _, r := range rs {
		res.Rows = append(res.Rows, []string{r.Algo, f1(r.TotalTime), f1(r.TimeToLoss(target)),
			fmt.Sprintf("%.3f", r.FinalLoss), pct(r.FinalAccuracy)})
		res.Curves[r.Algo] = r.Curve
		if r.Algo == "NetMax" {
			netmaxT = r.TimeToLoss(target)
		}
	}
	for _, r := range rs {
		if r.Algo != "NetMax" && netmaxT > 0 {
			if t := r.TimeToLoss(target); t > 0 {
				res.Notes = append(res.Notes, fmt.Sprintf("NetMax speedup over %s: %.2fx", r.Algo, t/netmaxT))
			}
		}
	}
	res.Notes = append(res.Notes, "paper: 2.45x/2.35x/1.39x over Prague/Allreduce/AD-PSGD; accuracy ~93% (non-IID cost)")
	return res, nil
}

// runTab5 reproduces Table V: final accuracy across the five datasets under
// non-uniform partitioning.
func runTab5(opt Options) (*Result, error) {
	epochs := scaleEpochs(30, opt)
	res := &Result{
		ID:     "tab5",
		Title:  "Accuracy, heterogeneous network, non-uniform partitioning",
		Header: []string{"dataset", "model", "Prague", "Allreduce", "AD-PSGD", "NetMax"},
	}
	cases := []struct {
		ds    data.Spec
		spec  nn.ModelSpec
		skewy bool
	}{
		{data.SynthCIFAR10, nn.SimResNet18, false},
		{data.SynthCIFAR100, nn.SimResNet18, false},
		{data.SynthMNIST, nn.SimMobileNet, true},
		{data.SynthTinyImageNet, nn.SimResNet18, false},
		{data.SynthImageNet, nn.SimResNet50, false},
	}
	if opt.Quick {
		cases = cases[:2]
	}
	for _, c := range cases {
		workers := 8
		segments := data.PaperSegments8()
		if c.ds.Name == "ImageNet" {
			workers = 16
			segments = data.PaperSegments16()
		}
		wl := buildWorkload(c.ds, workers, opt.Seed+1)
		if c.skewy {
			wl = wl.withLabelSkew(c.ds, data.TableIVSkew(), opt.Seed+1)
		} else {
			wl = wl.withSegments(c.ds, segments, opt.Seed+1)
		}
		p := cfgParams{spec: c.spec, wl: wl, net: hetNet(workers), epochs: epochs, batch: 8,
			decayAt: epochs * 2 / 3, overlap: true, seed: opt.Seed + 3}
		row := []string{c.ds.Name, c.spec.Name}
		for _, a := range clusterAlgos() {
			r := a.run(p.config(opt.Seed + 5))
			row = append(row, pct(r.FinalAccuracy))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, "paper shape: accuracies comparable; NetMax >= others on most rows; MNIST drops to ~93% under non-IID skew")
	return res, nil
}
