package experiments

import (
	"fmt"

	"netmax/internal/data"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

func init() {
	register("tab2", "Test accuracy over a heterogeneous network (Table II)", runTab2)
	register("tab3", "Test accuracy over a homogeneous network (Table III)", runTab3)
}

func accuracyTable(id, title string, nodeCounts []int, net func(int) func(int64) *simnet.Network, opt Options) (*Result, error) {
	epochs := scaleEpochs(30, opt)
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"model", "nodes", "Prague", "Allreduce", "AD-PSGD", "NetMax"},
	}
	for _, spec := range []nn.ModelSpec{nn.SimResNet18, nn.SimVGG19} {
		for _, n := range nodeCounts {
			wl := buildWorkload(data.SynthCIFAR10, n, opt.Seed+1)
			p := cfgParams{spec: spec, wl: wl, net: net(n), epochs: epochs, decayAt: epochs * 7 / 10, overlap: true, seed: opt.Seed + 3}
			row := []string{spec.Name, fmt.Sprint(n)}
			for _, a := range clusterAlgos() {
				r := a.run(p.config(opt.Seed + 5))
				row = append(row, pct(r.FinalAccuracy))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	res.Notes = append(res.Notes, "paper shape: all approaches within ~1 point; NetMax ties or slightly leads")
	return res, nil
}

// runTab2 reproduces Table II: accuracy at 4/8/16 workers, heterogeneous.
func runTab2(opt Options) (*Result, error) {
	counts := []int{4, 8, 16}
	if opt.Quick {
		counts = []int{4, 8}
	}
	return accuracyTable("tab2", "Accuracy, heterogeneous network", counts, hetNet, opt)
}

// runTab3 reproduces Table III: accuracy at 4/6/8 workers, homogeneous.
func runTab3(opt Options) (*Result, error) {
	counts := []int{4, 6, 8}
	if opt.Quick {
		counts = []int{4, 8}
	}
	return accuracyTable("tab3", "Accuracy, homogeneous network", counts, homNet, opt)
}
