// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V and Appendices F-G) on the simulated substrate.
//
// Each experiment id (fig3, fig5, ..., tab2, ..., fig19, plus the abl-*
// ablations) maps to a function that builds the paper's workload, runs the
// compared algorithms on the discrete-event engine, and returns the same
// rows/series the paper reports. Absolute numbers differ — the substrate is
// a simulator, not the authors' GPU cluster — but the shapes (who wins, by
// roughly what factor, where crossovers fall) are the reproduction target;
// each Result carries expected-vs-measured notes inline.
package experiments

import (
	"fmt"
	"sort"

	"netmax/internal/baselines"
	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

// TimeScale relates the simulator's clock to the paper's: our epochs run
// ~50x faster than the paper's GPU epochs, so every wall-clock-periodic
// mechanism is scaled by the same factor to keep dynamics-per-epoch equal.
const TimeScale = 50.0

// MonitorTs is the Network Monitor period: the paper's 120s over TimeScale.
const MonitorTs = 120.0 / TimeScale

// SlowPeriod is the slow-link relocation period: the paper's 300s scaled.
const SlowPeriod = 300.0 / TimeScale

// Options tunes an experiment run.
type Options struct {
	// Seed drives dataset generation, model init and all stochastic
	// decisions; each experiment is deterministic given (id, Options).
	Seed int64
	// Quick shrinks epochs/node counts ~4x for smoke runs and benchmarks.
	Quick bool
}

// Result is a regenerated table or figure.
type Result struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	// Curves holds the per-series points for figure experiments
	// (loss/accuracy versus time and/or epochs), keyed by series label.
	Curves map[string][]engine.Point
	// Notes records shape checks and derived quantities (speedups etc.).
	Notes []string
}

// Runner regenerates one experiment.
type Runner struct {
	ID    string
	Title string
	Run   func(Options) (*Result, error)
}

var registry []Runner

func register(id, title string, run func(Options) (*Result, error)) {
	registry = append(registry, Runner{ID: id, Title: title, Run: run})
}

// All returns the registered experiments sorted by id.
func All() []Runner {
	out := append([]Runner(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Run regenerates the experiment with the given id.
func Run(id string, opt Options) (*Result, error) {
	for _, r := range registry {
		if r.ID == id {
			return r.Run(opt)
		}
	}
	return nil, fmt.Errorf("experiments: unknown experiment %q (use one of %v)", id, ids())
}

func ids() []string {
	var out []string
	for _, r := range All() {
		out = append(out, r.ID)
	}
	return out
}

// ---- shared workload builders ----

// algo pairs a display name with a runner over a fresh config.
type algo struct {
	name string
	run  func(cfg *engine.Config) *engine.Result
}

func netmaxAlgo() algo {
	return algo{"NetMax", func(cfg *engine.Config) *engine.Result {
		return core.Run(cfg, core.Options{Ts: MonitorTs})
	}}
}

// clusterAlgos is the comparison set of Sections V-B..V-F, in the paper's
// reporting order.
func clusterAlgos() []algo {
	return []algo{
		{"Prague", baselines.RunPrague},
		{"Allreduce", baselines.RunAllreduce},
		{"AD-PSGD", baselines.RunADPSGD},
		netmaxAlgo(),
	}
}

// psAlgos adds the parameter-server baselines of Section V-G.
func psAlgos() []algo {
	return append(clusterAlgos()[:3:3], []algo{
		{"PS-syn", baselines.RunPSSync},
		{"PS-asyn", baselines.RunPSAsync},
		netmaxAlgo(),
	}...)
}

// workload bundles the shared data of one experiment so every algorithm
// sees identical shards, eval subset and test set.
type workload struct {
	part *data.Partition
	eval *data.Dataset
	test *data.Dataset
}

func buildWorkload(ds data.Spec, workers int, seed int64) *workload {
	train, test := ds.Generate(seed)
	evalN := 400
	if evalN > train.Len() {
		evalN = train.Len()
	}
	idx := make([]int, evalN)
	for i := range idx {
		idx[i] = i
	}
	return &workload{
		part: data.Uniform(train, workers, seed),
		eval: train.Slice(idx),
		test: test,
	}
}

func (w *workload) withSegments(ds data.Spec, segments []int, seed int64) *workload {
	train, _ := ds.Generate(seed)
	w.part = data.Segments(train, segments, seed)
	return w
}

func (w *workload) withLabelSkew(ds data.Spec, skew [][]int, seed int64) *workload {
	train, _ := ds.Generate(seed)
	w.part = data.LabelSkew(train, skew, seed)
	return w
}

// cfgParams collects the knobs that vary across experiments.
type cfgParams struct {
	spec    nn.ModelSpec
	wl      *workload
	net     func(seed int64) *simnet.Network
	epochs  int
	batch   int
	lr      float64
	decayAt int
	overlap bool
	seed    int64
}

func (p cfgParams) config(netSeed int64) *engine.Config {
	lr := p.lr
	if lr == 0 {
		lr = 0.1
	}
	batch := p.batch
	if batch == 0 {
		batch = 16
	}
	return &engine.Config{
		Spec:         p.spec,
		Part:         p.wl.part,
		Eval:         p.wl.eval,
		Test:         p.wl.test,
		Net:          p.net(netSeed),
		LR:           lr,
		Batch:        batch,
		Epochs:       p.epochs,
		Seed:         p.seed,
		Overlap:      p.overlap,
		LRDecayEpoch: p.decayAt,
	}
}

// hetNet builds the Section V-A heterogeneous cluster network.
func hetNet(workers int) func(seed int64) *simnet.Network {
	topo := simnet.PaperCluster(workers)
	return func(seed int64) *simnet.Network {
		return simnet.NewHeterogeneousPeriod(topo, seed, 1e7, SlowPeriod)
	}
}

// homNet builds the Section V-A homogeneous single-server network.
func homNet(workers int) func(seed int64) *simnet.Network {
	topo := simnet.SingleMachine(workers)
	return func(seed int64) *simnet.Network { return simnet.NewHomogeneous(topo) }
}

// runAll executes every algorithm on an identical fresh workload/config.
// Algorithms run concurrently under the bounded-parallelism driver — each
// builds its own config (fresh network, fresh workers) over the shared
// read-only workload, and every run is internally deterministic, so results
// land in reporting order regardless of scheduling.
func runAll(algos []algo, p cfgParams) []*engine.Result {
	out := make([]*engine.Result, len(algos))
	engine.Concurrently(len(algos), engine.ResolveParallelism(0), func(k int) {
		out[k] = algos[k].run(p.config(p.seed))
	})
	return out
}

func scaleEpochs(full int, opt Options) int {
	if opt.Quick {
		q := full / 4
		if q < 3 {
			q = 3
		}
		return q
	}
	return full
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string { return fmt.Sprintf("%.2f%%", 100*v) }

// lossTarget picks a loss threshold reachable by all runs: 10% above the
// worst final loss.
func lossTarget(rs []*engine.Result) float64 {
	worst := 0.0
	for _, r := range rs {
		if r.FinalLoss > worst {
			worst = r.FinalLoss
		}
	}
	return worst * 1.1
}
