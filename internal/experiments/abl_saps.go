package experiments

import (
	"netmax/internal/baselines"
	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

func init() {
	register("abl-saps", "Ablation: static fast-subgraph (SAPS) vs adaptive policy under changing link speeds", runAblSAPS)
	register("abl-dpsgd", "Ablation: synchronous D-PSGD neighborhood averaging vs NetMax", runAblDPSGD)
}

// runAblSAPS reproduces the paper's Fig. 2 argument against SAPS-PSGD [15]:
// when WHICH links are fast changes over time (not merely one slowed link),
// a static initially-fast subgraph keeps routing traffic over links that
// have become slow, while NetMax's monitor re-measures and re-routes.
func runAblSAPS(opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(40, opt)
	wl := buildWorkload(data.SynthCIFAR10, workers, opt.Seed+1)
	topo := simnet.PaperCluster(workers)

	res := &Result{
		ID:     "abl-saps",
		Title:  "SAPS static subgraph vs NetMax under shuffled link speeds",
		Header: []string{"network", "approach", "avg total time (s)", "avg comm cost/epoch (s)"},
	}
	netSeeds := []int64{opt.Seed + 5, opt.Seed + 55, opt.Seed + 505}
	if opt.Quick {
		netSeeds = netSeeds[:1]
	}
	for _, netcase := range []struct {
		name string
		net  func(seed int64) *simnet.Network
	}{
		{"static rates", func(seed int64) *simnet.Network { return simnet.NewStatic(topo) }},
		// The shuffle period is 2x the slow-link period: long enough that
		// the monitor's tracking lag (Ts plus EMA warm-up) is a modest
		// fraction of each regime, short enough that a 40-epoch run spans
		// many regimes for averaging.
		{"shuffled rates", func(seed int64) *simnet.Network {
			return simnet.NewShuffledRates(topo, seed, 1e7, 2*SlowPeriod)
		}},
	} {
		var sapsT, sapsC, nmT, nmC float64
		for _, ns := range netSeeds {
			p := cfgParams{spec: nn.SimResNet18, wl: wl, net: netcase.net, epochs: epochs, overlap: true, seed: opt.Seed + 3}
			saps := baselines.RunSAPS(p.config(ns))
			netmax := core.Run(p.config(ns), core.Options{Ts: MonitorTs})
			sapsT += saps.TotalTime / float64(len(netSeeds))
			sapsC += saps.CommCostPerEpoch(workers) / float64(len(netSeeds))
			nmT += netmax.TotalTime / float64(len(netSeeds))
			nmC += netmax.CommCostPerEpoch(workers) / float64(len(netSeeds))
		}
		res.Rows = append(res.Rows,
			[]string{netcase.name, "SAPS-PSGD", f1(sapsT), f2(sapsC)},
			[]string{netcase.name, "NetMax", f1(nmT), f2(nmC)})
	}
	res.Notes = append(res.Notes,
		"expected: SAPS competitive under static rates, degraded under shuffled rates (its subgraph goes stale)",
		"measured finding: SAPS degrades ~1.5x as predicted, yet stays ahead of NetMax here: with a third of all links congested, Eq. 10's frequency equalization forces NetMax to keep floor probability on congested links on every row. NetMax's wins (Fig. 5/8) come from the paper's single-slow-link regime, where those floors are nearly free")
	return res, nil
}

// runAblDPSGD compares synchronous D-PSGD (neighborhood averaging with a
// barrier) against NetMax on the heterogeneous cluster.
func runAblDPSGD(opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(16, opt)
	wl := buildWorkload(data.SynthCIFAR10, workers, opt.Seed+1)
	p := cfgParams{spec: nn.SimResNet18, wl: wl, net: hetNet(workers), epochs: epochs, overlap: true, seed: opt.Seed + 3}
	dpsgd := baselines.RunSyncDPSGD(p.config(opt.Seed + 5))
	netmax := core.Run(p.config(opt.Seed+5), core.Options{Ts: MonitorTs})
	res := &Result{
		ID:     "abl-dpsgd",
		Title:  "Synchronous D-PSGD vs NetMax, heterogeneous network",
		Header: []string{"approach", "total time (s)", "comm cost/epoch (s)", "accuracy"},
		Rows: [][]string{
			{"D-PSGD", f1(dpsgd.TotalTime), f2(dpsgd.CommCostPerEpoch(workers)), pct(dpsgd.FinalAccuracy)},
			{"NetMax", f1(netmax.TotalTime), f2(netmax.CommCostPerEpoch(workers)), pct(netmax.FinalAccuracy)},
		},
		Notes: []string{"expected: the sync barrier makes D-PSGD pay the slowest link every round; NetMax avoids it"},
	}
	return res, nil
}
