package experiments

import (
	"fmt"

	"netmax/internal/baselines"
	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

func init() {
	register("fig14", "MobileNet on CIFAR100 incl. parameter servers (Fig. 14 / Table VI)", runFig14)
	register("fig15", "AD-PSGD extended with the Network Monitor (Fig. 15)", runFig15)
	register("fig19", "Cross-region WAN training (Fig. 19, Table VII)", runFig19)
}

// runFig14 reproduces Fig. 14 and Table VI: a small model (MobileNet) on a
// complex dataset (CIFAR100) with PS-syn/PS-asyn added to the comparison.
func runFig14(opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(30, opt)
	wl := buildWorkload(data.SynthCIFAR100, workers, opt.Seed+1).
		withSegments(data.SynthCIFAR100, data.PaperSegments8(), opt.Seed+1)
	p := cfgParams{spec: nn.SimMobileNet, wl: wl, net: hetNet(workers), epochs: epochs, batch: 8, lr: 0.03,
		decayAt: epochs * 2 / 3, overlap: true, seed: opt.Seed + 3}
	res := &Result{
		ID:     "fig14",
		Title:  "MobileNet on CIFAR100, heterogeneous, with PS baselines",
		Header: []string{"approach", "total time (s)", "epochs to target", "time to target (s)", "accuracy"},
		Curves: map[string][]engine.Point{},
	}
	rs := runAll(psAlgos(), p)
	target := lossTarget(rs)
	for _, r := range rs {
		res.Rows = append(res.Rows, []string{r.Algo, f1(r.TotalTime), f1(r.EpochToLoss(target)),
			f1(r.TimeToLoss(target)), pct(r.FinalAccuracy)})
		res.Curves[r.Algo] = r.Curve
	}
	res.Notes = append(res.Notes,
		"paper shape: PS-asyn worst per-epoch convergence; PS-syn slowest in time; NetMax fastest in time",
		"paper Table VI: all accuracies ~63-64%; NetMax slightly ahead; MobileNet below ResNet18's ~72% on CIFAR100")
	return res, nil
}

// runFig15 reproduces Fig. 15: plain AD-PSGD vs AD-PSGD+Monitor vs NetMax.
func runFig15(opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(40, opt)
	wl := buildWorkload(data.SynthCIFAR100, workers, opt.Seed+1).
		withSegments(data.SynthCIFAR100, data.PaperSegments8(), opt.Seed+1)
	p := cfgParams{spec: nn.SimResNet18, wl: wl, net: hetNet(workers), epochs: epochs, batch: 8, lr: 0.03,
		decayAt: epochs * 2 / 3, overlap: true, seed: opt.Seed + 3}
	res := &Result{
		ID:     "fig15",
		Title:  "Extension of AD-PSGD with Network Monitor",
		Header: []string{"approach", "total time (s)", "epochs to target", "time to target (s)", "final loss"},
		Curves: map[string][]engine.Point{},
	}
	rs := []*engine.Result{
		baselines.RunADPSGD(p.config(opt.Seed + 5)),
		core.RunADPSGDMonitor(p.config(opt.Seed+5), core.Options{Ts: MonitorTs}),
		core.Run(p.config(opt.Seed+5), core.Options{Ts: MonitorTs}),
	}
	target := lossTarget(rs)
	for _, r := range rs {
		res.Rows = append(res.Rows, []string{r.Algo, f1(r.TotalTime), f1(r.EpochToLoss(target)),
			f1(r.TimeToLoss(target)), fmt.Sprintf("%.3f", r.FinalLoss)})
		res.Curves[r.Algo] = r.Curve
	}
	res.Notes = append(res.Notes,
		"paper shape: AD-PSGD+Monitor beats AD-PSGD in time but converges per-epoch slightly slower than NetMax (fixed vs 1/p-scaled blend weight)")
	return res, nil
}

// runFig19 reproduces Appendix G: six AWS regions, Table VII label skew,
// MobileNet and GoogLeNet, test accuracy vs time, NetMax vs AD-PSGD vs PS.
func runFig19(opt Options) (*Result, error) {
	epochs := scaleEpochs(30, opt)
	res := &Result{
		ID:     "fig19",
		Title:  "Cross-region WAN training (6 regions, Table VII skew)",
		Header: []string{"model", "approach", "total time (s)", "time to target (s)", "accuracy"},
		Curves: map[string][]engine.Point{},
	}
	specs := []nn.ModelSpec{nn.SimMobileNet, nn.SimGoogLeNet}
	if opt.Quick {
		specs = specs[:1]
	}
	for _, spec := range specs {
		wl := buildWorkload(data.SynthMNIST, 6, opt.Seed+1).
			withLabelSkew(data.SynthMNIST, data.TableVIISkew(), opt.Seed+1)
		p := cfgParams{spec: spec, wl: wl,
			net:    func(seed int64) *simnet.Network { return simnet.NewCrossRegion() },
			epochs: epochs, batch: 8, lr: 0.05, overlap: true, seed: opt.Seed + 3}
		algos := []algo{
			netmaxAlgo(),
			{"AD-PSGD", baselines.RunADPSGD},
			{"PS-asyn", baselines.RunPSAsync},
			{"PS-syn", baselines.RunPSSync},
		}
		rs := runAll(algos, p)
		target := lossTarget(rs)
		var netmaxT float64
		for _, r := range rs {
			res.Rows = append(res.Rows, []string{spec.Name, r.Algo, f1(r.TotalTime),
				f1(r.TimeToLoss(target)), pct(r.FinalAccuracy)})
			res.Curves[spec.Name+"/"+r.Algo] = r.Curve
			if r.Algo == "NetMax" {
				netmaxT = r.TimeToLoss(target)
			}
		}
		for _, r := range rs {
			if r.Algo != "NetMax" && netmaxT > 0 {
				if t := r.TimeToLoss(target); t > 0 {
					res.Notes = append(res.Notes, fmt.Sprintf("%s: NetMax %.2fx faster than %s", spec.Name, t/netmaxT, r.Algo))
				}
			}
		}
	}
	res.Notes = append(res.Notes, "paper: NetMax converges 1.9x/1.9x/2.1x faster than AD-PSGD/PS-asyn/PS-syn")
	return res, nil
}
