package experiments

import (
	"fmt"

	"netmax/internal/baselines"
	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

func init() {
	register("abl-hop", "Ablation: Hop bounded staleness under a continuous slow link", runAblHop)
}

// runAblHop quantifies the paper's related-work critique of bounded
// staleness (Hop [25], Gaia [3]): "when network links experience a
// continuous slowdown, the whole system would be dragged down by these
// low-speed links". One worker pair keeps a permanently slow link; Hop's
// staleness gate transmits that worker's delay to everyone, while NetMax
// routes around the link.
func runAblHop(opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(16, opt)
	wl := buildWorkload(data.SynthCIFAR10, workers, opt.Seed+1)
	topo := simnet.PaperCluster(workers)
	// A static network with one continuously slow link: the heterogeneous
	// generator with a single never-moving slowdown period.
	net := func(seed int64) *simnet.Network {
		return simnet.NewHeterogeneousPeriod(topo, seed, 1e7, 1e7)
	}
	p := cfgParams{spec: nn.SimResNet18, wl: wl, net: net, epochs: epochs, overlap: true, seed: opt.Seed + 3}
	res := &Result{
		ID:     "abl-hop",
		Title:  "Bounded staleness vs adaptive routing, one continuously slow link",
		Header: []string{"approach", "total time (s)", "comm cost/epoch (s)"},
	}
	for _, a := range []struct {
		name string
		run  func() *engine.Result
	}{
		{"Hop (s=2)", func() *engine.Result { return baselines.RunHop(p.config(opt.Seed+5), 2) }},
		{"Hop (s=8)", func() *engine.Result { return baselines.RunHop(p.config(opt.Seed+5), 8) }},
		{"AD-PSGD", func() *engine.Result { return baselines.RunADPSGD(p.config(opt.Seed + 5)) }},
		{"NetMax", func() *engine.Result {
			return core.Run(p.config(opt.Seed+5), core.Options{Ts: MonitorTs})
		}},
	} {
		r := a.run()
		res.Rows = append(res.Rows, []string{a.name, f1(r.TotalTime), f2(r.CommCostPerEpoch(workers))})
	}
	res.Notes = append(res.Notes,
		"expected: tight staleness bounds drag the whole system toward the slow worker's pace; NetMax avoids the slow link entirely",
		fmt.Sprintf("slow link is static for the whole run (%d epochs)", epochs))
	return res, nil
}
