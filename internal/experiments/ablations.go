package experiments

import (
	"fmt"

	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/nn"
)

func init() {
	register("abl-blend", "Ablation: 1/p-scaled consensus weight vs fixed averaging", runAblBlend)
	register("abl-ts", "Ablation: Network Monitor period Ts", runAblTs)
	register("abl-beta", "Ablation: EMA smoothing factor beta", runAblBeta)
	register("abl-rounds", "Ablation: Algorithm 3 search grid size K=R", runAblRounds)
}

func ablConfig(opt Options, epochs int) cfgParams {
	wl := buildWorkload(data.SynthCIFAR10, 8, opt.Seed+1)
	return cfgParams{spec: nn.SimResNet18, wl: wl, net: hetNet(8), epochs: epochs,
		decayAt: epochs * 7 / 10, overlap: true, seed: opt.Seed + 3}
}

// runAblBlend compares Algorithm 2's 1/p_im-scaled blend weight against
// plain averaging under the same adaptive policy (this is the algorithmic
// delta between NetMax and AD-PSGD+Monitor).
func runAblBlend(opt Options) (*Result, error) {
	epochs := scaleEpochs(30, opt)
	p := ablConfig(opt, epochs)
	scaled := core.Run(p.config(opt.Seed+5), core.Options{Ts: MonitorTs})
	fixed := core.Run(p.config(opt.Seed+5), core.Options{Ts: MonitorTs, FixedBlend: true})
	res := &Result{
		ID:     "abl-blend",
		Title:  "Consensus blend weight ablation",
		Header: []string{"blend", "total time (s)", "final loss", "accuracy"},
		Rows: [][]string{
			{"1/p-scaled (NetMax)", f1(scaled.TotalTime), fmt.Sprintf("%.3f", scaled.FinalLoss), pct(scaled.FinalAccuracy)},
			{"fixed 1/2", f1(fixed.TotalTime), fmt.Sprintf("%.3f", fixed.FinalLoss), pct(fixed.FinalAccuracy)},
		},
		Notes: []string{"paper (Sec V-H): the scaled weight preserves information from rarely-pulled neighbors, improving per-epoch convergence"},
	}
	return res, nil
}

// runAblTs sweeps the monitor period: too long reacts slowly to the moving
// slow link; too short wastes little here (policy generation is cheap) but
// in a real deployment adds control traffic.
func runAblTs(opt Options) (*Result, error) {
	epochs := scaleEpochs(20, opt)
	res := &Result{
		ID:     "abl-ts",
		Title:  "Monitor period Ts sweep (seconds, simulator scale)",
		Header: []string{"Ts", "total time (s)", "comm cost/epoch (s)"},
	}
	for _, ts := range []float64{MonitorTs / 4, MonitorTs, MonitorTs * 4, MonitorTs * 16} {
		p := ablConfig(opt, epochs)
		r := core.Run(p.config(opt.Seed+5), core.Options{Ts: ts})
		res.Rows = append(res.Rows, []string{f2(ts), f1(r.TotalTime), f2(r.CommCostPerEpoch(8))})
	}
	res.Notes = append(res.Notes, "expected: total time grows once Ts far exceeds the slow-link period (stale policies)")
	return res, nil
}

// runAblBeta sweeps the EMA smoothing factor β of Algorithm 2: small β
// tracks link changes quickly, large β smooths noise but reacts slowly.
func runAblBeta(opt Options) (*Result, error) {
	epochs := scaleEpochs(20, opt)
	res := &Result{
		ID:     "abl-beta",
		Title:  "EMA smoothing factor beta sweep",
		Header: []string{"beta", "total time (s)", "comm cost/epoch (s)"},
	}
	for _, beta := range []float64{0.1, 0.5, 0.9} {
		p := ablConfig(opt, epochs)
		r := core.Run(p.config(opt.Seed+5), core.Options{Ts: MonitorTs, Beta: beta})
		res.Rows = append(res.Rows, []string{f2(beta), f1(r.TotalTime), f2(r.CommCostPerEpoch(8))})
	}
	return res, nil
}

// runAblRounds sweeps Algorithm 3's grid size: coarse grids may miss good
// (ρ, t̄) candidates; fine grids cost monitor CPU.
func runAblRounds(opt Options) (*Result, error) {
	epochs := scaleEpochs(20, opt)
	res := &Result{
		ID:     "abl-rounds",
		Title:  "Algorithm 3 grid size sweep (K = R)",
		Header: []string{"K=R", "total time (s)", "comm cost/epoch (s)"},
	}
	for _, k := range []int{3, 10, 20} {
		p := ablConfig(opt, epochs)
		r := core.Run(p.config(opt.Seed+5), core.Options{Ts: MonitorTs, PolicyRounds: k})
		res.Rows = append(res.Rows, []string{fmt.Sprint(k), f1(r.TotalTime), f2(r.CommCostPerEpoch(8))})
	}
	return res, nil
}
