package experiments

import (
	"strconv"
	"testing"
)

func TestAblStragglerShape(t *testing.T) {
	res := quick(t, "abl-straggler")
	slowdown := func(algo string) float64 {
		return cell(t, res, hasAlgo(algo), "slowdown")
	}
	// Barrier-synchronized approaches must pay more for the straggler than
	// asynchronous ones.
	if slowdown("Allreduce") <= slowdown("AD-PSGD") {
		t.Errorf("Allreduce slowdown %v should exceed AD-PSGD %v", slowdown("Allreduce"), slowdown("AD-PSGD"))
	}
	if slowdown("D-PSGD") <= slowdown("NetMax") {
		t.Errorf("D-PSGD slowdown %v should exceed NetMax %v", slowdown("D-PSGD"), slowdown("NetMax"))
	}
	// Prague's group scheme sits in between.
	if s := slowdown("Prague"); s >= slowdown("Allreduce") {
		t.Errorf("Prague slowdown %v should be below Allreduce %v", s, slowdown("Allreduce"))
	}
}

func TestAblHopShape(t *testing.T) {
	res := quick(t, "abl-hop")
	tight := cell(t, res, hasAlgo("Hop (s=2)"), "total time (s)")
	ad := cell(t, res, hasAlgo("AD-PSGD"), "total time (s)")
	nm := cell(t, res, hasAlgo("NetMax"), "total time (s)")
	if tight <= ad {
		t.Errorf("tight staleness bound (%v) should be slower than unbounded AD-PSGD (%v)", tight, ad)
	}
	if nm >= ad {
		t.Errorf("NetMax (%v) should beat AD-PSGD (%v) with a continuous slow link", nm, ad)
	}
}

func TestAblDPSGDShape(t *testing.T) {
	res := quick(t, "abl-dpsgd")
	dp := cell(t, res, hasAlgo("D-PSGD"), "total time (s)")
	nm := cell(t, res, hasAlgo("NetMax"), "total time (s)")
	if nm >= dp {
		t.Errorf("NetMax (%v) should beat sync D-PSGD (%v) on the heterogeneous cluster", nm, dp)
	}
}

func TestAblSAPSRuns(t *testing.T) {
	res := quick(t, "abl-saps")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	// Structural check: SAPS degrades when rates shuffle.
	var static, shuffled float64
	for _, row := range res.Rows {
		if row[1] != "SAPS-PSGD" {
			continue
		}
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if row[0] == "static rates" {
			static = v
		} else {
			shuffled = v
		}
	}
	// The degradation itself only emerges at full scale (a quick run spans
	// too few shuffle periods for the stale subgraph to be punished), so
	// here we only require the shuffled run not to be implausibly fast.
	if shuffled < 0.5*static {
		t.Errorf("shuffled-rates run implausibly fast: static %v vs shuffled %v", static, shuffled)
	}
}
