package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders a Result as an aligned text table with its notes.
func (r *Result) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.Join(parts, "  "))
	}
	line(r.Header)
	sep := make([]string, len(r.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}

// WriteCurves renders the figure series (if any) as per-series point lists.
func (r *Result) WriteCurves(w io.Writer) {
	if len(r.Curves) == 0 {
		return
	}
	keys := make([]string, 0, len(r.Curves))
	for k := range r.Curves {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "-- %s --\n", k)
		for _, p := range r.Curves[k] {
			fmt.Fprintf(w, "  epoch=%5.1f  t=%9.2f  value=%.4f\n", p.Epoch, p.Time, p.Value)
		}
	}
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return s + strings.Repeat(" ", n-len(s))
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
