package experiments

import (
	"fmt"

	"netmax/internal/baselines"
	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

func init() {
	register("fig3", "Iteration time: intra- vs inter-machine communication", runFig3)
	register("fig5", "Average epoch time decomposition, 8 workers, heterogeneous", runFig5)
	register("fig6", "Average epoch time decomposition, 8 workers, homogeneous", runFig6)
	register("fig7", "Ablation: serial/parallel x uniform/adaptive", runFig7)
	register("fig8", "Training loss vs time, 8 workers, heterogeneous", runFig8)
	register("fig9", "Training loss vs time, 8 workers, homogeneous", runFig9)
	register("fig10", "Speedup vs worker count, heterogeneous", runFig10)
	register("fig11", "Speedup vs worker count, homogeneous", runFig11)
}

// runFig3 measures t_{i,m} = max(C_i, N_{i,m}) for an intra-machine and an
// inter-machine peer, for ResNet18 and VGG19 (paper Fig. 3).
func runFig3(opt Options) (*Result, error) {
	topo := simnet.PaperCluster(8)
	net := simnet.NewStatic(topo)
	res := &Result{
		ID:     "fig3",
		Title:  "Average iteration time (s): intra- vs inter-machine",
		Header: []string{"model", "intra-machine", "inter-machine", "ratio"},
	}
	for _, spec := range []nn.ModelSpec{nn.SimResNet18, nn.SimVGG19} {
		intra := net.IterationTime(0, 1, spec.ModelBytes(), spec.ComputeSecs, 0, true)
		inter := net.IterationTime(0, 7, spec.ModelBytes(), spec.ComputeSecs, 0, true)
		res.Rows = append(res.Rows, []string{spec.Name, f2(intra), f2(inter), f2(inter / intra)})
	}
	res.Notes = append(res.Notes, "paper shape: inter-machine 2-4x intra; VGG19 > ResNet18")
	return res, nil
}

func epochTimeDecomposition(id, title string, net func(int) func(int64) *simnet.Network, opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(16, opt)
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"model", "approach", "comp cost (s)", "comm cost (s)", "epoch time (s)"},
		Curves: map[string][]engine.Point{},
	}
	for _, spec := range []nn.ModelSpec{nn.SimResNet18, nn.SimVGG19} {
		wl := buildWorkload(data.SynthCIFAR10, workers, opt.Seed+1)
		p := cfgParams{spec: spec, wl: wl, net: net(workers), epochs: epochs, overlap: true, seed: opt.Seed + 3}
		for _, a := range clusterAlgos() {
			r := a.run(p.config(opt.Seed + 5))
			res.Rows = append(res.Rows, []string{
				spec.Name, r.Algo,
				f2(r.CompCostPerEpoch(workers)), f2(r.CommCostPerEpoch(workers)),
				f2(r.AvgEpochTime()),
			})
		}
	}
	return res, nil
}

// runFig5 reproduces the heterogeneous epoch-time bars (paper Fig. 5).
func runFig5(opt Options) (*Result, error) {
	res, err := epochTimeDecomposition("fig5", "Avg epoch time, heterogeneous network", hetNet, opt)
	if err == nil {
		res.Notes = append(res.Notes,
			"paper shape: comp costs ~equal; NetMax lowest comm; Prague highest comm",
			"paper: NetMax cuts ResNet18 comm by 83.4%/81.7%/63.7% vs Prague/Allreduce/AD-PSGD")
	}
	return res, err
}

// runFig6 reproduces the homogeneous epoch-time bars (paper Fig. 6).
func runFig6(opt Options) (*Result, error) {
	res, err := epochTimeDecomposition("fig6", "Avg epoch time, homogeneous network", homNet, opt)
	if err == nil {
		res.Notes = append(res.Notes,
			"paper shape: comm costs much lower than Fig.5; NetMax ~ AD-PSGD < Allreduce < Prague")
	}
	return res, err
}

// runFig7 reproduces the source-of-improvement ablation (paper Fig. 7):
// serial vs parallel execution x uniform vs adaptive probabilities.
func runFig7(opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(16, opt)
	res := &Result{
		ID:     "fig7",
		Title:  "Avg epoch time (s) under the four NetMax settings",
		Header: []string{"model", "serial+uniform", "parallel+uniform", "serial+adaptive", "parallel+adaptive"},
	}
	// Epoch times under the dynamic slowdown schedule are noisy (one 2-100x
	// slow link moves around), so each setting is averaged over several
	// network seeds — the paper averages implicitly over much longer runs.
	netSeeds := []int64{opt.Seed + 5, opt.Seed + 105, opt.Seed + 205}
	if opt.Quick {
		netSeeds = netSeeds[:1]
	}
	for _, spec := range []nn.ModelSpec{nn.SimResNet18, nn.SimVGG19} {
		wl := buildWorkload(data.SynthCIFAR10, workers, opt.Seed+1)
		row := []string{spec.Name}
		for _, setting := range []struct {
			overlap bool
			uniform bool
		}{{false, true}, {true, true}, {false, false}, {true, false}} {
			p := cfgParams{spec: spec, wl: wl, net: hetNet(workers), epochs: epochs, overlap: setting.overlap, seed: opt.Seed + 3}
			sum := 0.0
			for _, ns := range netSeeds {
				r := core.Run(p.config(ns), core.Options{Ts: MonitorTs, UniformPolicy: setting.uniform})
				sum += r.AvgEpochTime()
			}
			row = append(row, f1(sum/float64(len(netSeeds))))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes,
		"paper shape: adaptive probabilities contribute most of the gain; parallelism is marginal")
	return res, nil
}

func lossVsTime(id, title string, net func(int) func(int64) *simnet.Network, opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(40, opt)
	res := &Result{
		ID:     id,
		Title:  title,
		Header: []string{"model", "approach", "total time (s)", "time to target loss (s)", "final loss"},
		Curves: map[string][]engine.Point{},
	}
	for _, spec := range []nn.ModelSpec{nn.SimResNet18, nn.SimVGG19} {
		wl := buildWorkload(data.SynthCIFAR10, workers, opt.Seed+1)
		// LR 0.03 keeps per-epoch convergence comparable across approaches
		// (see the segmentsExperiment comment): at 0.1 the exact-averaging
		// baselines hit the plateau in 1-2 epochs on this substrate, which
		// the paper's DNN workloads do not exhibit.
		p := cfgParams{spec: spec, wl: wl, net: net(workers), epochs: epochs, lr: 0.03, decayAt: epochs * 7 / 10, overlap: true, seed: opt.Seed + 3}
		rs := runAll(clusterAlgos(), p)
		target := lossTarget(rs)
		var netmaxT float64
		for _, r := range rs {
			t := r.TimeToLoss(target)
			res.Rows = append(res.Rows, []string{spec.Name, r.Algo, f1(r.TotalTime), f1(t), fmt.Sprintf("%.3f", r.FinalLoss)})
			res.Curves[spec.Name+"/"+r.Algo] = r.Curve
			if r.Algo == "NetMax" {
				netmaxT = t
			}
		}
		for _, r := range rs {
			if r.Algo == "NetMax" || netmaxT <= 0 {
				continue
			}
			if t := r.TimeToLoss(target); t > 0 {
				res.Notes = append(res.Notes, fmt.Sprintf("%s: NetMax speedup over %s at loss %.3f: %.2fx", spec.Name, r.Algo, target, t/netmaxT))
			}
		}
	}
	return res, nil
}

// runFig8 reproduces the heterogeneous convergence race (paper Fig. 8:
// NetMax 3.7x/3.4x/1.9x over Prague/Allreduce/AD-PSGD for ResNet18).
func runFig8(opt Options) (*Result, error) {
	res, err := lossVsTime("fig8", "Training loss vs time, heterogeneous", hetNet, opt)
	if err == nil {
		res.Notes = append(res.Notes, "paper: ResNet18 speedups 3.7x/3.4x/1.9x; VGG19 2.8x/2.2x/1.7x")
	}
	return res, err
}

// runFig9 reproduces the homogeneous convergence race (paper Fig. 9:
// NetMax ~ AD-PSGD, both ahead of Allreduce and Prague).
func runFig9(opt Options) (*Result, error) {
	res, err := lossVsTime("fig9", "Training loss vs time, homogeneous", homNet, opt)
	if err == nil {
		res.Notes = append(res.Notes, "paper shape: NetMax and AD-PSGD nearly coincide; both beat Allreduce/Prague")
	}
	return res, err
}

func scalability(id, title string, nodeCounts []int, net func(int) func(int64) *simnet.Network, opt Options) (*Result, error) {
	epochs := scaleEpochs(12, opt)
	res := &Result{
		ID:    id,
		Title: title,
		Header: append([]string{"approach"}, func() []string {
			var h []string
			for _, n := range nodeCounts {
				h = append(h, fmt.Sprintf("%d nodes", n))
			}
			return h
		}()...),
	}
	// Baseline: Allreduce with the smallest node count (the paper's
	// reference run).
	wl0 := buildWorkload(data.SynthCIFAR10, nodeCounts[0], opt.Seed+1)
	p0 := cfgParams{spec: nn.SimResNet18, wl: wl0, net: net(nodeCounts[0]), epochs: epochs, overlap: true, seed: opt.Seed + 3}
	base := baselines.RunAllreduce(p0.config(opt.Seed + 5)).TotalTime

	for _, a := range clusterAlgos() {
		row := []string{a.name}
		for _, n := range nodeCounts {
			wl := buildWorkload(data.SynthCIFAR10, n, opt.Seed+1)
			p := cfgParams{spec: nn.SimResNet18, wl: wl, net: net(n), epochs: epochs, overlap: true, seed: opt.Seed + 3}
			r := a.run(p.config(opt.Seed + 5))
			row = append(row, f2(base/r.TotalTime))
		}
		res.Rows = append(res.Rows, row)
	}
	res.Notes = append(res.Notes, "speedup = time of Allreduce@"+fmt.Sprint(nodeCounts[0])+" / time of run (same epochs)")
	return res, nil
}

// runFig10 reproduces heterogeneous scalability (paper Fig. 10).
func runFig10(opt Options) (*Result, error) {
	counts := []int{4, 8, 12, 16}
	if opt.Quick {
		counts = []int{4, 8}
	}
	res, err := scalability("fig10", "Speedup vs workers, heterogeneous (ResNet18)", counts, hetNet, opt)
	if err == nil {
		res.Notes = append(res.Notes, "paper shape: NetMax scales best; gap widens with more nodes")
	}
	return res, err
}

// runFig11 reproduces homogeneous scalability (paper Fig. 11).
func runFig11(opt Options) (*Result, error) {
	counts := []int{4, 6, 8}
	if opt.Quick {
		counts = []int{4, 8}
	}
	res, err := scalability("fig11", "Speedup vs workers, homogeneous (ResNet18)", counts, homNet, opt)
	if err == nil {
		res.Notes = append(res.Notes, "paper shape: NetMax >= AD-PSGD > Allreduce > Prague")
	}
	return res, err
}
