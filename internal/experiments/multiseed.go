package experiments

import (
	"fmt"

	"netmax/internal/baselines"
	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/nn"
	"netmax/internal/stats"
)

func init() {
	register("stats-speedup", "Multi-seed speedup statistics for the headline claim", runStatsSpeedup)
}

// runStatsSpeedup replicates the Fig. 8 ResNet18 comparison over several
// seeds and reports epoch-time speedups as mean +/- stderr: the paper
// reports point estimates (3.7x/3.4x/1.9x); this experiment quantifies the
// run-to-run variance of the reproduction.
func runStatsSpeedup(opt Options) (*Result, error) {
	const workers = 8
	epochs := scaleEpochs(20, opt)
	seeds := 5
	if opt.Quick {
		seeds = 2
	}
	wl := buildWorkload(data.SynthCIFAR10, workers, opt.Seed+1)
	run := func(f func(cfg *engine.Config) *engine.Result) []*engine.Result {
		return stats.Replicate(seeds, opt.Seed+5, func(seed int64) *engine.Result {
			p := cfgParams{spec: nn.SimResNet18, wl: wl, net: hetNet(workers), epochs: epochs, overlap: true, seed: opt.Seed + 3}
			return f(p.config(seed))
		})
	}
	netmax := run(func(cfg *engine.Config) *engine.Result {
		return core.Run(cfg, core.Options{Ts: MonitorTs})
	})
	res := &Result{
		ID:     "stats-speedup",
		Title:  fmt.Sprintf("Epoch-time speedup of NetMax over baselines (n=%d seeds)", seeds),
		Header: []string{"baseline", "speedup mean", "stderr", "min", "max"},
	}
	for _, b := range []struct {
		name string
		run  func(cfg *engine.Config) *engine.Result
	}{
		{"Prague", baselines.RunPrague},
		{"Allreduce-SGD", baselines.RunAllreduce},
		{"AD-PSGD", baselines.RunADPSGD},
	} {
		base := run(b.run)
		s, err := stats.SpeedupSummary(base, netmax)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, []string{b.name, f2(s.Mean), f2(s.StdErr), f2(s.Min), f2(s.Max)})
	}
	res.Notes = append(res.Notes, "paper point estimates (ResNet18): 3.7x Prague, 3.4x Allreduce, 1.9x AD-PSGD")
	return res, nil
}
