package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quick(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, Options{Seed: 1, Quick: true})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id {
		t.Fatalf("result id = %q, want %q", res.ID, id)
	}
	if len(res.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for _, row := range res.Rows {
		if len(row) != len(res.Header) {
			t.Fatalf("%s: row %v does not match header %v", id, row, res.Header)
		}
	}
	return res
}

func cell(t *testing.T, res *Result, rowMatch func([]string) bool, col string) float64 {
	t.Helper()
	ci := -1
	for i, h := range res.Header {
		if h == col {
			ci = i
		}
	}
	if ci == -1 {
		t.Fatalf("column %q not in %v", col, res.Header)
	}
	for _, row := range res.Rows {
		if rowMatch(row) {
			s := strings.TrimSuffix(row[ci], "%")
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				t.Fatalf("cell %q not numeric: %v", row[ci], err)
			}
			return v
		}
	}
	t.Fatalf("no row matched in %v", res.Rows)
	return 0
}

func hasAlgo(name string) func([]string) bool {
	return func(row []string) bool {
		for _, c := range row {
			if c == name {
				return true
			}
		}
		return false
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("nope", Options{}); err == nil {
		t.Fatal("expected error for unknown id")
	}
}

func TestAllRegistered(t *testing.T) {
	want := []string{"fig3", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"tab2", "tab3", "tab5", "abl-blend", "abl-ts", "abl-beta", "abl-rounds"}
	got := map[string]bool{}
	for _, r := range All() {
		got[r.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	res := quick(t, "fig3")
	for _, row := range res.Rows {
		ratio, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatal(err)
		}
		if ratio < 1.5 || ratio > 5 {
			t.Errorf("%s inter/intra ratio %v outside the paper's 2-4x band", row[0], ratio)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	res := quick(t, "fig5")
	isModel := func(model, algo string) func([]string) bool {
		return func(row []string) bool { return row[0] == model && row[1] == algo }
	}
	for _, model := range []string{"ResNet18", "VGG19"} {
		netmax := cell(t, res, isModel(model, "NetMax"), "comm cost (s)")
		adpsgd := cell(t, res, isModel(model, "AD-PSGD"), "comm cost (s)")
		prague := cell(t, res, isModel(model, "Prague"), "comm cost (s)")
		if netmax >= adpsgd {
			t.Errorf("%s: NetMax comm %v >= AD-PSGD %v", model, netmax, adpsgd)
		}
		if netmax >= prague {
			t.Errorf("%s: NetMax comm %v >= Prague %v", model, netmax, prague)
		}
		// Computation costs are approximately equal across approaches.
		compN := cell(t, res, isModel(model, "NetMax"), "comp cost (s)")
		compA := cell(t, res, isModel(model, "AD-PSGD"), "comp cost (s)")
		if compN < compA*0.5 || compN > compA*2 {
			t.Errorf("%s: comp costs diverge: %v vs %v", model, compN, compA)
		}
	}
}

func TestFig7AdaptiveBeatsUniform(t *testing.T) {
	res := quick(t, "fig7")
	for _, row := range res.Rows {
		su, _ := strconv.ParseFloat(row[1], 64) // serial+uniform
		pa, _ := strconv.ParseFloat(row[4], 64) // parallel+adaptive
		if pa >= su {
			t.Errorf("%s: full NetMax (%v) not faster than serial+uniform (%v)", row[0], pa, su)
		}
	}
}

func TestFig8NetMaxWins(t *testing.T) {
	res := quick(t, "fig8")
	isModel := func(model, algo string) func([]string) bool {
		return func(row []string) bool { return row[0] == model && row[1] == algo }
	}
	for _, model := range []string{"ResNet18", "VGG19"} {
		nm := cell(t, res, isModel(model, "NetMax"), "total time (s)")
		for _, other := range []string{"Prague", "Allreduce-SGD", "AD-PSGD"} {
			o := cell(t, res, isModel(model, other), "total time (s)")
			if nm >= o {
				t.Errorf("%s: NetMax total %v >= %s %v", model, nm, other, o)
			}
		}
	}
	if len(res.Curves) == 0 {
		t.Error("fig8 should expose curves")
	}
}

func TestTab2AccuraciesComparable(t *testing.T) {
	res := quick(t, "tab2")
	for _, row := range res.Rows {
		for _, c := range row[2:] {
			v, err := strconv.ParseFloat(strings.TrimSuffix(c, "%"), 64)
			if err != nil {
				t.Fatal(err)
			}
			if v < 50 {
				t.Errorf("accuracy %v%% too low in row %v", v, row)
			}
		}
	}
}

func TestFig15MonitorHelpsADPSGD(t *testing.T) {
	res := quick(t, "fig15")
	ad := cell(t, res, hasAlgo("AD-PSGD"), "total time (s)")
	ext := cell(t, res, hasAlgo("AD-PSGD+Monitor"), "total time (s)")
	if ext >= ad {
		t.Errorf("AD-PSGD+Monitor (%v) not faster than AD-PSGD (%v)", ext, ad)
	}
}

func TestFig19CrossRegion(t *testing.T) {
	res := quick(t, "fig19")
	nm := cell(t, res, hasAlgo("NetMax"), "total time (s)")
	ps := cell(t, res, hasAlgo("PS-syn"), "total time (s)")
	if nm >= ps {
		t.Errorf("NetMax (%v) not faster than PS-syn (%v) across regions", nm, ps)
	}
}

func TestAblBlendRuns(t *testing.T) {
	res := quick(t, "abl-blend")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestWriteTableRenders(t *testing.T) {
	res := &Result{
		ID:     "x",
		Title:  "demo",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"n1"},
	}
	var buf bytes.Buffer
	res.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"demo", "333", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCurvesRenders(t *testing.T) {
	res := quick(t, "fig18")
	var buf bytes.Buffer
	res.WriteCurves(&buf)
	if !strings.Contains(buf.String(), "epoch=") {
		t.Error("curves output empty")
	}
}
