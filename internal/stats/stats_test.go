package stats

import (
	"math"
	"testing"
	"testing/quick"

	"netmax/internal/engine"
)

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Mean != 5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 || s.N != 8 {
		t.Fatalf("summary = %+v", s)
	}
	// Sample std of this classic set is ~2.138.
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Fatalf("std = %v", s.Std)
	}
	if math.Abs(s.StdErr-s.Std/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("stderr = %v", s.StdErr)
	}
}

func TestSummarizeSingleton(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Mean != 3 || s.Std != 0 || s.StdErr != 0 {
		t.Fatalf("summary = %+v", s)
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Summarize(nil)
}

func TestSummarizeBoundsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		for _, x := range xs {
			// Skip values whose squares overflow: the variance computation
			// legitimately produces +Inf there.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e150 {
				return true
			}
		}
		s := Summarize(xs)
		return s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReplicateSeedsDistinct(t *testing.T) {
	var seeds []int64
	rs := Replicate(3, 100, func(seed int64) *engine.Result {
		seeds = append(seeds, seed)
		return &engine.Result{TotalTime: float64(seed)}
	})
	if len(rs) != 3 {
		t.Fatalf("replicates = %d", len(rs))
	}
	if seeds[0] == seeds[1] || seeds[1] == seeds[2] {
		t.Fatalf("seeds not distinct: %v", seeds)
	}
}

func TestExtractHelpers(t *testing.T) {
	rs := []*engine.Result{{TotalTime: 10, FinalAccuracy: 0.9}, {TotalTime: 20, FinalAccuracy: 0.8}}
	tt := TotalTimes(rs)
	if tt[0] != 10 || tt[1] != 20 {
		t.Fatalf("TotalTimes = %v", tt)
	}
	acc := Accuracies(rs)
	if acc[0] != 0.9 || acc[1] != 0.8 {
		t.Fatalf("Accuracies = %v", acc)
	}
}

func TestSpeedupSummary(t *testing.T) {
	base := []*engine.Result{{TotalTime: 20}, {TotalTime: 40}}
	test := []*engine.Result{{TotalTime: 10}, {TotalTime: 10}}
	s, err := SpeedupSummary(base, test)
	if err != nil {
		t.Fatal(err)
	}
	if s.Mean != 3 { // (2 + 4) / 2
		t.Fatalf("mean speedup = %v", s.Mean)
	}
}

func TestSpeedupSummaryErrors(t *testing.T) {
	if _, err := SpeedupSummary(nil, nil); err == nil {
		t.Fatal("expected error for empty replicates")
	}
	if _, err := SpeedupSummary([]*engine.Result{{TotalTime: 1}}, []*engine.Result{{TotalTime: 0}}); err == nil {
		t.Fatal("expected error for zero time")
	}
}
