// Package stats provides multi-seed replication and summary statistics for
// the experiments: regenerated evaluation claims are reported as mean +/-
// stderr over several seeds, not single-run point estimates. The scenario
// suite layer's replicate block draws its seeds from the same derivation
// (ReplicaSeed), so declarative sweeps and programmatic Replicate calls
// run identical seed sets.
package stats

import (
	"fmt"
	"math"

	"netmax/internal/engine"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	StdErr float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs; it panics on an empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
		s.StdErr = s.Std / math.Sqrt(float64(len(xs)))
	}
	return s
}

func (s Summary) String() string {
	return fmt.Sprintf("%.3g +/- %.2g (n=%d)", s.Mean, s.StdErr, s.N)
}

// ReplicaSeed derives replica i's seed from a base seed: seeds are spaced
// 1000 apart so per-replica derived seeds (network schedules, partitions)
// never collide across replicas. Both Replicate and the scenario suite
// layer's replicate block use this derivation, so a suite's multi-seed
// sweep runs the exact seeds a hand-written Replicate call would.
func ReplicaSeed(base int64, i int) int64 { return base + int64(i)*1000 }

// Replicate runs a seeded experiment n times and returns its results.
func Replicate(n int, baseSeed int64, run func(seed int64) *engine.Result) []*engine.Result {
	out := make([]*engine.Result, n)
	// Seeds are disjoint and runs are internally deterministic, so the
	// replicas execute concurrently and land in seed order.
	engine.Concurrently(n, engine.ResolveParallelism(0), func(i int) {
		out[i] = run(ReplicaSeed(baseSeed, i))
	})
	return out
}

// Extract maps results to a scalar series.
func Extract(rs []*engine.Result, f func(*engine.Result) float64) []float64 {
	out := make([]float64, len(rs))
	for i, r := range rs {
		out[i] = f(r)
	}
	return out
}

// TotalTimes extracts TotalTime from each result.
func TotalTimes(rs []*engine.Result) []float64 {
	return Extract(rs, func(r *engine.Result) float64 { return r.TotalTime })
}

// Accuracies extracts FinalAccuracy from each result.
func Accuracies(rs []*engine.Result) []float64 {
	return Extract(rs, func(r *engine.Result) float64 { return r.FinalAccuracy })
}

// SpeedupSummary computes per-seed speedups base[i]/test[i] and summarizes
// them; the two slices must be paired by seed.
func SpeedupSummary(base, test []*engine.Result) (Summary, error) {
	if len(base) != len(test) || len(base) == 0 {
		return Summary{}, fmt.Errorf("stats: mismatched replicates %d vs %d", len(base), len(test))
	}
	sp := make([]float64, len(base))
	for i := range base {
		if test[i].TotalTime <= 0 {
			return Summary{}, fmt.Errorf("stats: non-positive time in replicate %d", i)
		}
		sp[i] = base[i].TotalTime / test[i].TotalTime
	}
	return Summarize(sp), nil
}
