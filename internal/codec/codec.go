// Package codec implements the model-vector compression codecs of the
// communication-efficient transport. NetMax's whole premise is that
// communication, not computation, bounds decentralized training on
// heterogeneous networks; the codecs here shrink the bytes a model pull
// puts on the wire, trading (for the lossy ones) a bounded amount of
// precision for bandwidth.
//
// Three codecs are provided:
//
//	raw      float64 coordinates verbatim (8 bytes each) — exact
//	float32  coordinates quantized to float32 (4 bytes each) — 2x smaller
//	topk     the k largest-magnitude coordinates as (index, float32 value)
//	         pairs — sparsified partial pulls, ~8·k bytes total
//
// A codec encodes one flat parameter vector into a payload and decodes a
// payload back into a vector. Sparse codecs transmit only a subset of
// coordinates; on decode the untransmitted coordinates are filled from the
// receiver's own current vector (the prior), which turns a top-k pull into
// a partial model pull: the blend step leaves local values untouched on
// coordinates the peer did not send.
//
// Every codec is deterministic: identical inputs produce identical payloads,
// which the discrete-event engine's bitwise-determinism gate relies on.
package codec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Wire identifiers, stable across versions: they appear in the transport's
// frame header, so renumbering breaks protocol compatibility.
const (
	IDRaw     uint8 = 0
	IDFloat32 uint8 = 1
	IDTopK    uint8 = 2
)

// Codec converts between flat model vectors and wire payloads.
type Codec interface {
	// Name is the stable flag-facing name ("raw", "float32", "topk").
	Name() string
	// ID is the wire identifier carried in the transport frame header.
	ID() uint8
	// AppendEncode appends the payload encoding of vec to dst and returns
	// the extended slice (append-style, so callers can reuse buffers).
	AppendEncode(dst []byte, vec []float64) []byte
	// Decode reconstructs a dim-length vector from payload. prior, when
	// non-nil, supplies values for coordinates the codec did not transmit
	// (sparse codecs); it must have length dim. Dense codecs ignore it.
	// prior is never written; the returned slice is freshly allocated.
	Decode(payload []byte, dim int, prior []float64) ([]float64, error)
	// DecodeInto is Decode writing into caller-owned dst (length = dim) so
	// hot loops can reuse buffers. dst and prior may be the same slice.
	DecodeInto(payload []byte, dst, prior []float64) error
	// WireBytes predicts the payload size for a dim-length vector. This is
	// the figure the simulator's bandwidth model charges per transfer.
	WireBytes(dim int) int64
	// Sparse reports whether decoding consults prior (the codec transmits
	// only a subset of coordinates). Receivers skip materializing a prior
	// for dense codecs.
	Sparse() bool
}

// ByName resolves a flag value to a codec. "topk" uses DefaultTopKFrac;
// use NewTopK for an explicit fraction.
func ByName(name string) (Codec, error) {
	switch name {
	case "raw", "":
		return Raw{}, nil
	case "float32":
		return Float32{}, nil
	case "topk":
		return NewTopK(DefaultTopKFrac), nil
	}
	return nil, fmt.Errorf("codec: unknown codec %q (want raw, float32 or topk)", name)
}

// ByID resolves a wire identifier to a codec able to decode its payloads.
// (Top-k payloads are self-describing — k travels in the payload — so the
// returned codec decodes any fraction.)
func ByID(id uint8) (Codec, error) {
	switch id {
	case IDRaw:
		return Raw{}, nil
	case IDFloat32:
		return Float32{}, nil
	case IDTopK:
		return NewTopK(DefaultTopKFrac), nil
	}
	return nil, fmt.Errorf("codec: unknown codec id %d", id)
}

// Names lists the flag-facing codec names.
func Names() []string { return []string{"raw", "float32", "topk"} }

// decodeAlloc implements the allocating Decode in terms of DecodeInto.
func decodeAlloc(c Codec, payload []byte, dim int, prior []float64) ([]float64, error) {
	if prior != nil && len(prior) != dim {
		return nil, fmt.Errorf("codec: %s prior length %d, want %d", c.Name(), len(prior), dim)
	}
	out := make([]float64, dim)
	if err := c.DecodeInto(payload, out, prior); err != nil {
		return nil, err
	}
	return out, nil
}

// --- raw ---

// Raw transmits float64 coordinates verbatim: exact, 8 bytes per coordinate.
type Raw struct{}

// Name implements Codec.
func (Raw) Name() string { return "raw" }

// ID implements Codec.
func (Raw) ID() uint8 { return IDRaw }

// AppendEncode implements Codec.
func (Raw) AppendEncode(dst []byte, vec []float64) []byte {
	for _, v := range vec {
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// Decode implements Codec.
func (c Raw) Decode(payload []byte, dim int, prior []float64) ([]float64, error) {
	return decodeAlloc(c, payload, dim, prior)
}

// DecodeInto implements Codec.
func (Raw) DecodeInto(payload []byte, dst, _ []float64) error {
	if len(payload) != 8*len(dst) {
		return fmt.Errorf("codec: raw payload %d bytes, want %d for dim %d", len(payload), 8*len(dst), len(dst))
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.BigEndian.Uint64(payload[8*i:]))
	}
	return nil
}

// WireBytes implements Codec.
func (Raw) WireBytes(dim int) int64 { return 8 * int64(dim) }

// Sparse implements Codec.
func (Raw) Sparse() bool { return false }

// --- float32 ---

// Float32 quantizes coordinates to float32: 4 bytes per coordinate, relative
// error bounded by float32 rounding (~1.2e-7), halving the raw wire size.
// This matches what GPU frameworks ship by default, so it is also the
// codec whose WireBytes agrees with nn.ModelSpec.ModelBytes.
type Float32 struct{}

// Name implements Codec.
func (Float32) Name() string { return "float32" }

// ID implements Codec.
func (Float32) ID() uint8 { return IDFloat32 }

// AppendEncode implements Codec.
func (Float32) AppendEncode(dst []byte, vec []float64) []byte {
	for _, v := range vec {
		dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(v)))
	}
	return dst
}

// Decode implements Codec.
func (c Float32) Decode(payload []byte, dim int, prior []float64) ([]float64, error) {
	return decodeAlloc(c, payload, dim, prior)
}

// DecodeInto implements Codec.
func (Float32) DecodeInto(payload []byte, dst, _ []float64) error {
	if len(payload) != 4*len(dst) {
		return fmt.Errorf("codec: float32 payload %d bytes, want %d for dim %d", len(payload), 4*len(dst), len(dst))
	}
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.BigEndian.Uint32(payload[4*i:])))
	}
	return nil
}

// WireBytes implements Codec.
func (Float32) WireBytes(dim int) int64 { return 4 * int64(dim) }

// Sparse implements Codec.
func (Float32) Sparse() bool { return false }

// --- top-k ---

// DefaultTopKFrac is the fraction of coordinates the "topk" flag value
// keeps: a quarter of the model per pull, an 8x reduction versus raw.
const DefaultTopKFrac = 0.25

// TopK transmits only the k = ceil(Frac·dim) largest-magnitude coordinates
// as (uint32 index, float32 value) pairs behind a uint32 count header.
// Untransmitted coordinates decode to the receiver's prior values, making a
// top-k pull a partial model pull. Ties in magnitude break toward the lower
// index so encoding is deterministic.
type TopK struct {
	// Frac is the fraction of coordinates kept, clamped to (0, 1].
	Frac float64
}

// NewTopK returns a TopK codec keeping the given fraction of coordinates.
// Fractions outside (0, 1] are clamped.
func NewTopK(frac float64) TopK {
	if frac <= 0 {
		frac = DefaultTopKFrac
	}
	if frac > 1 {
		frac = 1
	}
	return TopK{Frac: frac}
}

// Name implements Codec.
func (TopK) Name() string { return "topk" }

// ID implements Codec.
func (TopK) ID() uint8 { return IDTopK }

// K returns the number of coordinates kept for a dim-length vector.
func (c TopK) K(dim int) int {
	if dim == 0 {
		return 0
	}
	frac := c.Frac
	if frac <= 0 || frac > 1 {
		frac = DefaultTopKFrac
	}
	k := int(math.Ceil(frac * float64(dim)))
	if k < 1 {
		k = 1
	}
	if k > dim {
		k = dim
	}
	return k
}

// AppendEncode implements Codec.
func (c TopK) AppendEncode(dst []byte, vec []float64) []byte {
	k := c.K(len(vec))
	idx := topKIndices(vec, k)
	dst = binary.BigEndian.AppendUint32(dst, uint32(k))
	for _, i := range idx {
		dst = binary.BigEndian.AppendUint32(dst, uint32(i))
		dst = binary.BigEndian.AppendUint32(dst, math.Float32bits(float32(vec[i])))
	}
	return dst
}

// Decode implements Codec.
func (c TopK) Decode(payload []byte, dim int, prior []float64) ([]float64, error) {
	return decodeAlloc(c, payload, dim, prior)
}

// DecodeInto implements Codec.
func (TopK) DecodeInto(payload []byte, dst, prior []float64) error {
	dim := len(dst)
	if len(payload) < 4 {
		return fmt.Errorf("codec: topk payload %d bytes, want >= 4", len(payload))
	}
	k := int(binary.BigEndian.Uint32(payload))
	if want := 4 + 8*k; len(payload) != want {
		return fmt.Errorf("codec: topk payload %d bytes, want %d for k=%d", len(payload), want, k)
	}
	if k > dim {
		return fmt.Errorf("codec: topk k=%d exceeds dim %d", k, dim)
	}
	if prior != nil && len(prior) != dim {
		return fmt.Errorf("codec: topk prior length %d, want %d", len(prior), dim)
	}
	// Validate every index before writing so a malformed payload leaves
	// dst untouched.
	for e := 0; e < k; e++ {
		if i := int(binary.BigEndian.Uint32(payload[4+8*e:])); i >= dim {
			return fmt.Errorf("codec: topk index %d out of range for dim %d", i, dim)
		}
	}
	if prior == nil {
		for i := range dst {
			dst[i] = 0
		}
	} else if dim > 0 && &prior[0] != &dst[0] {
		copy(dst, prior)
	}
	for e := 0; e < k; e++ {
		off := 4 + 8*e
		i := int(binary.BigEndian.Uint32(payload[off:]))
		dst[i] = float64(math.Float32frombits(binary.BigEndian.Uint32(payload[off+4:])))
	}
	return nil
}

// WireBytes implements Codec.
func (c TopK) WireBytes(dim int) int64 { return 4 + 8*int64(c.K(dim)) }

// Sparse implements Codec.
func (TopK) Sparse() bool { return true }

// topKIndices returns the indices of the k largest-magnitude entries of vec
// in ascending index order. Selection is a deterministic quickselect
// (median-of-three pivot, ties broken toward the lower index), so the same
// vector always yields the same payload.
func topKIndices(vec []float64, k int) []int {
	idx := make([]int, len(vec))
	for i := range idx {
		idx[i] = i
	}
	if k < len(idx) {
		quickSelect(vec, idx, k)
		idx = idx[:k]
	}
	// Canonical ascending-index order.
	sort.Ints(idx)
	return idx
}

// greater reports whether coordinate a outranks coordinate b: larger
// magnitude wins, lower index breaks ties.
func greater(vec []float64, a, b int) bool {
	ma, mb := math.Abs(vec[a]), math.Abs(vec[b])
	if ma != mb {
		return ma > mb
	}
	return a < b
}

// quickSelect partitions idx so its first k entries are the top-k
// coordinates of vec under greater (in arbitrary order).
func quickSelect(vec []float64, idx []int, k int) {
	lo, hi := 0, len(idx)
	for hi-lo > 1 {
		p := partition(vec, idx, lo, hi)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p
		}
	}
}

// partition performs a Hoare-style partition of idx[lo:hi] around a
// median-of-three pivot, returning the pivot's final position. Entries
// before it outrank it; entries after do not.
func partition(vec []float64, idx []int, lo, hi int) int {
	mid := lo + (hi-lo)/2
	last := hi - 1
	// Median-of-three: order (lo, mid, last) so idx[mid] is the median.
	if greater(vec, idx[mid], idx[lo]) {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if greater(vec, idx[last], idx[lo]) {
		idx[last], idx[lo] = idx[lo], idx[last]
	}
	if greater(vec, idx[mid], idx[last]) {
		idx[mid], idx[last] = idx[last], idx[mid]
	}
	pivot := idx[last]
	store := lo
	for i := lo; i < last; i++ {
		if greater(vec, idx[i], pivot) {
			idx[i], idx[store] = idx[store], idx[i]
			store++
		}
	}
	idx[store], idx[last] = idx[last], idx[store]
	return store
}
