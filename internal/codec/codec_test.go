package codec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randomVec(rng *rand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(5)-2))
	}
	return v
}

func TestRawRoundTripExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dim := range []int{0, 1, 7, 256, 1023} {
		vec := randomVec(rng, dim)
		payload := (Raw{}).AppendEncode(nil, vec)
		if int64(len(payload)) != (Raw{}).WireBytes(dim) {
			t.Fatalf("dim %d: payload %d bytes, WireBytes says %d", dim, len(payload), (Raw{}).WireBytes(dim))
		}
		got, err := (Raw{}).Decode(payload, dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vec {
			if got[i] != vec[i] {
				t.Fatalf("dim %d coord %d: %v != %v (raw must be exact)", dim, i, got[i], vec[i])
			}
		}
	}
}

func TestFloat32RoundTripWithinTolerance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		dim := 1 + rng.Intn(2000)
		vec := randomVec(rng, dim)
		payload := (Float32{}).AppendEncode(nil, vec)
		if int64(len(payload)) != (Float32{}).WireBytes(dim) {
			t.Fatalf("payload %d bytes, WireBytes says %d", len(payload), (Float32{}).WireBytes(dim))
		}
		got, err := (Float32{}).Decode(payload, dim, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vec {
			// float32 rounding: relative error <= 2^-24.
			tol := math.Abs(vec[i]) * 6e-8
			if diff := math.Abs(got[i] - vec[i]); diff > tol {
				t.Fatalf("coord %d: |%v - %v| = %v > %v", i, got[i], vec[i], diff, tol)
			}
		}
	}
}

func TestFloat32ExactlyHalvesRaw(t *testing.T) {
	for _, dim := range []int{1, 100, 4_200_000} {
		if 2*(Float32{}).WireBytes(dim) != (Raw{}).WireBytes(dim) {
			t.Fatalf("dim %d: float32 %d vs raw %d", dim, (Float32{}).WireBytes(dim), (Raw{}).WireBytes(dim))
		}
	}
}

// TestTopKPreservesLargestMagnitudes checks the defining property: the k
// largest-|v| coordinates survive the round trip (as float32), and every
// other coordinate decodes to the prior.
func TestTopKPreservesLargestMagnitudes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		dim := 2 + rng.Intn(500)
		vec := randomVec(rng, dim)
		c := NewTopK(0.1 + rng.Float64()*0.9)
		k := c.K(dim)

		payload := c.AppendEncode(nil, vec)
		if int64(len(payload)) != c.WireBytes(dim) {
			t.Fatalf("payload %d bytes, WireBytes says %d", len(payload), c.WireBytes(dim))
		}
		prior := randomVec(rng, dim)
		got, err := c.Decode(payload, dim, prior)
		if err != nil {
			t.Fatal(err)
		}

		// Reference top-k set under the codec's ordering.
		ref := make([]int, dim)
		for i := range ref {
			ref[i] = i
		}
		sort.Slice(ref, func(a, b int) bool { return greater(vec, ref[a], ref[b]) })
		want := make(map[int]bool, k)
		for _, i := range ref[:k] {
			want[i] = true
		}

		for i := range got {
			if want[i] {
				if got[i] != float64(float32(vec[i])) {
					t.Fatalf("top-k coord %d: got %v, want %v", i, got[i], float64(float32(vec[i])))
				}
			} else if got[i] != prior[i] {
				t.Fatalf("untransmitted coord %d: got %v, want prior %v", i, got[i], prior[i])
			}
		}
	}
}

func TestTopKNilPriorDecodesZeros(t *testing.T) {
	vec := []float64{5, -9, 0.5, 2}
	c := NewTopK(0.5) // k = 2: coords 1 (-9) and 0 (5)
	got, err := c.Decode(c.AppendEncode(nil, vec), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, -9, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTopKDeterministicOnTies(t *testing.T) {
	vec := []float64{1, -1, 1, -1, 0.5}
	c := NewTopK(0.4) // k = 2; all of coords 0..3 tie at |1|
	p1 := c.AppendEncode(nil, vec)
	p2 := c.AppendEncode(nil, vec)
	if string(p1) != string(p2) {
		t.Fatal("encoding not deterministic")
	}
	got, err := c.Decode(p1, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Lower index wins ties: coords 0 and 1.
	want := []float64{1, -1, 0, 0, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestTopKFracClamping(t *testing.T) {
	if k := NewTopK(-1).K(100); k != 25 { // clamps to default 0.25
		t.Fatalf("K = %d", k)
	}
	if k := NewTopK(5).K(100); k != 100 {
		t.Fatalf("K = %d", k)
	}
	if k := NewTopK(0.001).K(100); k != 1 { // floor of one coordinate
		t.Fatalf("K = %d", k)
	}
}

func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	if _, err := (Raw{}).Decode(make([]byte, 12), 2, nil); err == nil {
		t.Fatal("raw accepted short payload")
	}
	if _, err := (Float32{}).Decode(make([]byte, 9), 2, nil); err == nil {
		t.Fatal("float32 accepted misaligned payload")
	}
	if _, err := (TopK{}).Decode([]byte{0, 0}, 2, nil); err == nil {
		t.Fatal("topk accepted truncated header")
	}
	// k claims more entries than the payload holds.
	if _, err := (TopK{}).Decode([]byte{0, 0, 0, 9, 1, 2, 3}, 2, nil); err == nil {
		t.Fatal("topk accepted inconsistent k")
	}
	// Index out of range for dim.
	c := NewTopK(1)
	payload := c.AppendEncode(nil, []float64{1, 2, 3})
	if _, err := c.Decode(payload, 2, nil); err == nil {
		t.Fatal("topk accepted out-of-range index")
	}
}

func TestByNameAndByID(t *testing.T) {
	for _, name := range Names() {
		c, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, c.Name())
		}
		d, err := ByID(c.ID())
		if err != nil {
			t.Fatal(err)
		}
		if d.ID() != c.ID() {
			t.Fatalf("ByID round trip broken for %q", name)
		}
	}
	if c, err := ByName(""); err != nil || c.Name() != "raw" {
		t.Fatalf("empty name should default to raw, got %v %v", c, err)
	}
	if _, err := ByName("zstd"); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := ByID(200); err == nil {
		t.Fatal("unknown id accepted")
	}
}

// TestCodecsReduceWireBytesOnSimMobileNet pins the acceptance numbers: on a
// MobileNet-sized vector (4.2M coordinates) float32 is exactly 2x smaller
// than raw and default top-k is ~4x smaller.
func TestCodecsReduceWireBytesOnSimMobileNet(t *testing.T) {
	const dim = 4_200_000
	raw := (Raw{}).WireBytes(dim)
	f32 := (Float32{}).WireBytes(dim)
	topk := NewTopK(DefaultTopKFrac).WireBytes(dim)
	if raw < 2*f32 {
		t.Fatalf("float32 %d not >= 2x smaller than raw %d", f32, raw)
	}
	if raw < 2*topk {
		t.Fatalf("topk %d not >= 2x smaller than raw %d", topk, raw)
	}
}
