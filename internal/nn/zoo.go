package nn

import (
	"fmt"
	"math/rand"
)

// ModelSpec describes one of the paper's models. The learning network we
// actually train is a small MLP (hidden layout below); the timing quantities
// — RealParams and ComputeSecs — are taken from the paper's models so that
// the simulator's communication/computation ratios match the hardware the
// paper measured (see docs/ARCHITECTURE.md). Communication time for a model transfer is
// proportional to RealParams*4 bytes; computation time per local iteration is
// ComputeSecs on the reference GPU.
type ModelSpec struct {
	Name        string
	RealParams  int64   // parameter count of the paper's model
	ComputeSecs float64 // per-iteration local gradient time on the reference GPU (batch 128)
	Hidden      []int   // hidden layer widths of the trained MLP stand-in
}

// The compute times are calibrated so that, combined with the simnet link
// rates, the Fig. 3 shape holds: GPU gradient computation is cheaper than
// network transfer, inter-machine iteration time lands at 2-4x intra-machine,
// and VGG19 iterations take ~2x ResNet18 (Section II-B: "communication time
// usually dominates").
var (
	// SimMobileNet mirrors MobileNet (4.2M params).
	SimMobileNet = ModelSpec{Name: "MobileNet", RealParams: 4_200_000, ComputeSecs: 0.05, Hidden: []int{18}}
	// SimResNet18 mirrors ResNet18 (11.7M params).
	SimResNet18 = ModelSpec{Name: "ResNet18", RealParams: 11_700_000, ComputeSecs: 0.10, Hidden: []int{40}}
	// SimResNet50 mirrors ResNet50 (25.6M params).
	SimResNet50 = ModelSpec{Name: "ResNet50", RealParams: 25_600_000, ComputeSecs: 0.18, Hidden: []int{56}}
	// SimVGG19 mirrors VGG19 (143.7M params).
	SimVGG19 = ModelSpec{Name: "VGG19", RealParams: 143_700_000, ComputeSecs: 0.20, Hidden: []int{72}}
	// SimGoogLeNet mirrors GoogLeNet (6.8M params).
	SimGoogLeNet = ModelSpec{Name: "GoogLeNet", RealParams: 6_800_000, ComputeSecs: 0.08, Hidden: []int{24}}
)

// Specs lists the full zoo.
var Specs = []ModelSpec{SimMobileNet, SimResNet18, SimResNet50, SimVGG19, SimGoogLeNet}

// SpecByName returns the spec with the given name.
func SpecByName(name string) (ModelSpec, error) {
	for _, s := range Specs {
		if s.Name == name {
			return s, nil
		}
	}
	return ModelSpec{}, fmt.Errorf("nn: unknown model spec %q", name)
}

// ModelBytes returns the serialized size of the paper model in bytes
// (float32 parameters, as PyTorch would send them).
func (s ModelSpec) ModelBytes() int64 { return s.RealParams * 4 }

// Build constructs the MLP stand-in for this spec with the given input
// dimensionality and class count. Identical seeds produce identical initial
// parameters, which the decentralized trainers rely on.
func (s ModelSpec) Build(seed int64, inputDim, classes int) *Model {
	rng := rand.New(rand.NewSource(seed))
	var layers []Layer
	prev := inputDim
	for _, h := range s.Hidden {
		layers = append(layers, NewLinear(rng, prev, h), ReLU{})
		prev = h
	}
	layers = append(layers, NewLinear(rng, prev, classes))
	return NewModel(layers...)
}
