package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Checkpoint is a serializable snapshot of a model's parameters and its
// optimizer state, allowing training to pause and resume — a standard
// requirement for the long multi-day jobs the paper's Section V-A mentions.
type Checkpoint struct {
	// Params is the flat parameter vector.
	Params []float64
	// Velocity is the SGD momentum state, one slice per parameter tensor
	// (nil if the optimizer has not stepped yet).
	Velocity [][]float64
	// LR is the optimizer's current learning rate (after any decay).
	LR float64
	// Momentum and WeightDecay reproduce the optimizer configuration.
	Momentum    float64
	WeightDecay float64
}

// Snapshot captures the model and optimizer into a Checkpoint.
func Snapshot(m *Model, opt *SGD) *Checkpoint {
	cp := &Checkpoint{
		Params:      m.Vector(),
		LR:          opt.LR,
		Momentum:    opt.Momentum,
		WeightDecay: opt.WeightDecay,
	}
	if opt.velocity != nil {
		cp.Velocity = make([][]float64, len(opt.velocity))
		for i, v := range opt.velocity {
			cp.Velocity[i] = append([]float64(nil), v...)
		}
	}
	return cp
}

// Restore loads a Checkpoint into the model and optimizer. The model must
// have the same architecture (parameter layout) as the one snapshotted.
func Restore(cp *Checkpoint, m *Model, opt *SGD) error {
	if len(cp.Params) != m.VectorLen() {
		return fmt.Errorf("nn: checkpoint has %d parameters, model wants %d", len(cp.Params), m.VectorLen())
	}
	m.SetVector(cp.Params)
	opt.LR = cp.LR
	opt.Momentum = cp.Momentum
	opt.WeightDecay = cp.WeightDecay
	if cp.Velocity == nil {
		opt.velocity = nil
		return nil
	}
	params := m.Params()
	if len(cp.Velocity) != len(params) {
		return fmt.Errorf("nn: checkpoint has %d velocity tensors, model wants %d", len(cp.Velocity), len(params))
	}
	opt.velocity = make([][]float64, len(params))
	for i, p := range params {
		if len(cp.Velocity[i]) != p.Data.Len() {
			return fmt.Errorf("nn: velocity tensor %d has %d entries, want %d", i, len(cp.Velocity[i]), p.Data.Len())
		}
		opt.velocity[i] = append([]float64(nil), cp.Velocity[i]...)
	}
	return nil
}

// Save writes the checkpoint with gob framing.
func (cp *Checkpoint) Save(w io.Writer) error {
	return gob.NewEncoder(w).Encode(cp)
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("nn: decode checkpoint: %w", err)
	}
	return &cp, nil
}
