package nn

import "netmax/internal/autograd"

// backwardScalar runs autograd.Backward; a tiny indirection so tests read
// naturally.
func backwardScalar(v *autograd.Value) { autograd.Backward(v) }
