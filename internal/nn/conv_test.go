package nn

import (
	"math"
	"math/rand"
	"testing"

	"netmax/internal/autograd"
	"netmax/internal/tensor"
)

func TestConv1DForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(rng, 1, 2)
	// Fix kernel to [1, -1], bias 0: output = x[i] - x[i+1]... (kernel dot window)
	c.Kernels.Data.Data[0] = 1
	c.Kernels.Data.Data[1] = -1
	x := autograd.Constant(tensor.FromSlice([]float64{3, 1, 4, 1}, 1, 4))
	out := c.Forward(x)
	want := []float64{3*1 + 1*(-1), 1*1 + 4*(-1), 4*1 + 1*(-1)}
	if out.Data.Len() != 3 {
		t.Fatalf("out shape %v", out.Data.Shape)
	}
	for i, w := range want {
		if math.Abs(out.Data.Data[i]-w) > 1e-12 {
			t.Fatalf("out = %v, want %v", out.Data.Data, want)
		}
	}
}

func TestConv1DOutLen(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(rng, 3, 4)
	if got := c.OutLen(10); got != 3*7 {
		t.Fatalf("OutLen = %d, want 21", got)
	}
}

func TestConv1DGradientNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := NewConv1D(rng, 2, 3)
	xt := tensor.Randn(rng, 1, 2, 5)
	forward := func() float64 {
		x := autograd.Constant(xt)
		return meanOf(c.Forward(x))
	}
	x := autograd.NewLeaf(xt, true)
	out := autograd.Mean(c.Forward(x))
	autograd.Backward(out)
	const h = 1e-6
	for i := range c.Kernels.Data.Data {
		orig := c.Kernels.Data.Data[i]
		c.Kernels.Data.Data[i] = orig + h
		fp := forward()
		c.Kernels.Data.Data[i] = orig - h
		fm := forward()
		c.Kernels.Data.Data[i] = orig
		want := (fp - fm) / (2 * h)
		if math.Abs(c.Kernels.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("kernel grad[%d] = %v, numerical %v", i, c.Kernels.Grad.Data[i], want)
		}
	}
	// Input gradient via the im2col scatter.
	for i := range xt.Data {
		orig := xt.Data[i]
		xt.Data[i] = orig + h
		fp := forward()
		xt.Data[i] = orig - h
		fm := forward()
		xt.Data[i] = orig
		want := (fp - fm) / (2 * h)
		if math.Abs(x.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("input grad[%d] = %v, numerical %v", i, x.Grad.Data[i], want)
		}
	}
}

func meanOf(v *autograd.Value) float64 {
	return v.Data.Mean()
}

func TestMaxPool1DForward(t *testing.T) {
	x := autograd.Constant(tensor.FromSlice([]float64{1, 5, 2, 2, 9}, 1, 5))
	out := MaxPool1D{}.Forward(x)
	want := []float64{5, 2, 9}
	for i, w := range want {
		if out.Data.Data[i] != w {
			t.Fatalf("pool = %v, want %v", out.Data.Data, want)
		}
	}
}

func TestMaxPool1DBackwardRoutesToArgmax(t *testing.T) {
	xt := tensor.FromSlice([]float64{1, 5, 2, 2}, 1, 4)
	x := autograd.NewLeaf(xt, true)
	autograd.Backward(autograd.Mean(MaxPool1D{}.Forward(x)))
	// Gradient must land on elements 1 (max of first pair) and on one of
	// the tied second pair, nowhere else.
	if x.Grad.Data[0] != 0 {
		t.Fatalf("grad leaked to non-max element: %v", x.Grad.Data)
	}
	if x.Grad.Data[1] == 0 {
		t.Fatalf("no grad at argmax: %v", x.Grad.Data)
	}
}

func TestConvModelTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, dim, classes := 96, 12, 3
	x := tensor.New(n, dim)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % classes
		labels[i] = c
		for j := 0; j < dim; j++ {
			x.Set(i, j, rng.NormFloat64()*0.4)
		}
		// Class-dependent bump at a class-specific offset: a pattern a
		// convolution can pick up position-invariantly.
		x.Set(i, c*3, x.At(i, c*3)+2)
		x.Set(i, c*3+1, x.At(i, c*3+1)+2)
	}
	m := ConvVariant(7, dim, classes, 4, 3)
	opt := NewSGD(0.05)
	first := m.Loss(x, labels).Item()
	for it := 0; it < 300; it++ {
		m.ZeroGrad()
		backwardScalar(m.Loss(x, labels))
		opt.Step(m)
	}
	last := m.Loss(x, labels).Item()
	if last > first*0.5 {
		t.Fatalf("conv model failed to learn: %v -> %v", first, last)
	}
	if acc := m.Accuracy(x, labels); acc < 0.85 {
		t.Fatalf("conv model accuracy = %v", acc)
	}
}

func TestConvVariantVectorRoundTrip(t *testing.T) {
	m := ConvVariant(5, 10, 4, 3, 3)
	v := m.Vector()
	m2 := ConvVariant(6, 10, 4, 3, 3)
	m2.SetVector(v)
	v2 := m2.Vector()
	for i := range v {
		if v[i] != v2[i] {
			t.Fatal("conv model vector round trip failed")
		}
	}
}

func TestConv1DLengthMismatchPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := NewConv1D(rng, 1, 2)
	c.Forward(autograd.Constant(tensor.New(1, 6)))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length change")
		}
	}()
	c.Forward(autograd.Constant(tensor.New(1, 8)))
}

func TestReshapeRoundTrip(t *testing.T) {
	xt := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := autograd.NewLeaf(xt, true)
	r := autograd.Reshape(x, 3, 2)
	if r.Data.Shape[0] != 3 || r.Data.Shape[1] != 2 {
		t.Fatalf("shape = %v", r.Data.Shape)
	}
	autograd.Backward(autograd.Mean(r))
	for _, g := range x.Grad.Data {
		if math.Abs(g-1.0/6) > 1e-12 {
			t.Fatalf("reshape grad = %v", x.Grad.Data)
		}
	}
}

func TestTranspose2DGrad(t *testing.T) {
	xt := tensor.FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	x := autograd.NewLeaf(xt, true)
	autograd.Backward(autograd.Mean(autograd.Transpose2D(x)))
	for _, g := range x.Grad.Data {
		if math.Abs(g-1.0/6) > 1e-12 {
			t.Fatalf("transpose grad = %v", x.Grad.Data)
		}
	}
}
