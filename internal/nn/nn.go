// Package nn provides neural-network layers, models and the SGD optimizer
// built on the internal autograd engine.
//
// A central requirement of the decentralized algorithms in this repository is
// treating a model as a flat parameter vector that can be serialized, sent to
// a peer, and blended into another replica (Algorithm 2, lines 13-15 of the
// paper). Model therefore exposes VectorLen/CopyVector/SetVector/AXPYVector
// views over its parameters in addition to the usual Forward/Loss methods.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"netmax/internal/autograd"
	"netmax/internal/tensor"
)

// Layer is a differentiable module.
type Layer interface {
	Forward(x *autograd.Value) *autograd.Value
	Params() []*autograd.Value
}

// Linear is a fully connected layer: y = xW + b.
type Linear struct {
	W *autograd.Value
	B *autograd.Value
}

// NewLinear creates a Linear layer with Xavier-style initialization.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	std := math.Sqrt(2.0 / float64(in+out))
	return &Linear{
		W: autograd.NewLeaf(tensor.Randn(rng, std, in, out), true),
		B: autograd.NewLeaf(tensor.New(out), true),
	}
}

// Forward applies the affine map.
func (l *Linear) Forward(x *autograd.Value) *autograd.Value {
	return autograd.AddRowVector(autograd.MatMul(x, l.W), l.B)
}

// Params returns the trainable leaves.
func (l *Linear) Params() []*autograd.Value { return []*autograd.Value{l.W, l.B} }

// ReLU is a stateless rectified-linear activation layer.
type ReLU struct{}

// Forward applies max(x,0).
func (ReLU) Forward(x *autograd.Value) *autograd.Value { return autograd.ReLU(x) }

// Params returns nil: ReLU has no parameters.
func (ReLU) Params() []*autograd.Value { return nil }

// Tanh is a stateless hyperbolic-tangent activation layer.
type Tanh struct{}

// Forward applies tanh elementwise.
func (Tanh) Forward(x *autograd.Value) *autograd.Value { return autograd.Tanh(x) }

// Params returns nil: Tanh has no parameters.
func (Tanh) Params() []*autograd.Value { return nil }

// Model is a feed-forward network with a flat-parameter-vector view.
type Model struct {
	Layers []Layer

	params []*autograd.Value // cached flattened parameter list
	total  int               // total scalar parameter count
}

// NewModel builds a model from layers and caches the parameter layout.
func NewModel(layers ...Layer) *Model {
	m := &Model{Layers: layers}
	for _, l := range layers {
		for _, p := range l.Params() {
			m.params = append(m.params, p)
			m.total += p.Data.Len()
		}
	}
	return m
}

// Forward runs the network on a batch of inputs (rank-2: batch x features).
func (m *Model) Forward(x *autograd.Value) *autograd.Value {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Params returns the flattened list of trainable leaves.
func (m *Model) Params() []*autograd.Value { return m.params }

// VectorLen returns the total number of scalar parameters.
func (m *Model) VectorLen() int { return m.total }

// CopyVector copies all parameters into dst, which must have length
// VectorLen, and returns dst.
func (m *Model) CopyVector(dst []float64) []float64 {
	if len(dst) != m.total {
		panic(fmt.Sprintf("nn: CopyVector dst length %d, want %d", len(dst), m.total))
	}
	off := 0
	for _, p := range m.params {
		off += copy(dst[off:], p.Data.Data)
	}
	return dst
}

// Vector returns a fresh copy of the parameter vector.
func (m *Model) Vector() []float64 {
	return m.CopyVector(make([]float64, m.total))
}

// SetVector overwrites all parameters from src (length VectorLen).
func (m *Model) SetVector(src []float64) {
	if len(src) != m.total {
		panic(fmt.Sprintf("nn: SetVector src length %d, want %d", len(src), m.total))
	}
	off := 0
	for _, p := range m.params {
		off += copy(p.Data.Data, src[off:off+p.Data.Len()])
	}
}

// AXPYVector performs params += s*v over the flat parameter view.
// This is the primitive used by the consensus second-step update.
func (m *Model) AXPYVector(s float64, v []float64) {
	if len(v) != m.total {
		panic(fmt.Sprintf("nn: AXPYVector length %d, want %d", len(v), m.total))
	}
	off := 0
	for _, p := range m.params {
		d := p.Data.Data
		for i := range d {
			d[i] += s * v[off+i]
		}
		off += len(d)
	}
}

// BlendVector performs params += c*(v - params) over the flat parameter
// view, i.e. params = (1-c)*params + c*v. This is exactly the second-step
// consensus update x_i ← x_i − αθ with θ = (ρ/2)(d_im+d_mi)/p_im (x_i − x_m)
// of Algorithm 2 when c = αρ(d_im+d_mi)/(2 p_im).
func (m *Model) BlendVector(c float64, v []float64) {
	if len(v) != m.total {
		panic(fmt.Sprintf("nn: BlendVector length %d, want %d", len(v), m.total))
	}
	off := 0
	for _, p := range m.params {
		d := p.Data.Data
		for i := range d {
			d[i] += c * (v[off+i] - d[i])
		}
		off += len(d)
	}
}

// GradVector copies all parameter gradients into dst (zeros where a
// parameter has no gradient yet) and returns dst.
func (m *Model) GradVector(dst []float64) []float64 {
	if len(dst) != m.total {
		panic(fmt.Sprintf("nn: GradVector dst length %d, want %d", len(dst), m.total))
	}
	off := 0
	for _, p := range m.params {
		n := p.Data.Len()
		if p.Grad == nil {
			for i := 0; i < n; i++ {
				dst[off+i] = 0
			}
		} else {
			copy(dst[off:], p.Grad.Data)
		}
		off += n
	}
	return dst
}

// SetGradVector overwrites all parameter gradients from src (length
// VectorLen), allocating gradient tensors where missing. Used by
// gradient-averaging algorithms (allreduce, parameter server).
func (m *Model) SetGradVector(src []float64) {
	if len(src) != m.total {
		panic(fmt.Sprintf("nn: SetGradVector src length %d, want %d", len(src), m.total))
	}
	off := 0
	for _, p := range m.params {
		n := p.Data.Len()
		if p.Grad == nil {
			p.Grad = tensor.New(p.Data.Shape...)
		}
		copy(p.Grad.Data, src[off:off+n])
		off += n
	}
}

// ZeroGrad clears all parameter gradients.
func (m *Model) ZeroGrad() { autograd.ZeroGrad(m.params...) }

// Loss computes mean softmax cross-entropy on a batch, building the graph.
func (m *Model) Loss(x *tensor.Tensor, labels []int) *autograd.Value {
	logits := m.Forward(autograd.Constant(x))
	return autograd.SoftmaxCrossEntropy(logits, labels)
}

// Accuracy returns the fraction of rows of x whose argmax logit equals the
// label. It does not build a gradient graph.
func (m *Model) Accuracy(x *tensor.Tensor, labels []int) float64 {
	logits := m.Forward(autograd.Constant(x))
	correct := 0
	for i := range labels {
		if logits.Data.ArgMaxRow(i) == labels[i] {
			correct++
		}
	}
	if len(labels) == 0 {
		return 0
	}
	return float64(correct) / float64(len(labels))
}

// SGD is a stochastic-gradient-descent optimizer with momentum and weight
// decay, matching the paper's training configuration (momentum 0.9, weight
// decay 1e-4, step LR decay).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity [][]float64
}

// NewSGD creates an optimizer with the paper's default hyper-parameters and
// the given initial learning rate.
func NewSGD(lr float64) *SGD {
	return &SGD{LR: lr, Momentum: 0.9, WeightDecay: 1e-4}
}

// Step applies one SGD update to the model from its current gradients.
func (o *SGD) Step(m *Model) {
	params := m.Params()
	if o.velocity == nil {
		o.velocity = make([][]float64, len(params))
		for i, p := range params {
			o.velocity[i] = make([]float64, p.Data.Len())
		}
	}
	for i, p := range params {
		if p.Grad == nil {
			continue
		}
		v := o.velocity[i]
		d := p.Data.Data
		g := p.Grad.Data
		for j := range d {
			gj := g[j] + o.WeightDecay*d[j]
			v[j] = o.Momentum*v[j] - o.LR*gj
			d[j] += v[j]
		}
	}
}

// DecayLR multiplies the learning rate by factor (paper: 0.1 on plateau).
func (o *SGD) DecayLR(factor float64) { o.LR *= factor }
