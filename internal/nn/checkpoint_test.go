package nn

import (
	"bytes"
	"math/rand"
	"testing"

	"netmax/internal/tensor"
)

func trainedModelAndOpt(t *testing.T, seed int64, steps int) (*Model, *SGD, *tensor.Tensor, []int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 32
	x := tensor.Randn(rng, 1, n, 4)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 3
	}
	m := smallModel(seed)
	opt := NewSGD(0.1)
	for i := 0; i < steps; i++ {
		m.ZeroGrad()
		backwardScalar(m.Loss(x, labels))
		opt.Step(m)
	}
	return m, opt, x, labels
}

func TestCheckpointRoundTrip(t *testing.T) {
	m, opt, _, _ := trainedModelAndOpt(t, 1, 10)
	cp := Snapshot(m, opt)
	var buf bytes.Buffer
	if err := cp.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m2 := smallModel(99)
	opt2 := NewSGD(0.5)
	if err := Restore(loaded, m2, opt2); err != nil {
		t.Fatal(err)
	}
	v1, v2 := m.Vector(), m2.Vector()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("restored parameters differ")
		}
	}
	if opt2.LR != opt.LR || opt2.Momentum != opt.Momentum || opt2.WeightDecay != opt.WeightDecay {
		t.Fatalf("optimizer config not restored: %+v vs %+v", opt2, opt)
	}
}

func TestCheckpointResumeContinuesIdentically(t *testing.T) {
	// Train 20 steps straight vs 10 + checkpoint/restore + 10: identical.
	mA, optA, xA, labelsA := trainedModelAndOpt(t, 7, 20)
	_ = optA

	mB, optB, _, _ := trainedModelAndOpt(t, 7, 10)
	cp := Snapshot(mB, optB)
	mC := smallModel(1234)
	optC := NewSGD(0.9)
	if err := Restore(cp, mC, optC); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mC.ZeroGrad()
		backwardScalar(mC.Loss(xA, labelsA))
		optC.Step(mC)
	}
	vA, vC := mA.Vector(), mC.Vector()
	for i := range vA {
		if vA[i] != vC[i] {
			t.Fatalf("resumed training diverged at %d: %v vs %v", i, vA[i], vC[i])
		}
	}
}

func TestRestoreLayoutMismatch(t *testing.T) {
	m, opt, _, _ := trainedModelAndOpt(t, 3, 2)
	cp := Snapshot(m, opt)
	rng := rand.New(rand.NewSource(4))
	other := NewModel(NewLinear(rng, 2, 2))
	if err := Restore(cp, other, NewSGD(0.1)); err == nil {
		t.Fatal("expected layout mismatch error")
	}
}

func TestSnapshotBeforeAnyStep(t *testing.T) {
	m := smallModel(5)
	opt := NewSGD(0.1)
	cp := Snapshot(m, opt)
	if cp.Velocity != nil {
		t.Fatal("velocity should be nil before the first step")
	}
	m2 := smallModel(6)
	if err := Restore(cp, m2, NewSGD(0.2)); err != nil {
		t.Fatal(err)
	}
}

func TestLoadCheckpointBadInput(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("expected decode error")
	}
}
