package nn

import (
	"fmt"
	"math"
	"math/rand"

	"netmax/internal/autograd"
	"netmax/internal/tensor"
)

// Conv1D is a one-dimensional convolution layer over feature vectors viewed
// as (channels=1) sequences. The paper trains CNNs (ResNet/VGG/MobileNet);
// the default zoo uses MLP stand-ins for single-CPU speed, but Conv1D lets
// users build convolutional stand-ins on the same substrate (see
// TestConvModelTrains and the ConvVariant helper).
//
// Input (batch, length) -> output (batch, filters*(length-kernel+1)) with
// the filter responses flattened channel-major.
type Conv1D struct {
	Kernels *autograd.Value // (filters, kernel)
	Bias    *autograd.Value // (filters)
	Filters int
	Kernel  int
	length  int // input length, fixed at first use (checked thereafter)
}

// NewConv1D creates a Conv1D with He-style initialization.
func NewConv1D(rng *rand.Rand, filters, kernel int) *Conv1D {
	std := math.Sqrt(2.0 / float64(kernel))
	return &Conv1D{
		Kernels: autograd.NewLeaf(tensor.Randn(rng, std, filters, kernel), true),
		Bias:    autograd.NewLeaf(tensor.New(filters), true),
		Filters: filters,
		Kernel:  kernel,
	}
}

// OutLen returns the flattened output width for the given input length.
func (c *Conv1D) OutLen(inLen int) int {
	return c.Filters * (inLen - c.Kernel + 1)
}

// Forward applies the convolution via an im2col matmul so that gradients
// flow through the existing autograd ops.
func (c *Conv1D) Forward(x *autograd.Value) *autograd.Value {
	batch, length := x.Data.Shape[0], x.Data.Shape[1]
	if c.length == 0 {
		c.length = length
	} else if c.length != length {
		panic(fmt.Sprintf("nn: Conv1D input length %d, want %d", length, c.length))
	}
	windows := length - c.Kernel + 1
	if windows <= 0 {
		panic(fmt.Sprintf("nn: Conv1D kernel %d exceeds input length %d", c.Kernel, length))
	}
	// im2col: (batch*windows, kernel) patch matrix. The patch matrix is a
	// linear function of x, so its gradient is scattered back by a custom
	// node below.
	patches := im2col(x, c.Kernel)
	// (batch*windows, kernel) @ (kernel, filters) -> (batch*windows, filters)
	kt := autograd.Transpose2D(c.Kernels)
	resp := autograd.AddRowVector(autograd.MatMul(patches, kt), c.Bias)
	// Reshape to (batch, windows*filters): a free reinterpretation.
	return autograd.Reshape(resp, batch, windows*c.Filters)
}

// Params returns the trainable leaves.
func (c *Conv1D) Params() []*autograd.Value {
	return []*autograd.Value{c.Kernels, c.Bias}
}

// im2col extracts sliding windows as rows, with gradient scatter-add.
func im2col(x *autograd.Value, kernel int) *autograd.Value {
	batch, length := x.Data.Shape[0], x.Data.Shape[1]
	windows := length - kernel + 1
	out := tensor.New(batch*windows, kernel)
	for b := 0; b < batch; b++ {
		row := x.Data.Data[b*length : (b+1)*length]
		for w := 0; w < windows; w++ {
			copy(out.Data[(b*windows+w)*kernel:(b*windows+w+1)*kernel], row[w:w+kernel])
		}
	}
	return autograd.Custom("im2col", out, []*autograd.Value{x}, func(grad *tensor.Tensor, parents []*autograd.Value) []*tensor.Tensor {
		g := tensor.New(batch, length)
		for b := 0; b < batch; b++ {
			for w := 0; w < windows; w++ {
				src := grad.Data[(b*windows+w)*kernel : (b*windows+w+1)*kernel]
				dst := g.Data[b*length : (b+1)*length]
				for k := 0; k < kernel; k++ {
					dst[w+k] += src[k]
				}
			}
		}
		return []*tensor.Tensor{g}
	})
}

// MaxPool1D halves the feature width by taking pairwise maxima.
type MaxPool1D struct{}

// Forward pools adjacent pairs; odd trailing elements pass through.
func (MaxPool1D) Forward(x *autograd.Value) *autograd.Value {
	batch, length := x.Data.Shape[0], x.Data.Shape[1]
	outLen := (length + 1) / 2
	out := tensor.New(batch, outLen)
	argmax := make([]int, batch*outLen)
	for b := 0; b < batch; b++ {
		for o := 0; o < outLen; o++ {
			i := 2 * o
			v := x.Data.At(b, i)
			best := i
			if i+1 < length && x.Data.At(b, i+1) > v {
				v = x.Data.At(b, i+1)
				best = i + 1
			}
			out.Set(b, o, v)
			argmax[b*outLen+o] = best
		}
	}
	return autograd.Custom("maxpool1d", out, []*autograd.Value{x}, func(grad *tensor.Tensor, parents []*autograd.Value) []*tensor.Tensor {
		g := tensor.New(batch, length)
		for b := 0; b < batch; b++ {
			for o := 0; o < outLen; o++ {
				g.Set(b, argmax[b*outLen+o], g.At(b, argmax[b*outLen+o])+grad.At(b, o))
			}
		}
		return []*tensor.Tensor{g}
	})
}

// Params returns nil: pooling has no parameters.
func (MaxPool1D) Params() []*autograd.Value { return nil }

// ConvVariant builds a small convolutional stand-in model: Conv1D + ReLU +
// MaxPool + Linear head. It exercises the full CNN code path on the same
// API as ModelSpec.Build.
func ConvVariant(seed int64, inputDim, classes, filters, kernel int) *Model {
	rng := rand.New(rand.NewSource(seed))
	conv := NewConv1D(rng, filters, kernel)
	convOut := conv.OutLen(inputDim)
	pooledOut := (convOut + 1) / 2
	return NewModel(
		conv,
		ReLU{},
		MaxPool1D{},
		NewLinear(rng, pooledOut, classes),
	)
}
