package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netmax/internal/tensor"
)

func smallModel(seed int64) *Model {
	rng := rand.New(rand.NewSource(seed))
	return NewModel(NewLinear(rng, 4, 8), ReLU{}, NewLinear(rng, 8, 3))
}

func TestVectorRoundTrip(t *testing.T) {
	m := smallModel(1)
	v := m.Vector()
	if len(v) != m.VectorLen() {
		t.Fatalf("Vector len %d, want %d", len(v), m.VectorLen())
	}
	m2 := smallModel(2)
	m2.SetVector(v)
	v2 := m2.Vector()
	for i := range v {
		if v[i] != v2[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestVectorLenMatchesLayers(t *testing.T) {
	m := smallModel(1)
	want := 4*8 + 8 + 8*3 + 3
	if m.VectorLen() != want {
		t.Fatalf("VectorLen = %d, want %d", m.VectorLen(), want)
	}
}

func TestAXPYVector(t *testing.T) {
	m := smallModel(3)
	orig := m.Vector()
	delta := make([]float64, m.VectorLen())
	for i := range delta {
		delta[i] = float64(i%5) - 2
	}
	m.AXPYVector(0.5, delta)
	got := m.Vector()
	for i := range got {
		want := orig[i] + 0.5*delta[i]
		if math.Abs(got[i]-want) > 1e-12 {
			t.Fatalf("AXPY wrong at %d: %v vs %v", i, got[i], want)
		}
	}
}

func TestAXPYVectorProperty(t *testing.T) {
	// AXPY with s then -s restores the original vector.
	f := func(seed int64, s float64) bool {
		if math.IsNaN(s) || math.IsInf(s, 0) || math.Abs(s) > 1e6 {
			return true
		}
		m := smallModel(seed)
		orig := m.Vector()
		rng := rand.New(rand.NewSource(seed + 1))
		v := make([]float64, m.VectorLen())
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		m.AXPYVector(s, v)
		m.AXPYVector(-s, v)
		got := m.Vector()
		for i := range got {
			if math.Abs(got[i]-orig[i]) > 1e-8*(1+math.Abs(orig[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := SimResNet18.Build(7, 10, 10)
	b := SimResNet18.Build(7, 10, 10)
	va, vb := a.Vector(), b.Vector()
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("Build not deterministic for equal seeds")
		}
	}
}

func TestZooOrdering(t *testing.T) {
	// Paper's parameter counts: MobileNet < GoogLeNet < ResNet18 < ResNet50 < VGG19.
	if !(SimMobileNet.RealParams < SimGoogLeNet.RealParams &&
		SimGoogLeNet.RealParams < SimResNet18.RealParams &&
		SimResNet18.RealParams < SimResNet50.RealParams &&
		SimResNet50.RealParams < SimVGG19.RealParams) {
		t.Fatal("zoo RealParams ordering does not match the paper")
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("VGG19")
	if err != nil || s.RealParams != 143_700_000 {
		t.Fatalf("SpecByName(VGG19) = %+v, %v", s, err)
	}
	if _, err := SpecByName("nope"); err == nil {
		t.Fatal("expected error for unknown spec")
	}
}

func TestModelBytes(t *testing.T) {
	if SimMobileNet.ModelBytes() != 16_800_000 {
		t.Fatalf("ModelBytes = %d", SimMobileNet.ModelBytes())
	}
}

func TestLossDecreasesUnderSGD(t *testing.T) {
	// Tiny separable problem: model must fit it quickly.
	rng := rand.New(rand.NewSource(5))
	n := 64
	x := tensor.New(n, 4)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		labels[i] = c
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64()*0.3)
		}
		x.Set(i, c, x.At(i, c)+2.0)
	}
	m := smallModel(11)
	opt := NewSGD(0.1)
	first := m.Loss(x, labels).Item()
	for it := 0; it < 200; it++ {
		m.ZeroGrad()
		loss := m.Loss(x, labels)
		backwardScalar(loss)
		opt.Step(m)
	}
	last := m.Loss(x, labels).Item()
	if last > first*0.5 {
		t.Fatalf("SGD failed to reduce loss: %v -> %v", first, last)
	}
	if acc := m.Accuracy(x, labels); acc < 0.9 {
		t.Fatalf("accuracy after training = %v, want >= 0.9", acc)
	}
}

func TestGradVectorZerosWithoutBackward(t *testing.T) {
	m := smallModel(9)
	g := m.GradVector(make([]float64, m.VectorLen()))
	for i, v := range g {
		if v != 0 {
			t.Fatalf("GradVector[%d] = %v before backward, want 0", i, v)
		}
	}
}

func TestSGDWeightDecayShrinksParams(t *testing.T) {
	m := smallModel(13)
	opt := &SGD{LR: 0.1, Momentum: 0, WeightDecay: 0.5}
	before := m.Vector()
	// No gradients: only weight decay acts... but Step skips params with nil
	// Grad, so force a zero backward pass first.
	x := tensor.New(2, 4)
	labels := []int{0, 1}
	m.ZeroGrad()
	backwardScalar(m.Loss(x, labels))
	m.ZeroGrad() // zero out the actual gradients, keep Grad tensors allocated
	opt.Step(m)
	after := m.Vector()
	norm := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x * x
		}
		return math.Sqrt(s)
	}
	if norm(after) >= norm(before) {
		t.Fatalf("weight decay did not shrink params: %v -> %v", norm(before), norm(after))
	}
}

func TestDecayLR(t *testing.T) {
	opt := NewSGD(0.1)
	opt.DecayLR(0.1)
	if math.Abs(opt.LR-0.01) > 1e-15 {
		t.Fatalf("LR = %v, want 0.01", opt.LR)
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := smallModel(1)
	if got := m.Accuracy(tensor.New(0, 4), nil); got != 0 {
		t.Fatalf("Accuracy on empty = %v", got)
	}
}

func TestSetVectorWrongLenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	smallModel(1).SetVector([]float64{1})
}
