package core

import (
	"math"
	"testing"

	"netmax/internal/baselines"
	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/nn"
	"netmax/internal/policy"
	"netmax/internal/simnet"
)

func hetConfig(workers, epochs int, seed int64) *engine.Config {
	train, test := data.SynthMNIST.Generate(1)
	idx := make([]int, 256)
	for i := range idx {
		idx[i] = i
	}
	topo := simnet.PaperCluster(workers)
	return &engine.Config{
		Spec:    nn.SimResNet18,
		Part:    data.Uniform(train, workers, 1),
		Eval:    train.Slice(idx),
		Test:    test,
		Net:     simnet.NewHeterogeneousPeriod(topo, seed, 1e6, 8),
		LR:      0.1,
		Batch:   16,
		Epochs:  epochs,
		Seed:    5,
		Overlap: true,
	}
}

func TestNetMaxTrains(t *testing.T) {
	r := Run(hetConfig(4, 6, 3), Options{Ts: 2})
	if r.Epochs != 6 {
		t.Fatalf("epochs = %d", r.Epochs)
	}
	if r.FinalLoss >= r.Curve[0].Value {
		t.Fatalf("loss did not decrease: %v -> %v", r.Curve[0].Value, r.FinalLoss)
	}
	if r.FinalAccuracy < 0.85 {
		t.Fatalf("accuracy = %v", r.FinalAccuracy)
	}
}

func TestNetMaxDeterministic(t *testing.T) {
	a := Run(hetConfig(4, 3, 3), Options{Ts: 2})
	b := Run(hetConfig(4, 3, 3), Options{Ts: 2})
	if a.TotalTime != b.TotalTime || a.FinalLoss != b.FinalLoss {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a.TotalTime, a.FinalLoss, b.TotalTime, b.FinalLoss)
	}
}

func TestNetMaxRegeneratesPolicies(t *testing.T) {
	b := newBehavior(hetConfig(4, 1, 3), Options{Ts: 2})
	cfg := hetConfig(4, 8, 3)
	engine.RunAsync(cfg, b, "NetMax")
	if b.mon.Regenerations < 2 {
		t.Fatalf("monitor regenerated only %d times over a multi-period run", b.mon.Regenerations)
	}
}

func TestNetMaxFasterThanADPSGDHeterogeneous(t *testing.T) {
	// The headline claim (Fig. 8): on a heterogeneous network NetMax's
	// total training time beats AD-PSGD's for the same epoch count.
	nm := Run(hetConfig(8, 12, 11), Options{Ts: 2})
	ad := baselines.RunADPSGD(hetConfig(8, 12, 11))
	if nm.TotalTime >= ad.TotalTime {
		t.Fatalf("NetMax %vs not faster than AD-PSGD %vs", nm.TotalTime, ad.TotalTime)
	}
}

func TestNetMaxCommCostBelowADPSGD(t *testing.T) {
	// Fig. 5: NetMax's per-epoch communication cost is below AD-PSGD's.
	nm := Run(hetConfig(8, 12, 13), Options{Ts: 2})
	ad := baselines.RunADPSGD(hetConfig(8, 12, 13))
	if nm.CommCostPerEpoch(8) >= ad.CommCostPerEpoch(8) {
		t.Fatalf("NetMax comm %v >= AD-PSGD %v", nm.CommCostPerEpoch(8), ad.CommCostPerEpoch(8))
	}
	// Computation cost should be essentially identical (same model).
	if math.Abs(nm.CompCostPerEpoch(8)-ad.CompCostPerEpoch(8)) > 0.3*ad.CompCostPerEpoch(8) {
		t.Fatalf("comp costs diverge: %v vs %v", nm.CompCostPerEpoch(8), ad.CompCostPerEpoch(8))
	}
}

func TestNetMaxHomogeneousMatchesADPSGD(t *testing.T) {
	// Fig. 9: on a homogeneous network NetMax behaves like AD-PSGD (its
	// policy approaches uniform), so epoch times should be close.
	mk := func() *engine.Config {
		cfg := hetConfig(8, 8, 1)
		cfg.Net = simnet.NewHomogeneous(simnet.SingleMachine(8))
		return cfg
	}
	nm := Run(mk(), Options{Ts: 2})
	ad := baselines.RunADPSGD(mk())
	ratio := nm.TotalTime / ad.TotalTime
	if ratio > 1.5 || ratio < 0.5 {
		t.Fatalf("homogeneous NetMax/AD-PSGD time ratio = %v, want ~1", ratio)
	}
}

func TestUniformPolicyOptionDisablesAdaptation(t *testing.T) {
	adaptive := Run(hetConfig(8, 10, 17), Options{Ts: 2})
	uniform := Run(hetConfig(8, 10, 17), Options{Ts: 2, UniformPolicy: true})
	// Fig. 7: adaptive probabilities are the main source of gain.
	if adaptive.TotalTime >= uniform.TotalTime {
		t.Fatalf("adaptive (%v) not faster than uniform (%v)", adaptive.TotalTime, uniform.TotalTime)
	}
}

func TestADPSGDMonitorBetweenADPSGDAndNetMax(t *testing.T) {
	// Fig. 15: AD-PSGD+Monitor is faster than plain AD-PSGD in time.
	ext := RunADPSGDMonitor(hetConfig(8, 10, 19), Options{Ts: 2})
	ad := baselines.RunADPSGD(hetConfig(8, 10, 19))
	if ext.TotalTime >= ad.TotalTime {
		t.Fatalf("AD-PSGD+Monitor (%v) not faster than AD-PSGD (%v)", ext.TotalTime, ad.TotalTime)
	}
	if ext.Algo != "AD-PSGD+Monitor" {
		t.Fatalf("algo label = %q", ext.Algo)
	}
}

func TestBlendCoefScalesInverselyWithProbability(t *testing.T) {
	cfg := hetConfig(4, 1, 3)
	b := newBehavior(cfg, Options{})
	b.p = [][]float64{
		{0, 0.8, 0.1, 0.1},
		{0.8, 0, 0.1, 0.1},
		{0.1, 0.1, 0, 0.8},
		{0.1, 0.1, 0.8, 0},
	}
	cHigh := b.BlendCoef(0, 1) // frequently selected neighbor
	cLow := b.BlendCoef(0, 2)  // rarely selected neighbor
	if cLow <= cHigh {
		t.Fatalf("low-probability neighbor should get larger weight: %v vs %v", cLow, cHigh)
	}
	// Exact ratio: c ∝ 1/p, so cLow/cHigh = 8 (unless clamped at 1).
	if cLow < 1 && math.Abs(cLow/cHigh-8) > 1e-9 {
		t.Fatalf("blend ratio = %v, want 8", cLow/cHigh)
	}
}

func TestBlendCoefClamped(t *testing.T) {
	cfg := hetConfig(4, 1, 3)
	b := newBehavior(cfg, Options{})
	b.rho = 1e6 // absurd rho must not produce a divergent blend
	if c := b.BlendCoef(0, 1); c > 1 {
		t.Fatalf("blend coefficient %v > 1", c)
	}
}

func TestSelectPeerRespectsPolicySupport(t *testing.T) {
	cfg := hetConfig(4, 1, 3)
	b := newBehavior(cfg, Options{})
	b.p = [][]float64{
		{0, 1, 0, 0},
		{1, 0, 0, 0},
		{0, 0, 0, 1},
		{0, 0, 1, 0},
	}
	ws := cfg.Workers()
	for k := 0; k < 100; k++ {
		if j := b.SelectPeer(0, 0, ws[0].Rng); j != 1 {
			t.Fatalf("selected %d with deterministic policy", j)
		}
	}
}

func TestFixedBlendOption(t *testing.T) {
	cfg := hetConfig(4, 1, 3)
	b := newBehavior(cfg, Options{FixedBlend: true})
	if c := b.BlendCoef(0, 1); c != 0.5 {
		t.Fatalf("fixed blend = %v, want 0.5", c)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	o.defaults()
	if o.Ts != 120 || o.Beta != 0.5 || o.PolicyRounds != 10 || o.Epsilon != 1e-2 {
		t.Fatalf("defaults = %+v", o)
	}
}

func TestEMAUpdateRule(t *testing.T) {
	cfg := hetConfig(4, 1, 3)
	b := newBehavior(cfg, Options{Beta: 0.5})
	b.OnIterationEnd(0, 1, 2.0, 0)
	if b.ema[0][1] != 2.0 {
		t.Fatalf("first observation should seed EMA, got %v", b.ema[0][1])
	}
	b.OnIterationEnd(0, 1, 4.0, 1)
	if math.Abs(b.ema[0][1]-3.0) > 1e-12 {
		t.Fatalf("EMA = %v, want 0.5*2 + 0.5*4 = 3", b.ema[0][1])
	}
	b.OnIterationEnd(2, 2, 9.0, 2)
	if b.ema[2][2] != 0 {
		t.Fatal("self iteration should not touch EMA")
	}
}

// TestNetMaxSurvivesCrashRejoin runs NetMax end to end through a crash +
// rejoin with monitor liveness tracking enabled: the run must finish every
// epoch, keep the loss decreasing in trend, and leave no peer masked.
func TestNetMaxSurvivesCrashRejoin(t *testing.T) {
	clean := Run(hetConfig(4, 4, 3), Options{Ts: 2})
	cfg := hetConfig(4, 4, 3)
	cfg.Failures = simnet.NewFailureSchedule().
		Crash(1, clean.TotalTime*0.25, clean.TotalTime*0.55)
	r := Run(cfg, Options{Ts: 2, StalePeriods: 2})
	if r.Epochs != 4 {
		t.Fatalf("churn run completed %d epochs, want 4", r.Epochs)
	}
	n := len(r.Curve)
	if !(r.Curve[n-1].Value < r.Curve[0].Value) {
		t.Fatalf("loss trend not decreasing through churn: %v -> %v",
			r.Curve[0].Value, r.Curve[n-1].Value)
	}
	if math.IsNaN(r.FinalLoss) || math.IsInf(r.FinalLoss, 0) {
		t.Fatalf("final loss not finite: %v", r.FinalLoss)
	}
}

// TestNetMaxFailureFreeScheduleIdentical pins the bitwise gate one level
// up: a NetMax run with an inert schedule attached matches the bare run.
func TestNetMaxFailureFreeScheduleIdentical(t *testing.T) {
	a := Run(hetConfig(4, 2, 3), Options{Ts: 2})
	cfg := hetConfig(4, 2, 3)
	cfg.Failures = simnet.NewFailureSchedule() // empty
	b := Run(cfg, Options{Ts: 2})
	if a.TotalTime != b.TotalTime || a.FinalLoss != b.FinalLoss || a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("inert schedule changed the trajectory: %v/%v vs %v/%v",
			a.TotalTime, a.FinalLoss, b.TotalTime, b.FinalLoss)
	}
}

// TestNetMaxReadmitsEvictedWorker is the regression test for the exile
// loop: a worker down long enough to be evicted used to adopt the policy
// row pinned to self, never pull, never report, and never be re-admitted —
// while the coverage gate froze policy regeneration for the whole cluster.
// After the rejoin, the worker must end the run live and receiving pulls.
func TestNetMaxReadmitsEvictedWorker(t *testing.T) {
	clean := Run(hetConfig(4, 2, 3), Options{Ts: 2})
	cfg := hetConfig(4, 8, 3)
	// Down for many staleness windows (Ts=2, k=1): guaranteed eviction.
	crashAt := clean.TotalTime * 0.5
	rejoinAt := crashAt + 10*2
	cfg.Failures = simnet.NewFailureSchedule().Crash(1, crashAt, rejoinAt)
	b := newBehavior(cfg, Options{Ts: 2, StalePeriods: 1})
	r := engine.RunAsync(cfg, b, "NetMax")
	if r.Epochs != 8 {
		t.Fatalf("run completed %d epochs, want 8", r.Epochs)
	}
	alive := b.mon.LiveWorkers(r.TotalTime)
	if b.mon.Evictions == 0 {
		t.Fatal("worker was never evicted; the scenario did not exercise re-admission")
	}
	if !alive[1] {
		t.Fatal("rejoined worker still considered dead at run end (exile loop)")
	}
	if policy.SelfOnly(b.p[1], 1) {
		t.Fatalf("final policy still pins the rejoined worker to self: %v", b.p[1])
	}
}
