// Package core implements NetMax, the paper's primary contribution: the
// consensus SGD algorithm (Algorithm 2) driven by the adaptive communication
// policy of the Network Monitor (Algorithms 1 and 3).
//
// Each worker trains a model replica on its shard. Per iteration it
//  1. selects one neighbor m with probability p[i][m] (fast links likely),
//  2. requests x_m and, overlapped with the transfer, performs the local
//     gradient step x_i ← x_i − α∇f(x_i),
//  3. on receipt applies the consensus step
//     x_i ← x_i − αρ (d_im+d_mi)/(2 p_im) (x_i − x_m),
//     so that rarely-pulled neighbors get proportionally larger weight,
//  4. folds the measured iteration time into its EMA time vector, which the
//     Network Monitor collects every Ts seconds to regenerate (P, ρ).
package core

import (
	"math/rand"
	"sync/atomic"

	"netmax/internal/engine"
	"netmax/internal/monitor"
	"netmax/internal/policy"
)

// Options tunes NetMax beyond the engine Config.
type Options struct {
	// Ts is the Network Monitor schedule period in virtual seconds
	// (paper: 120s).
	Ts float64
	// Beta is the EMA smoothing factor β of Algorithm 2 (paper suggests
	// adapting it to network dynamics; default 0.5).
	Beta float64
	// PolicyRounds sets Algorithm 3's K and R grids (default 10).
	PolicyRounds int
	// Epsilon is the Eq. 9 convergence target (default 1e-2).
	Epsilon float64
	// UniformPolicy disables the adaptive policy (the "uniform" arm of the
	// Fig. 7 ablation): the monitor still runs but its output is ignored.
	UniformPolicy bool
	// FixedBlend, when true, replaces the 1/p_im-scaled consensus weight
	// with plain averaging (coefficient 1/2). Combined with an active
	// monitor this is exactly the AD-PSGD+Monitor extension of
	// Section III-D / Fig. 15.
	FixedBlend bool
	// Parallelism, when non-zero, overrides the engine config's host
	// parallelism for this run (0 = leave the config's setting, which
	// itself defaults to NumCPU; 1 = serial). Results are bitwise
	// identical at any setting — see engine.Config.Parallelism.
	Parallelism int
	// StalePeriods enables the Network Monitor's liveness tracking: a
	// worker silent for this many monitor periods is evicted and policies
	// regenerate over the live subgraph (see monitor.Config.StalePeriods).
	// Zero disables eviction — the right setting for failure-free runs,
	// where it keeps trajectories bitwise identical to historical ones.
	StalePeriods int
}

func (o *Options) defaults() {
	if o.Ts <= 0 {
		o.Ts = 120
	}
	if o.Beta <= 0 || o.Beta >= 1 {
		o.Beta = 0.5
	}
	if o.PolicyRounds <= 0 {
		o.PolicyRounds = 10
	}
	if o.Epsilon <= 0 {
		o.Epsilon = 1e-2
	}
}

// behavior implements engine.AsyncBehavior for NetMax.
type behavior struct {
	opts  Options
	adj   [][]bool
	alpha float64
	mon   *monitor.Monitor

	p       [][]float64 // current policy matrix
	uniform [][]float64 // fallback rows for re-admitted workers
	rho     float64
	ema     [][]float64 // worker-side EMA time vectors T_i

	// mask marks peers known dead through membership events; masked peers
	// are skipped in selection (their row mass renormalized away) until
	// the monitor regenerates a policy over the live subgraph or the peer
	// rejoins. Nil until the first membership event, which keeps the
	// failure-free sampling path bitwise identical to the historical one.
	mask []bool
}

func newBehavior(cfg *engine.Config, opts Options) *behavior {
	opts.defaults()
	adj := cfg.Net.Topo.Adj
	m := len(adj)
	b := &behavior{
		opts:    opts,
		adj:     adj,
		alpha:   cfg.LR,
		p:       policy.Uniform(adj),
		uniform: policy.Uniform(adj),
		ema:     make([][]float64, m),
	}
	for i := range b.ema {
		b.ema[i] = make([]float64, m)
	}
	// Initial ρ: quarter of the feasibility cap 1/(2α·deg_max), giving an
	// initial uniform blend coefficient αρ·deg = 1/8.
	maxDeg := 0
	for i := range adj {
		deg := 0
		for j, ok := range adj[i] {
			if ok && j != i {
				deg++
			}
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	if maxDeg == 0 {
		maxDeg = 1
	}
	b.rho = 1 / (8 * cfg.LR * float64(maxDeg))
	b.mon = monitor.New(monitor.Config{
		Adj:            adj,
		Alpha:          cfg.LR,
		Period:         opts.Ts,
		OuterRounds:    opts.PolicyRounds,
		InnerRounds:    opts.PolicyRounds,
		Epsilon:        opts.Epsilon,
		AveragingBlend: opts.FixedBlend,
		StalePeriods:   opts.StalePeriods,
	})
	return b
}

// SelectPeer samples neighbor m with probability p[i][m] (Algorithm 2
// line 9); p[i][i] mass means "no pull this iteration". Peers masked by
// membership events are skipped until the monitor regenerates the policy.
//
// If worker i's own row carries no peer mass — the row GenerateLive pins
// onto workers presumed dead — the worker is by construction alive (the
// engine only runs live workers' events), so the row is repaired to the
// uniform one in place: staying silent would mean never reporting and
// never being re-admitted. Repairing b.p (rather than substituting only
// here) matters because BlendCoef reads the same row — a fallback that
// sampled from uniform but left p_ij = 0 would pull models and blend them
// with coefficient zero, paying bandwidth for nothing. Failure-free
// policies always carry peer mass (the Eq. 11 floors), so this path
// cannot fire without churn.
func (b *behavior) SelectPeer(i int, now float64, rng *rand.Rand) int {
	if policy.SelfOnly(b.p[i], i) {
		b.p[i] = b.uniform[i]
	}
	return policy.SampleMasked(b.p[i], i, b.mask, rng)
}

// OnMembership masks crashed peers out of selection immediately and feeds
// the membership to the monitor, which forces a policy regeneration over
// the live subgraph at the next Tick (the row LPs re-solve on every
// membership change).
func (b *behavior) OnMembership(alive []bool, now float64) {
	if b.mask == nil {
		b.mask = make([]bool, len(alive))
	}
	for i, a := range alive {
		b.mask[i] = !a
	}
	b.mon.SetLiveness(alive, now)
}

// BlendCoef implements Algorithm 2 lines 13-14: the pulled model enters with
// coefficient αρ(d_im+d_mi)/(2 p_im), clamped to (0, 1] for safety when the
// live EMA and the policy briefly disagree.
func (b *behavior) BlendCoef(i, j int) float64 {
	if b.opts.FixedBlend {
		return 0.5
	}
	d := 0.0
	if b.adj[i][j] {
		d++
	}
	if b.adj[j][i] {
		d++
	}
	pij := b.p[i][j]
	if pij <= 0 {
		return 0
	}
	c := b.alpha * b.rho * d / (2 * pij)
	if c > 1 {
		c = 1
	}
	return c
}

// OnIterationEnd folds the measured iteration time into the worker's EMA
// time vector (Algorithm 2 UPDATETIMEVECTOR) and reports it to the monitor.
func (b *behavior) OnIterationEnd(i, j int, iterSecs, now float64) {
	if i == j {
		return
	}
	if b.ema[i][j] == 0 {
		b.ema[i][j] = iterSecs
	} else {
		b.ema[i][j] = b.opts.Beta*b.ema[i][j] + (1-b.opts.Beta)*iterSecs
	}
	b.mon.ObserveAt(i, j, b.ema[i][j], now)
}

// Symmetric reports whether the blend applies to both endpoints: NetMax's
// Algorithm 2 is a one-sided pull, but the AD-PSGD+Monitor extension keeps
// AD-PSGD's two-sided atomic averaging.
func (b *behavior) Symmetric() bool { return b.opts.FixedBlend }

// Tick runs the Network Monitor's periodic policy regeneration.
func (b *behavior) Tick(now float64) {
	pol, ok := b.mon.MaybeRegenerate(now)
	if !ok || b.opts.UniformPolicy {
		return
	}
	b.p = pol.P
	b.rho = pol.Rho
}

// withParallelism applies an Options-level parallelism override on a copy,
// leaving the caller's config untouched for subsequent runs.
func withParallelism(cfg *engine.Config, opts Options) *engine.Config {
	if opts.Parallelism == 0 || opts.Parallelism == cfg.Parallelism {
		return cfg
	}
	c := *cfg
	c.Parallelism = opts.Parallelism
	return &c
}

// Run trains with NetMax under cfg and returns the aggregated result.
func Run(cfg *engine.Config, opts Options) *engine.Result {
	cfg = withParallelism(cfg, opts)
	b := newBehavior(cfg, opts)
	r := engine.RunAsync(cfg, b, "NetMax")
	debugRegens.Store(int64(b.mon.Regenerations))
	return r
}

// RunADPSGDMonitor trains with the Section III-D extension: adaptive policy
// from the Network Monitor, but AD-PSGD's fixed averaging weight.
func RunADPSGDMonitor(cfg *engine.Config, opts Options) *engine.Result {
	opts.FixedBlend = true
	cfg = withParallelism(cfg, opts)
	return engine.RunAsync(cfg, newBehavior(cfg, opts), "AD-PSGD+Monitor")
}

// Monitor exposes the behavior's monitor for observability in tests.
func (b *behavior) Monitor() *monitor.Monitor { return b.mon }

// debugRegens records the regeneration count of the most recent Run for
// diagnostics; atomic because the experiment driver runs algorithms
// concurrently. Not for production use.
var debugRegens atomic.Int64

// DebugRegens returns the Network Monitor regeneration count of the most
// recently finished Run.
func DebugRegens() int { return int(debugRegens.Load()) }
