package baselines

import (
	"math/rand"
	"sort"

	"netmax/internal/engine"
)

// PragueGroupSize is the partial-allreduce group size. Prague [14] draws
// random groups each "iteration"; four is representative of its evaluation.
const PragueGroupSize = 4

// RunPrague trains with Prague-style partial allreduce [14]: the earliest
// free workers form a group, locally step, then average their models with an
// intra-group ring allreduce. Groups proceed independently (tolerating
// stragglers), but concurrent groups share the inter-machine fabric, so each
// machine-spanning group's transfer is stretched by the number of
// simultaneously active machine-spanning groups — the congestion the paper
// blames for Prague's high communication cost (Section V-B).
func RunPrague(cfg *engine.Config) *engine.Result {
	ws := cfg.Workers()
	tr := engine.NewTracker(cfg, ws, "Prague")
	m := len(ws)
	g := PragueGroupSize
	if g > m {
		g = m
	}
	bytes := cfg.Spec.ModelBytes()
	vlen := ws[0].Model.VectorLen()
	mean := make([]float64, vlen)
	tmp := make([]float64, vlen)
	rng := rand.New(rand.NewSource(cfg.Seed + 777))

	freeAt := make([]float64, m)
	// Active machine-spanning group intervals for the contention model.
	type interval struct{ start, end float64 }
	var active []interval

	spansMachines := func(members []int) bool {
		mac := cfg.Net.Topo.Machine
		for _, w := range members[1:] {
			if mac[w] != mac[members[0]] {
				return true
			}
		}
		return false
	}

	for !tr.Done() {
		// Pick the g earliest-free workers; random tie-break keeps grouping
		// random when many are free (Prague's randomized grouping).
		order := make([]int, m)
		for i := range order {
			order[i] = i
		}
		rng.Shuffle(m, func(a, b int) { order[a], order[b] = order[b], order[a] })
		sort.SliceStable(order, func(a, b int) bool { return freeAt[order[a]] < freeAt[order[b]] })
		members := order[:g]
		start := 0.0
		for _, w := range members {
			if freeAt[w] > start {
				start = freeAt[w]
			}
		}

		// Local gradient steps: group members are distinct workers, so their
		// steps (gradient + own optimizer) are independent and run
		// concurrently; the model averaging below stays in member order.
		samples := make([]int, g)
		engine.Concurrently(g, cfg.EffectiveParallelism(), func(k int) {
			_, samples[k] = ws[members[k]].GradStep()
		})
		// Partial allreduce: group model average.
		for i := range mean {
			mean[i] = 0
		}
		for _, w := range members {
			ws[w].Model.CopyVector(tmp)
			for i := range mean {
				mean[i] += tmp[i]
			}
		}
		for i := range mean {
			mean[i] /= float64(g)
		}
		for _, w := range members {
			ws[w].Model.SetVector(mean)
		}

		// Timing: intra-group ring, slowest group link, stretched by the
		// number of concurrently active machine-spanning groups.
		minRate := cfg.Net.Rate(members[0], members[1], start)
		for a := 0; a < g; a++ {
			b := (a + 1) % g
			if r := cfg.Net.Rate(members[a], members[b], start); r < minRate {
				minRate = r
			}
		}
		chunk := float64(bytes) / float64(g)
		comm := 2 * float64(g-1) * chunk / minRate
		groupComp := 0.0
		for _, w := range members {
			if c := cfg.ComputeSecs(w); c > groupComp {
				groupComp = c
			}
		}
		if spansMachines(members) {
			contention := 1
			keep := active[:0]
			for _, iv := range active {
				if iv.end > start {
					keep = append(keep, iv)
					contention++
				}
			}
			active = keep
			comm *= float64(contention)
			active = append(active, interval{start: start, end: start + groupComp + comm})
		}
		tr.AddBytes(2 * int64(g-1) * int64(chunk))
		end := start + groupComp + comm
		for k, w := range members {
			freeAt[w] = end
			tr.OnIteration(end, samples[k], groupComp, comm)
			if tr.Done() {
				break
			}
		}
	}
	return tr.Finish()
}
