package baselines

import (
	"netmax/internal/engine"
	"netmax/internal/policy"
)

// DefaultHopStaleness is the default iteration-gap bound for RunHop.
const DefaultHopStaleness = 4

// RunHop trains with Hop-style bounded staleness [25]: workers run the
// asynchronous uniform gossip loop, but no worker may advance more than
// `staleness` iterations ahead of the slowest worker. The bound guarantees
// convergence under heterogeneity, yet — as the paper's related work notes —
// "when network links experience a continuous slowdown, the whole system
// would be dragged down by these low-speed links": a worker stuck behind a
// slow link eventually stalls everyone through the staleness gate.
func RunHop(cfg *engine.Config, staleness int) *engine.Result {
	if staleness <= 0 {
		staleness = DefaultHopStaleness
	}
	ws := cfg.Workers()
	tr := engine.NewTracker(cfg, ws, "Hop")
	m := len(ws)
	bytes := cfg.Spec.ModelBytes()
	p := policy.Uniform(cfg.Net.Topo.Adj)

	iters := make([]int, m) // completed iterations per worker
	busyUntil := make([]float64, m)
	type pending struct {
		samples    int
		comp, comm float64
	}
	pend := make([]pending, m)
	snapshot := make([]float64, ws[0].Model.VectorLen())
	own := make([]float64, ws[0].Model.VectorLen())

	var q engine.Queue
	for i := range ws {
		q.Push(0, i)
	}
	minIters := func() int {
		lo := iters[0]
		for _, v := range iters[1:] {
			if v < lo {
				lo = v
			}
		}
		return lo
	}
	for !tr.Done() && q.Len() > 0 {
		now, i := q.Pop()
		if pd := pend[i]; pd.samples > 0 {
			iters[i]++
			tr.OnIteration(now, pd.samples, pd.comp, pd.comm)
			pend[i] = pending{}
			if tr.Done() {
				break
			}
		}
		// Staleness gate: a worker too far ahead waits for the slowest.
		// Re-queue it just after the next other-worker completion.
		if iters[i] >= minIters()+staleness {
			next := now
			for j, b := range busyUntil {
				if j != i && b > now && (next == now || b < next) {
					next = b
				}
			}
			if next == now {
				next = now + 1e-6 // everyone idle: break ties and retry
			}
			q.Push(next, i)
			continue
		}
		w := ws[i]
		j := policy.Sample(p[i], i, w.Rng)
		_, samples := w.GradStep()
		if j != i {
			// AD-PSGD-style symmetric atomic averaging.
			ws[j].Model.CopyVector(snapshot)
			w.Model.CopyVector(own)
			w.Model.BlendVector(0.5, snapshot)
			ws[j].Model.BlendVector(0.5, own)
			tr.AddBytes(bytes)
		}
		iterSecs := cfg.Net.IterationTime(i, j, bytes, cfg.ComputeSecs(i), now, cfg.Overlap)
		comp := cfg.ComputeSecs(i)
		comm := iterSecs - comp
		if comm < 0 {
			comm = 0
		}
		pend[i] = pending{samples: samples, comp: comp, comm: comm}
		busyUntil[i] = now + iterSecs
		q.Push(now+iterSecs, i)
	}
	return tr.Finish()
}
