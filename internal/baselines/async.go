// Package baselines implements the decentralized and centralized training
// approaches NetMax is compared against in the paper's evaluation:
// AD-PSGD [11], GoSGD-style gossip [12], SAPS-PSGD [15], Allreduce-SGD [8],
// Prague [14], and synchronous/asynchronous parameter servers [6, 7].
// All run on the same discrete-event engine and simnet timing model as
// NetMax, so every comparison isolates the algorithmic difference.
package baselines

import (
	"math/rand"
	"sort"

	"netmax/internal/engine"
	"netmax/internal/policy"
)

// uniformAsync is the AD-PSGD / GoSGD behavior: uniform neighbor selection
// over a (possibly sparsified) adjacency, fixed averaging weight 1/2, no
// periodic control. Membership events renormalize the selection over the
// live peers — process-level crash detection is fast even for a policy-less
// algorithm — but the selection never *adapts*: hung peers and slow links
// keep their uniform share, which is exactly the weakness the churn
// scenarios demonstrate.
type uniformAsync struct {
	adj [][]bool
	p   [][]float64
}

func newUniformAsync(adj [][]bool) *uniformAsync {
	return &uniformAsync{adj: adj, p: policy.Uniform(adj)}
}

func (u *uniformAsync) SelectPeer(i int, now float64, rng *rand.Rand) int {
	return policy.Sample(u.p[i], i, rng)
}

func (u *uniformAsync) BlendCoef(i, j int) float64              { return 0.5 }
func (u *uniformAsync) OnIterationEnd(i, j int, s, now float64) {}
func (u *uniformAsync) Tick(now float64)                        {}

// OnMembership rebuilds the uniform selection over the live subgraph so
// crashed peers stop being selected and rejoining ones are re-admitted.
func (u *uniformAsync) OnMembership(alive []bool, now float64) {
	u.p = policy.Uniform(liveAdj(u.adj, alive))
}

// liveAdj restricts an adjacency to the live workers.
func liveAdj(adj [][]bool, alive []bool) [][]bool {
	m := len(adj)
	out := make([][]bool, m)
	for i := range out {
		out[i] = make([]bool, m)
		for j := range out[i] {
			out[i][j] = adj[i][j] && alive[i] && alive[j]
		}
	}
	return out
}

// Symmetric marks the averaging as two-sided: AD-PSGD's atomic averaging
// sets both endpoints to the midpoint [11].
func (u *uniformAsync) Symmetric() bool { return true }

// RunADPSGD trains with asynchronous decentralized parallel SGD [11]: each
// worker repeatedly averages its model with one uniformly random neighbor.
func RunADPSGD(cfg *engine.Config) *engine.Result {
	return engine.RunAsync(cfg, newUniformAsync(cfg.Net.Topo.Adj), "AD-PSGD")
}

// RunGossip trains with GoSGD-style gossip [12]; operationally it is the
// uniform pull-average loop, identical to AD-PSGD in this timing model.
func RunGossip(cfg *engine.Config) *engine.Result {
	return engine.RunAsync(cfg, newUniformAsync(cfg.Net.Topo.Adj), "Gossip")
}

// SAPSSubgraph builds SAPS-PSGD's static communication subgraph [15]: the
// links that are fastest *at time zero*. Edges are added in descending
// initial-rate order until the subgraph is connected and every node has
// degree >= 2 (or its full degree, if smaller). Because the subgraph is
// frozen, a link that later becomes slow keeps being used — the weakness
// the paper's Fig. 2 discussion calls out.
func SAPSSubgraph(cfg *engine.Config) [][]bool {
	topo := cfg.Net.Topo
	m := topo.M
	type edge struct {
		i, j int
		rate float64
	}
	var edges []edge
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			if topo.Adj[i][j] {
				edges = append(edges, edge{i, j, cfg.Net.Rate(i, j, 0)})
			}
		}
	}
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].rate != edges[b].rate {
			return edges[a].rate > edges[b].rate
		}
		if edges[a].i != edges[b].i {
			return edges[a].i < edges[b].i
		}
		return edges[a].j < edges[b].j
	})
	sub := make([][]bool, m)
	for i := range sub {
		sub[i] = make([]bool, m)
	}
	deg := make([]int, m)
	parent := make([]int, m)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	components := m
	for _, e := range edges {
		needTree := find(e.i) != find(e.j)
		needDeg := deg[e.i] < 2 || deg[e.j] < 2
		if !needTree && !needDeg {
			continue
		}
		sub[e.i][e.j] = true
		sub[e.j][e.i] = true
		deg[e.i]++
		deg[e.j]++
		if needTree {
			parent[find(e.i)] = find(e.j)
			components--
		}
	}
	_ = components
	return sub
}

// SAPSSparsity is the fraction of the model SAPS-PSGD transfers per pull:
// the method's second ingredient (besides the static fast subgraph) is
// model sparsification [15].
const SAPSSparsity = 0.25

// sapsAsync is uniform gossip on the static subgraph with sparsified
// transfers: only SAPSSparsity of the model moves per pull, and the
// averaging weight is scaled down accordingly (in expectation over the
// transferred coordinates).
type sapsAsync struct {
	uniformAsync
}

func (s *sapsAsync) BlendCoef(i, j int) float64 { return 0.5 * SAPSSparsity }

func (s *sapsAsync) TransferBytes(full int64) int64 {
	return int64(float64(full) * SAPSSparsity)
}

// RunSAPS trains with SAPS-PSGD [15]: sparsified uniform gossip restricted
// to the static initially-fast subgraph.
func RunSAPS(cfg *engine.Config) *engine.Result {
	b := &sapsAsync{*newUniformAsync(SAPSSubgraph(cfg))}
	return engine.RunAsync(cfg, b, "SAPS-PSGD")
}
