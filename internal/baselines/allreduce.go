package baselines

import (
	"netmax/internal/engine"
)

// RunAllreduce trains with synchronous Allreduce-SGD [8]: every round all
// workers compute gradients on their local batch, the gradients are averaged
// with a ring allreduce, and everyone applies the same update. The round
// time is the parallel compute time plus the ring time; because the ring is
// a fixed cycle over all workers, a single slow link throttles every round —
// the synchronization weakness Section I attributes to sync D-PSGD.
func RunAllreduce(cfg *engine.Config) *engine.Result {
	ws := cfg.Workers()
	tr := engine.NewTracker(cfg, ws, "Allreduce-SGD")
	vlen := ws[0].Model.VectorLen()
	avg := make([]float64, vlen)
	tmp := make([]float64, vlen)
	par := cfg.EffectiveParallelism()
	samples := make([]int, len(ws))

	now := 0.0
	for !tr.Done() {
		// Gradients are computed concurrently (each worker touches only its
		// own replica) and reduced serially in worker order below, so the
		// floating-point sum is identical at any parallelism.
		engine.Concurrently(len(ws), par, func(k int) {
			_, samples[k] = ws[k].GradOnly()
		})
		totalSamples := 0
		for i := range avg {
			avg[i] = 0
		}
		for k, w := range ws {
			w.Model.GradVector(tmp)
			// Weight by batch size so segment workers contribute
			// proportionally (Section V-F).
			for i := range avg {
				avg[i] += tmp[i] * float64(samples[k])
			}
			totalSamples += samples[k]
		}
		for i := range avg {
			avg[i] /= float64(totalSamples)
		}
		for _, w := range ws {
			w.ApplyGrad(avg)
		}
		comm := RingAllreduceTime(cfg, now)
		tr.AddBytes(2 * int64(len(ws)-1) * cfg.Spec.ModelBytes())
		now += cfg.MaxComputeSecs() + comm
		for _, w := range ws {
			tr.OnIteration(now, w.Batch, cfg.MaxComputeSecs(), comm)
		}
	}
	return tr.Finish()
}

// RingAllreduceTime returns the duration of one ring allreduce of the model
// over workers 0..M-1 at virtual time now: 2(M-1) pipeline steps each moving
// bytes/M over the ring, bottlenecked by the slowest ring link.
func RingAllreduceTime(cfg *engine.Config, now float64) float64 {
	m := cfg.Net.Topo.M
	if m < 2 {
		return 0
	}
	bytes := cfg.Spec.ModelBytes()
	minRate := cfg.Net.Rate(0, 1%m, now)
	for i := 0; i < m; i++ {
		j := (i + 1) % m
		if r := cfg.Net.Rate(i, j, now); r < minRate {
			minRate = r
		}
	}
	chunk := float64(bytes) / float64(m)
	return 2 * float64(m-1) * chunk / minRate
}
