package baselines

import (
	"netmax/internal/engine"
)

// RunSyncDPSGD trains with synchronous decentralized parallel SGD in the
// style of D-PSGD/D² [9, 10]: every round each worker takes a local
// gradient step and then averages its model with all of its neighbors'
// models using uniform Metropolis weights. All workers advance in lockstep,
// so the round time is governed by the slowest worker-neighbor transfer —
// the synchronization cost Section I attributes to sync D-PSGD.
func RunSyncDPSGD(cfg *engine.Config) *engine.Result {
	ws := cfg.Workers()
	tr := engine.NewTracker(cfg, ws, "D-PSGD")
	m := len(ws)
	bytes := cfg.Spec.ModelBytes()
	vlen := ws[0].Model.VectorLen()
	adj := cfg.Net.Topo.Adj

	// Metropolis-Hastings mixing weights: symmetric, doubly stochastic for
	// any connected graph.
	deg := make([]int, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j && adj[i][j] {
				deg[i]++
			}
		}
	}
	weight := func(i, j int) float64 {
		if i == j || !adj[i][j] {
			return 0
		}
		d := deg[i]
		if deg[j] > d {
			d = deg[j]
		}
		return 1 / float64(d+1)
	}

	vecs := make([][]float64, m)
	next := make([][]float64, m)
	for i := range vecs {
		vecs[i] = make([]float64, vlen)
		next[i] = make([]float64, vlen)
	}

	par := cfg.EffectiveParallelism()
	now := 0.0
	for !tr.Done() {
		// Local gradient steps: conceptually parallel in the algorithm, and
		// actually concurrent on the host (each worker only touches its own
		// replica; the averaging below reads models serially afterwards).
		engine.Concurrently(len(ws), par, func(k int) {
			ws[k].GradStep()
		})
		for i, w := range ws {
			w.Model.CopyVector(vecs[i])
		}
		// Neighborhood averaging with Metropolis weights.
		for i := range next {
			self := 1.0
			for j := 0; j < m; j++ {
				self -= weight(i, j)
			}
			for k := range next[i] {
				next[i][k] = self * vecs[i][k]
			}
			for j := 0; j < m; j++ {
				if wij := weight(i, j); wij > 0 {
					for k := range next[i] {
						next[i][k] += wij * vecs[j][k]
					}
				}
			}
		}
		for i, w := range ws {
			w.Model.SetVector(next[i])
		}
		// Round time: compute plus the slowest neighbor transfer at the
		// current virtual time (all exchanges happen concurrently, barrier
		// at the end).
		comm := 0.0
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if i != j && adj[i][j] {
					if t := cfg.Net.TransferTime(i, j, bytes, now); t > comm {
						comm = t
					}
				}
			}
		}
		edges := int64(0)
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if i != j && adj[i][j] {
					edges++
				}
			}
		}
		tr.AddBytes(edges * bytes)
		now += cfg.MaxComputeSecs() + comm
		for _, w := range ws {
			tr.OnIteration(now, w.Batch, cfg.MaxComputeSecs(), comm)
		}
	}
	return tr.Finish()
}
