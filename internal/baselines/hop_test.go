package baselines

import (
	"testing"

	"netmax/internal/engine"
	"netmax/internal/simnet"
)

func TestHopTrains(t *testing.T) {
	r := RunHop(hetConfig(4, 6, 3), 4)
	checkTrains(t, r, "Hop", 6)
	if r.Algo != "Hop" {
		t.Fatalf("algo = %q", r.Algo)
	}
}

func TestHopDefaultStaleness(t *testing.T) {
	r := RunHop(hetConfig(4, 3, 3), 0)
	if r.Epochs != 3 {
		t.Fatalf("epochs = %d", r.Epochs)
	}
}

func TestHopDeterministic(t *testing.T) {
	a := RunHop(hetConfig(4, 3, 5), 4)
	b := RunHop(hetConfig(4, 3, 5), 4)
	if a.TotalTime != b.TotalTime || a.FinalLoss != b.FinalLoss {
		t.Fatal("non-deterministic")
	}
}

func TestHopBoundedStalenessEnforced(t *testing.T) {
	// With a straggler computing 10x slower, an unbounded async run lets
	// the fast workers race far ahead (they process most of the samples);
	// Hop's gate keeps per-worker progress balanced, which shows up as a
	// larger slowdown relative to the uniform-compute run.
	mk := func(scale []float64) *engine.Config {
		cfg := hetConfig(4, 4, 7)
		cfg.Net = simnet.NewHomogeneous(simnet.SingleMachine(4))
		cfg.ComputeScale = scale
		return cfg
	}
	straggler := []float64{1, 1, 10, 1}
	base := RunHop(mk(nil), 2)
	slow := RunHop(mk(straggler), 2)
	adBase := RunADPSGD(mk(nil))
	adSlow := RunADPSGD(mk(straggler))
	hopRatio := slow.TotalTime / base.TotalTime
	adRatio := adSlow.TotalTime / adBase.TotalTime
	if hopRatio <= adRatio {
		t.Fatalf("Hop's staleness bound should amplify the straggler penalty: hop %vx vs ad-psgd %vx", hopRatio, adRatio)
	}
}

func TestHopLooseBoundApproachesADPSGD(t *testing.T) {
	// With a very loose bound the gate rarely triggers: total time should
	// be close to plain AD-PSGD on the same workload.
	hop := RunHop(hetConfig(4, 4, 9), 1000)
	ad := RunADPSGD(hetConfig(4, 4, 9))
	ratio := hop.TotalTime / ad.TotalTime
	if ratio < 0.7 || ratio > 1.5 {
		t.Fatalf("loose-bound Hop time ratio vs AD-PSGD = %v, want ~1", ratio)
	}
}
