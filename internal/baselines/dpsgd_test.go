package baselines

import (
	"math"
	"testing"

	"netmax/internal/engine"
	"netmax/internal/simnet"
)

func TestSyncDPSGDTrains(t *testing.T) {
	r := RunSyncDPSGD(hetConfig(4, 6, 3))
	checkTrains(t, r, "D-PSGD", 6)
	if r.Algo != "D-PSGD" {
		t.Fatalf("algo = %q", r.Algo)
	}
}

func TestSyncDPSGDRing(t *testing.T) {
	cfg := hetConfig(6, 4, 3)
	topo := cfg.Net.Topo
	topo.Adj = simnet.Ring(6)
	r := RunSyncDPSGD(cfg)
	if r.FinalAccuracy < 0.8 {
		t.Fatalf("ring D-PSGD accuracy = %v", r.FinalAccuracy)
	}
}

func TestSyncDPSGDDeterministic(t *testing.T) {
	a := RunSyncDPSGD(hetConfig(4, 3, 5))
	b := RunSyncDPSGD(hetConfig(4, 3, 5))
	if a.TotalTime != b.TotalTime || a.FinalLoss != b.FinalLoss {
		t.Fatal("non-deterministic")
	}
}

func TestSyncDPSGDMetropolisConsensus(t *testing.T) {
	// Metropolis weights are doubly stochastic, so without gradients the
	// models would reach exact consensus; with training they stay close.
	// Verify through the engine invariant that the averaged model performs
	// as well as training demands and that per-round costs include the
	// barrier (comm equals the slowest neighbor link each round).
	cfg := hetConfig(4, 2, 7)
	r := RunSyncDPSGD(cfg)
	if r.CommSecs <= 0 {
		t.Fatal("no communication cost recorded")
	}
	perRound := r.CommSecs / float64(r.GlobalSteps)
	// The slowest link in a heterogeneous 4-node cluster transfers the
	// ResNet18 model in >= bytes/interRate seconds.
	minExpected := float64(cfg.Spec.ModelBytes()) / simnet.DefaultIntraRate
	if perRound < minExpected {
		t.Fatalf("per-round comm %v below the fastest possible transfer %v", perRound, minExpected)
	}
}

func TestSyncDPSGDSlowerThanADPSGDOnHeterogeneous(t *testing.T) {
	dp := RunSyncDPSGD(hetConfig(8, 6, 9))
	ad := RunADPSGD(hetConfig(8, 6, 9))
	if dp.TotalTime <= ad.TotalTime {
		t.Fatalf("sync D-PSGD (%v) should be slower than AD-PSGD (%v)", dp.TotalTime, ad.TotalTime)
	}
}

func TestStragglerHurtsSyncMoreThanAsync(t *testing.T) {
	mk := func(scale []float64) *engine.Config {
		cfg := hetConfig(4, 4, 11)
		cfg.Net = simnet.NewHomogeneous(simnet.SingleMachine(4))
		cfg.ComputeScale = scale
		return cfg
	}
	straggler := []float64{1, 1, 6, 1}
	syncBase := RunAllreduce(mk(nil))
	syncSlow := RunAllreduce(mk(straggler))
	asyncBase := RunADPSGD(mk(nil))
	asyncSlow := RunADPSGD(mk(straggler))
	syncRatio := syncSlow.TotalTime / syncBase.TotalTime
	asyncRatio := asyncSlow.TotalTime / asyncBase.TotalTime
	if syncRatio <= asyncRatio {
		t.Fatalf("sync straggler penalty %v should exceed async %v", syncRatio, asyncRatio)
	}
	if math.Abs(asyncRatio-1) > 1.0 {
		t.Fatalf("async penalty %v too large for one slow worker", asyncRatio)
	}
}
