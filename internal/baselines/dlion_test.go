package baselines

import (
	"testing"
)

func TestDLionTrains(t *testing.T) {
	r := RunDLion(hetConfig(4, 8, 3))
	checkTrains(t, r, "DLion", 8)
	if r.Algo != "DLion" {
		t.Fatalf("algo = %q", r.Algo)
	}
}

func TestDLionMovesFewerBytesThanADPSGD(t *testing.T) {
	dl := RunDLion(hetConfig(8, 6, 5))
	ad := RunADPSGD(hetConfig(8, 6, 5))
	if dl.BytesSent >= ad.BytesSent {
		t.Fatalf("DLion bytes %d should be below AD-PSGD %d (partial transfers)", dl.BytesSent, ad.BytesSent)
	}
}

func TestDLionConvergesSlowerPerEpochThanADPSGD(t *testing.T) {
	// The related-work critique: exchanging partial models slows consensus.
	dl := RunDLion(hetConfig(8, 10, 7))
	ad := RunADPSGD(hetConfig(8, 10, 7))
	if dl.FinalLoss < ad.FinalLoss*0.5 {
		t.Fatalf("DLion unexpectedly far ahead: %v vs %v", dl.FinalLoss, ad.FinalLoss)
	}
}

func TestSAPSMovesFewerBytesThanADPSGD(t *testing.T) {
	sp := RunSAPS(hetConfig(8, 6, 9))
	ad := RunADPSGD(hetConfig(8, 6, 9))
	if sp.BytesSent >= ad.BytesSent {
		t.Fatalf("SAPS bytes %d should be far below AD-PSGD %d (sparsified transfers)", sp.BytesSent, ad.BytesSent)
	}
}

func TestBytesSentAccounting(t *testing.T) {
	r := RunADPSGD(hetConfig(4, 2, 11))
	// Every non-self iteration moves one full model; bytes for in-flight
	// iterations at shutdown are counted too, so allow up to one extra
	// model per worker.
	want := int64(r.GlobalSteps+4) * hetConfig(4, 1, 1).Spec.ModelBytes()
	if r.BytesSent <= 0 || r.BytesSent > want {
		t.Fatalf("BytesSent = %d, want in (0, %d]", r.BytesSent, want)
	}
	ar := RunAllreduce(hetConfig(4, 2, 11))
	if ar.BytesSent <= 0 {
		t.Fatal("allreduce bytes not recorded")
	}
}
