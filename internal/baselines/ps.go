package baselines

import (
	"netmax/internal/engine"
	"netmax/internal/nn"
)

// RunPSSync trains with a synchronous parameter server [6, 7]: per round,
// every worker pushes its gradient to the PS (co-located with worker 0's
// machine) and pulls the updated model back before anyone proceeds. All
// transfers of a round share the PS's network interface, so the round's
// communication time scales with the number of workers behind each link
// class — the central-bottleneck weakness of C-PSGD (Section I).
func RunPSSync(cfg *engine.Config) *engine.Result {
	ws := cfg.Workers()
	tr := engine.NewTracker(cfg, ws, "PS-syn")
	bytes := cfg.Spec.ModelBytes()
	vlen := ws[0].Model.VectorLen()
	avg := make([]float64, vlen)
	tmp := make([]float64, vlen)

	// Link-class sharer counts: workers on the PS machine share the intra
	// fabric; remote workers share the PS NIC.
	psMachine := cfg.Net.Topo.Machine[0]
	intra, inter := 0, 0
	for _, mac := range cfg.Net.Topo.Machine {
		if mac == psMachine {
			intra++
		} else {
			inter++
		}
	}

	par := cfg.EffectiveParallelism()
	samples := make([]int, len(ws))
	now := 0.0
	for !tr.Done() {
		// Concurrent gradient computation, serial in-order reduction: see
		// RunAllreduce for the determinism argument.
		engine.Concurrently(len(ws), par, func(k int) {
			_, samples[k] = ws[k].GradOnly()
		})
		totalSamples := 0
		for i := range avg {
			avg[i] = 0
		}
		for k, w := range ws {
			w.Model.GradVector(tmp)
			for i := range avg {
				avg[i] += tmp[i] * float64(samples[k])
			}
			totalSamples += samples[k]
		}
		for i := range avg {
			avg[i] /= float64(totalSamples)
		}
		for _, w := range ws {
			w.ApplyGrad(avg)
		}
		comm := 0.0
		for i := range ws {
			sharers := inter
			if cfg.Net.Topo.Machine[i] == psMachine {
				sharers = intra
			}
			// Push gradient + pull model: 2x the model size.
			if t := cfg.Net.PSTransferTime(i, 2*bytes, sharers); t > comm {
				comm = t
			}
		}
		tr.AddBytes(2 * int64(len(ws)) * bytes)
		now += cfg.MaxComputeSecs() + comm
		for _, w := range ws {
			tr.OnIteration(now, w.Batch, cfg.MaxComputeSecs(), comm)
		}
	}
	return tr.Finish()
}

// RunPSAsync trains with an asynchronous parameter server: each worker
// independently pushes its gradient and pulls the fresh global model, with
// no barrier. Workers near the PS iterate much faster, so the global model
// over-represents their data — the convergence weakness Fig. 14(a) shows
// under non-uniform partitioning.
func RunPSAsync(cfg *engine.Config) *engine.Result {
	ws := cfg.Workers()
	tr := engine.NewTracker(cfg, ws, "PS-asyn")
	bytes := cfg.Spec.ModelBytes()

	// The PS holds the global model and the (single, shared) optimizer
	// state, as in Project Adam-style servers.
	dim := cfg.Part.Shards[0].Dim()
	classes := cfg.Part.Shards[0].Classes
	ps := cfg.Spec.Build(cfg.Seed, dim, classes)
	// Server-side momentum would compound the (similar) gradients of all M
	// workers into an effectively M/(1-momentum) times larger step and
	// diverge; async parameter servers therefore apply updates with plain
	// SGD. This also yields the paper's Fig. 14(a) shape: PS-asyn converges,
	// but with the worst per-epoch rate.
	psOpt := nn.NewSGD(cfg.LR)
	psOpt.Momentum = 0
	grad := make([]float64, ps.VectorLen())
	global := make([]float64, ps.VectorLen())

	// Active transfer end-times approximate PS-side contention: a transfer
	// starting now shares the NIC with every still-active transfer.
	var activeEnds []float64

	var q engine.Queue
	type pending struct {
		samples    int
		comp, comm float64
	}
	pend := make([]pending, len(ws))
	for i := range ws {
		q.Push(0, i)
	}
	for !tr.Done() && q.Len() > 0 {
		now, i := q.Pop()
		if p := pend[i]; p.samples > 0 {
			tr.OnIteration(now, p.samples, p.comp, p.comm)
			if tr.Done() {
				break
			}
		}
		w := ws[i]
		_, samples := w.GradOnly()
		w.Model.GradVector(grad)
		ps.SetGradVector(grad)
		psOpt.Step(ps)
		ps.CopyVector(global)
		w.Model.SetVector(global)

		keep := activeEnds[:0]
		for _, e := range activeEnds {
			if e > now {
				keep = append(keep, e)
			}
		}
		activeEnds = keep
		sharers := len(activeEnds) + 1
		comm := cfg.Net.PSTransferTime(i, 2*bytes, sharers)
		tr.AddBytes(2 * bytes)
		iter := cfg.ComputeSecs(i) + comm
		activeEnds = append(activeEnds, now+iter)
		pend[i] = pending{samples: samples, comp: cfg.ComputeSecs(i), comm: comm}
		q.Push(now+iter, i)
	}
	return tr.Finish()
}
