package baselines

import (
	"testing"

	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

func hetConfig(workers, epochs int, seed int64) *engine.Config {
	train, test := data.SynthMNIST.Generate(1)
	idx := make([]int, 256)
	for i := range idx {
		idx[i] = i
	}
	topo := simnet.PaperCluster(workers)
	return &engine.Config{
		Spec:    nn.SimResNet18,
		Part:    data.Uniform(train, workers, 1),
		Eval:    train.Slice(idx),
		Test:    test,
		Net:     simnet.NewHeterogeneousPeriod(topo, seed, 1e6, 8),
		LR:      0.1,
		Batch:   16,
		Epochs:  epochs,
		Seed:    5,
		Overlap: true,
	}
}

func homConfig(workers, epochs int) *engine.Config {
	cfg := hetConfig(workers, epochs, 1)
	cfg.Net = simnet.NewHomogeneous(simnet.SingleMachine(workers))
	return cfg
}

func checkTrains(t *testing.T, r *engine.Result, name string, epochs int) {
	t.Helper()
	if r.Epochs != epochs {
		t.Fatalf("%s: epochs = %d, want %d", name, r.Epochs, epochs)
	}
	if r.FinalLoss >= r.Curve[0].Value {
		t.Fatalf("%s: loss did not decrease: %v -> %v", name, r.Curve[0].Value, r.FinalLoss)
	}
	if r.FinalAccuracy < 0.8 {
		t.Fatalf("%s: accuracy = %v", name, r.FinalAccuracy)
	}
	if r.TotalTime <= 0 {
		t.Fatalf("%s: no virtual time elapsed", name)
	}
}

func TestADPSGDTrains(t *testing.T) {
	r := RunADPSGD(hetConfig(4, 6, 3))
	checkTrains(t, r, "AD-PSGD", 6)
	if r.Algo != "AD-PSGD" {
		t.Fatalf("algo = %q", r.Algo)
	}
}

func TestGossipTrains(t *testing.T) {
	checkTrains(t, RunGossip(homConfig(4, 6)), "Gossip", 6)
}

func TestAllreduceTrains(t *testing.T) {
	r := RunAllreduce(hetConfig(4, 6, 3))
	checkTrains(t, r, "Allreduce", 6)
}

func TestAllreduceModelsStayIdentical(t *testing.T) {
	cfg := hetConfig(4, 2, 3)
	ws := cfg.Workers()
	tr := engine.NewTracker(cfg, ws, "x")
	_ = tr
	// Run two manual allreduce rounds via the public entry point and verify
	// consensus via a fresh run: all worker models equal at the end is an
	// internal invariant, observable through a zero consensus gap — the
	// averaged model's loss equals each worker's loss. Easiest check: run
	// and compare accuracy of the averaged model against a re-run.
	r1 := RunAllreduce(hetConfig(4, 2, 3))
	r2 := RunAllreduce(hetConfig(4, 2, 3))
	if r1.FinalLoss != r2.FinalLoss {
		t.Fatalf("allreduce non-deterministic: %v vs %v", r1.FinalLoss, r2.FinalLoss)
	}
}

func TestPragueTrains(t *testing.T) {
	checkTrains(t, RunPrague(hetConfig(8, 6, 3)), "Prague", 6)
}

func TestPSSyncTrains(t *testing.T) {
	checkTrains(t, RunPSSync(hetConfig(4, 6, 3)), "PS-syn", 6)
}

func TestPSAsyncTrains(t *testing.T) {
	checkTrains(t, RunPSAsync(hetConfig(4, 8, 3)), "PS-asyn", 8)
}

func TestSAPSTrains(t *testing.T) {
	checkTrains(t, RunSAPS(hetConfig(8, 6, 3)), "SAPS", 6)
}

func TestSAPSSubgraphConnectedAndSparse(t *testing.T) {
	cfg := hetConfig(8, 1, 3)
	sub := SAPSSubgraph(cfg)
	topo := &simnet.Topology{M: 8, Machine: cfg.Net.Topo.Machine, Adj: sub}
	if !topo.Connected() {
		t.Fatal("SAPS subgraph disconnected")
	}
	edges := 0
	full := 0
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if sub[i][j] {
				edges++
				if sub[i][j] != sub[j][i] {
					t.Fatal("subgraph asymmetric")
				}
			}
			if cfg.Net.Topo.Adj[i][j] {
				full++
			}
		}
	}
	if edges >= full {
		t.Fatalf("subgraph not sparser than full graph: %d vs %d", edges, full)
	}
	for i := 0; i < 8; i++ {
		deg := 0
		for j := 0; j < 8; j++ {
			if sub[i][j] {
				deg++
			}
		}
		if deg == 0 {
			t.Fatalf("node %d isolated in SAPS subgraph", i)
		}
	}
}

func TestSAPSPrefersFastLinks(t *testing.T) {
	cfg := hetConfig(8, 1, 3)
	sub := SAPSSubgraph(cfg)
	// Count intra- vs inter-machine subgraph edges: intra (fast) edges
	// should all be included.
	mac := cfg.Net.Topo.Machine
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if mac[i] == mac[j] && !sub[i][j] {
				// Every intra-machine link is among the fastest; with
				// degree targets >= 2 per node they should be picked first.
				t.Logf("intra edge %d-%d missing (acceptable if degree filled)", i, j)
			}
		}
	}
	intra, inter := 0, 0
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if !sub[i][j] {
				continue
			}
			if mac[i] == mac[j] {
				intra++
			} else {
				inter++
			}
		}
	}
	if intra == 0 {
		t.Fatal("SAPS chose no intra-machine (fast) links")
	}
}

func TestRingAllreduceTimeScalesWithModel(t *testing.T) {
	cfg := hetConfig(8, 1, 3)
	small := cfg
	tSmall := RingAllreduceTime(small, 0)
	cfg2 := hetConfig(8, 1, 3)
	cfg2.Spec = nn.SimVGG19
	tBig := RingAllreduceTime(cfg2, 0)
	if tBig <= tSmall {
		t.Fatalf("VGG19 allreduce (%v) should exceed ResNet18 (%v)", tBig, tSmall)
	}
}

func TestRingAllreduceSingleNode(t *testing.T) {
	cfg := hetConfig(4, 1, 3)
	cfg.Net = simnet.NewHomogeneous(simnet.SingleMachine(1))
	if got := RingAllreduceTime(cfg, 0); got != 0 {
		t.Fatalf("single-node allreduce time = %v", got)
	}
}

func TestSyncSlowerThanAsyncOnHeterogeneous(t *testing.T) {
	// Section V-B: sync approaches pay for the slow link every round.
	ad := RunADPSGD(hetConfig(8, 8, 7))
	ar := RunAllreduce(hetConfig(8, 8, 7))
	if ar.TotalTime <= ad.TotalTime {
		t.Fatalf("Allreduce (%v) should be slower than AD-PSGD (%v) on heterogeneous net", ar.TotalTime, ad.TotalTime)
	}
}

func TestPragueCommCostHighestAmongDecentralized(t *testing.T) {
	// Fig. 5: Prague suffers the highest communication cost under
	// heterogeneity (group allreduce + congestion).
	pr := RunPrague(hetConfig(8, 8, 9))
	ad := RunADPSGD(hetConfig(8, 8, 9))
	if pr.CommCostPerEpoch(8) <= ad.CommCostPerEpoch(8) {
		t.Fatalf("Prague comm (%v) should exceed AD-PSGD (%v)", pr.CommCostPerEpoch(8), ad.CommCostPerEpoch(8))
	}
}

func TestPSAsyncFasterThanPSSyncOnHeterogeneous(t *testing.T) {
	// Fig. 14(b): PS-syn is the slowest because it waits for the slowest
	// worker round after round.
	syn := RunPSSync(hetConfig(8, 8, 21))
	asyn := RunPSAsync(hetConfig(8, 8, 21))
	if asyn.TotalTime >= syn.TotalTime {
		t.Fatalf("PS-asyn (%v) should be faster than PS-syn (%v)", asyn.TotalTime, syn.TotalTime)
	}
}

func TestDeterminism(t *testing.T) {
	for _, f := range []struct {
		name string
		run  func() *engine.Result
	}{
		{"prague", func() *engine.Result { return RunPrague(hetConfig(8, 3, 3)) }},
		{"psasync", func() *engine.Result { return RunPSAsync(hetConfig(4, 3, 3)) }},
		{"saps", func() *engine.Result { return RunSAPS(hetConfig(8, 3, 3)) }},
	} {
		a := f.run()
		b := f.run()
		if a.TotalTime != b.TotalTime || a.FinalLoss != b.FinalLoss {
			t.Fatalf("%s non-deterministic", f.name)
		}
	}
}
