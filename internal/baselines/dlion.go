package baselines

import (
	"math/rand"

	"netmax/internal/engine"
	"netmax/internal/policy"
)

// dlionAsync implements a DLion-style behavior [24]: uniform neighbor
// selection, but the amount of model transferred scales with the link's
// current capacity — slow links carry a smaller partition of the model.
// This keeps iteration times flat across links at the cost of exchanging
// partial models, which the paper notes "may cause divergence of the
// training" (Section VI); here the partial exchange shows up as slower
// consensus.
type dlionAsync struct {
	cfg *engine.Config
	p   [][]float64
	// refRate is the rate that earns a full-model transfer; slower links
	// transfer proportionally less, floored at minFraction.
	refRate     float64
	minFraction float64

	// fraction of the model to blend on the current pull, set in
	// SelectPeer (the engine calls SelectPeer then BlendCoef for the same
	// iteration; the async loop is single-threaded).
	curFraction float64
}

func (d *dlionAsync) SelectPeer(i int, now float64, rng *rand.Rand) int {
	j := policy.Sample(d.p[i], i, rng)
	if j != i {
		frac := d.cfg.Net.Rate(i, j, now) / d.refRate
		if frac > 1 {
			frac = 1
		}
		if frac < d.minFraction {
			frac = d.minFraction
		}
		d.curFraction = frac
	}
	return j
}

// BlendCoef scales the averaging weight by the transferred fraction: only
// part of the model arrived, so only that share of the blend applies (in
// expectation over the chosen partition).
func (d *dlionAsync) BlendCoef(i, j int) float64 { return 0.5 * d.curFraction }

func (d *dlionAsync) OnIterationEnd(i, j int, s, now float64) {}
func (d *dlionAsync) Tick(now float64)                        {}

// TransferBytes reports the partial-model size for the engine's byte and
// timing accounting.
func (d *dlionAsync) TransferBytes(full int64) int64 {
	return int64(float64(full) * d.curFraction)
}

// RunDLion trains with the DLion-style capacity-proportional partial model
// exchange.
func RunDLion(cfg *engine.Config) *engine.Result {
	b := &dlionAsync{
		cfg:         cfg,
		p:           policy.Uniform(cfg.Net.Topo.Adj),
		refRate:     cfg.Net.IntraRate,
		minFraction: 0.1,
		curFraction: 1,
	}
	if b.refRate == 0 {
		b.refRate = 1
	}
	return engine.RunAsync(cfg, b, "DLion")
}
