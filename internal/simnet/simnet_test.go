package simnet

import (
	"math"
	"testing"
	"testing/quick"

	"netmax/internal/nn"
)

func TestFullyConnected(t *testing.T) {
	adj := FullyConnected(4)
	for i := 0; i < 4; i++ {
		if adj[i][i] {
			t.Fatal("self loop present")
		}
		for j := 0; j < 4; j++ {
			if i != j && !adj[i][j] {
				t.Fatalf("edge %d-%d missing", i, j)
			}
		}
	}
}

func TestRingConnected(t *testing.T) {
	topo := &Topology{M: 5, Machine: make([]int, 5), Adj: Ring(5)}
	if !topo.Connected() {
		t.Fatal("ring should be connected")
	}
	if got := len(topo.Neighbors(0)); got != 2 {
		t.Fatalf("ring degree = %d, want 2", got)
	}
}

func TestDisconnectedDetected(t *testing.T) {
	adj := make([][]bool, 4)
	for i := range adj {
		adj[i] = make([]bool, 4)
	}
	adj[0][1], adj[1][0] = true, true
	adj[2][3], adj[3][2] = true, true
	topo := &Topology{M: 4, Machine: make([]int, 4), Adj: adj}
	if topo.Connected() {
		t.Fatal("two components reported connected")
	}
}

func TestPaperClusterPlacements(t *testing.T) {
	cases := []struct {
		workers  int
		machines int
	}{{4, 2}, {8, 3}, {16, 4}, {6, 2}, {12, 3}}
	for _, c := range cases {
		topo := PaperCluster(c.workers)
		if topo.M != c.workers {
			t.Fatalf("workers = %d, want %d", topo.M, c.workers)
		}
		maxM := 0
		for _, m := range topo.Machine {
			if m > maxM {
				maxM = m
			}
		}
		if maxM+1 != c.machines {
			t.Errorf("%d workers placed on %d machines, want %d", c.workers, maxM+1, c.machines)
		}
		if !topo.Connected() {
			t.Errorf("%d-worker topology not connected", c.workers)
		}
	}
}

func TestIntraFasterThanInter(t *testing.T) {
	topo := PaperCluster(8)
	net := NewStatic(topo)
	// Nodes 0,1 share machine 0; node 7 is on machine 2.
	intra := net.TransferTime(0, 1, 1e8, 0)
	inter := net.TransferTime(0, 7, 1e8, 0)
	if intra >= inter {
		t.Fatalf("intra %v >= inter %v", intra, inter)
	}
	ratio := inter / intra
	if ratio < 2 || ratio > 8 {
		t.Fatalf("inter/intra ratio = %v, want within [2,8]", ratio)
	}
}

func TestFig3Shape(t *testing.T) {
	// Fig 3: inter-machine iteration time is ~2-4x intra-machine for both
	// ResNet18 and VGG19, and VGG19 > ResNet18.
	topo := PaperCluster(8)
	net := NewStatic(topo)
	iter := func(spec nn.ModelSpec, i, j int) float64 {
		return net.IterationTime(i, j, spec.ModelBytes(), spec.ComputeSecs, 0, true)
	}
	r18Intra, r18Inter := iter(nn.SimResNet18, 0, 1), iter(nn.SimResNet18, 0, 7)
	vggIntra, vggInter := iter(nn.SimVGG19, 0, 1), iter(nn.SimVGG19, 0, 7)
	if ratio := r18Inter / r18Intra; ratio < 1.5 || ratio > 5 {
		t.Errorf("ResNet18 inter/intra = %v, want ~2-4x", ratio)
	}
	if ratio := vggInter / vggIntra; ratio < 1.5 || ratio > 5 {
		t.Errorf("VGG19 inter/intra = %v, want ~2-4x", ratio)
	}
	if vggIntra <= r18Intra || vggInter <= r18Inter {
		t.Errorf("VGG19 times (%v, %v) should exceed ResNet18 (%v, %v)", vggIntra, vggInter, r18Intra, r18Inter)
	}
}

func TestSlowdownScheduleMovesEveryPeriod(t *testing.T) {
	topo := PaperCluster(8)
	net := NewHeterogeneous(topo, 1, 1800)
	if got := net.SlowdownCount(); got != 6 {
		t.Fatalf("schedule has %d events for 1800s horizon, want 6", got)
	}
}

func TestSlowdownAffectsExactlyOneLink(t *testing.T) {
	topo := PaperCluster(4)
	net := NewHeterogeneous(topo, 3, 600)
	now := 10.0
	slowed := 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			base := NewStatic(topo).Rate(i, j, now)
			cur := net.Rate(i, j, now)
			if cur < base-1e-9 {
				slowed++
				factor := base / cur
				if factor < 2 || factor > 100 {
					t.Fatalf("slowdown factor %v outside [2,100]", factor)
				}
			}
		}
	}
	if slowed != 1 {
		t.Fatalf("%d links slowed at once, want exactly 1", slowed)
	}
}

func TestSlowdownDeterministicInSeed(t *testing.T) {
	topo := PaperCluster(8)
	a := NewHeterogeneous(topo, 42, 1200)
	b := NewHeterogeneous(topo, 42, 1200)
	for now := 0.0; now < 1200; now += 37 {
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i == j {
					continue
				}
				if a.Rate(i, j, now) != b.Rate(i, j, now) {
					t.Fatal("same seed produced different rates")
				}
			}
		}
	}
}

func TestSlowLinkChangesOverTime(t *testing.T) {
	topo := PaperCluster(8)
	net := NewHeterogeneous(topo, 7, 3000)
	// Find the slowed pair in two different periods; with 28 pairs the odds
	// of a collision across all sampled periods are negligible for this seed.
	find := func(now float64) [2]int {
		base := NewStatic(topo)
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				if net.Rate(i, j, now) < base.Rate(i, j, now)-1e-9 {
					return [2]int{i, j}
				}
			}
		}
		return [2]int{-1, -1}
	}
	first := find(1)
	changed := false
	for p := 1; p < 10; p++ {
		if find(float64(p)*SlowLinkPeriod+1) != first {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("slow link never moved across 10 periods")
	}
}

func TestHomogeneousUniformRates(t *testing.T) {
	net := NewHomogeneous(SingleMachine(8))
	r := net.Rate(0, 1, 0)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i != j && net.Rate(i, j, 123) != r {
				t.Fatal("homogeneous rates differ")
			}
		}
	}
	if r != VSwitchRate {
		t.Fatalf("rate = %v, want %v", r, VSwitchRate)
	}
}

func TestSelfTransferFree(t *testing.T) {
	net := NewStatic(PaperCluster(4))
	if net.TransferTime(2, 2, 1e9, 0) != 0 {
		t.Fatal("self transfer should be free")
	}
}

func TestIterationTimeOverlapVsSerial(t *testing.T) {
	net := NewStatic(PaperCluster(8))
	spec := nn.SimResNet18
	over := net.IterationTime(0, 7, spec.ModelBytes(), spec.ComputeSecs, 0, true)
	serial := net.IterationTime(0, 7, spec.ModelBytes(), spec.ComputeSecs, 0, false)
	nt := net.TransferTime(0, 7, spec.ModelBytes(), 0)
	if math.Abs(over-math.Max(spec.ComputeSecs, nt)) > 1e-12 {
		t.Fatalf("overlap time = %v, want max(C,N) = %v", over, math.Max(spec.ComputeSecs, nt))
	}
	if math.Abs(serial-(spec.ComputeSecs+nt)) > 1e-12 {
		t.Fatalf("serial time = %v, want C+N = %v", serial, spec.ComputeSecs+nt)
	}
	if serial <= over {
		t.Fatal("serial should be slower than overlapped")
	}
}

func TestCrossRegionStructure(t *testing.T) {
	net := NewCrossRegion()
	if net.Topo.M != 6 {
		t.Fatalf("regions = %d, want 6", net.Topo.M)
	}
	// Symmetric rates, positive off-diagonal, spread >= ~6x (paper cites 12x
	// between closest and farthest; our matrix spans 10-60 MB/s).
	minR, maxR := math.Inf(1), 0.0
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			r := net.Rate(i, j, 0)
			if r <= 0 {
				t.Fatalf("non-positive WAN rate %d-%d", i, j)
			}
			if r != net.Rate(j, i, 0) {
				t.Fatalf("asymmetric WAN rate %d-%d", i, j)
			}
			minR = math.Min(minR, r)
			maxR = math.Max(maxR, r)
		}
	}
	if maxR/minR < 5 {
		t.Fatalf("WAN heterogeneity spread = %v, want >= 5x", maxR/minR)
	}
}

func TestTransferTimeScalesLinearlyInBytes(t *testing.T) {
	f := func(seed int64) bool {
		topo := PaperCluster(8)
		net := NewHeterogeneous(topo, seed, 600)
		t1 := net.TransferTime(0, 5, 1e6, 100)
		t2 := net.TransferTime(0, 5, 2e6, 100)
		return math.Abs(t2-2*t1) < 1e-9*t1+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRateSymmetryProperty(t *testing.T) {
	f := func(seed int64, nowRaw uint16) bool {
		topo := PaperCluster(8)
		net := NewHeterogeneous(topo, seed, 3000)
		now := float64(nowRaw)
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				if net.Rate(i, j, now) != net.Rate(j, i, now) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
