// Package simnet models the heterogeneous, dynamic networks of the paper's
// evaluation on a virtual clock.
//
// The paper's testbed is an 18-server multi-tenant cluster on 1000 Mbps
// Ethernet where one link at a time is artificially slowed by 2-100x, with
// the slowed link moving every five minutes (Section V-A), plus a
// homogeneous single-server 10 Gbps virtual-switch setting and a six-region
// WAN setting (Appendix G). None of that hardware is available here, so this
// package reproduces the *timing structure*: a machine-placement topology
// gives every node pair a base transfer rate (fast intra-machine, slow
// inter-machine), a deterministic slowdown schedule moves a random slow link
// over time, and TransferTime converts (bytes, link, virtual time) into
// seconds. All timing figures in the evaluation derive from these values.
package simnet

import (
	"fmt"
	"math/rand"
)

// Topology places M worker nodes onto physical machines and fixes the
// communication graph d[i][m].
type Topology struct {
	M       int
	Machine []int    // Machine[i] = machine hosting node i
	Adj     [][]bool // Adj[i][m] = true if i and m are neighbors (d_{i,m}=1)
}

// FullyConnected returns an all-pairs adjacency for m nodes (no self loops).
func FullyConnected(m int) [][]bool {
	adj := make([][]bool, m)
	for i := range adj {
		adj[i] = make([]bool, m)
		for j := range adj[i] {
			adj[i][j] = i != j
		}
	}
	return adj
}

// Ring returns a cycle adjacency for m nodes.
func Ring(m int) [][]bool {
	adj := make([][]bool, m)
	for i := range adj {
		adj[i] = make([]bool, m)
	}
	for i := 0; i < m; i++ {
		j := (i + 1) % m
		adj[i][j] = true
		adj[j][i] = true
	}
	return adj
}

// Cluster builds the paper's placement: nodesPerMachine[k] workers on
// machine k, fully connected graph. The paper runs 4, 8 and 16 workers
// across 2, 3 and 4 servers respectively.
func Cluster(nodesPerMachine []int) *Topology {
	var machine []int
	for k, n := range nodesPerMachine {
		for i := 0; i < n; i++ {
			machine = append(machine, k)
		}
	}
	m := len(machine)
	return &Topology{M: m, Machine: machine, Adj: FullyConnected(m)}
}

// PaperCluster returns the placement used in Section V-A for the given
// worker count: 4 workers on 2 servers, 8 on 3, 16 on 4. Other counts are
// spread over ceil(m/4) servers.
func PaperCluster(workers int) *Topology {
	switch workers {
	case 4:
		return Cluster([]int{2, 2})
	case 8:
		return Cluster([]int{3, 3, 2})
	case 16:
		return Cluster([]int{4, 4, 4, 4})
	default:
		var per []int
		left := workers
		for left > 0 {
			n := 4
			if left < 4 {
				n = left
			}
			per = append(per, n)
			left -= n
		}
		return Cluster(per)
	}
}

// SingleMachine returns the homogeneous placement: all m workers on one
// server connected by the 10 Gbps virtual switch.
func SingleMachine(m int) *Topology {
	return Cluster([]int{m})
}

// Neighbors returns the neighbor indices of node i.
func (t *Topology) Neighbors(i int) []int {
	var out []int
	for j, ok := range t.Adj[i] {
		if ok {
			out = append(out, j)
		}
	}
	return out
}

// Connected reports whether the adjacency graph is connected (Assumption 1).
func (t *Topology) Connected() bool {
	if t.M == 0 {
		return true
	}
	seen := make([]bool, t.M)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for j, ok := range t.Adj[i] {
			if ok && !seen[j] {
				seen[j] = true
				count++
				stack = append(stack, j)
			}
		}
	}
	return count == t.M
}

// slowdown is one entry of the dynamic schedule: from Start, link (A,B) is
// slowed by Factor.
type slowdown struct {
	Start  float64
	A, B   int
	Factor float64
}

// Network converts (link, bytes, virtual time) into transfer seconds.
type Network struct {
	Topo *Topology

	// IntraRate and InterRate are effective transfer rates in bytes/second
	// for same-machine and cross-machine links.
	IntraRate float64
	InterRate float64

	// schedule of slowdown events, ascending by Start. At any time exactly
	// one (or zero) entry is active: the latest one with Start <= now.
	schedule []slowdown

	// rateOverride, if non-nil, gives a full per-pair rate matrix
	// (bytes/sec) and takes precedence over Intra/InterRate. Used by the
	// cross-region WAN setting.
	rateOverride [][]float64

	// shuffles, if non-empty, is the time-varying fast/slow link
	// permutation of NewShuffledRates and replaces the machine-placement
	// rate rule.
	shuffles []rateShuffle
}

// Paper-calibrated defaults (see nn zoo comment): intra-machine GPU-to-GPU
// effective rate ~600 MB/s, inter-machine 1000 Mbps Ethernet with protocol
// overhead ~150 MB/s burst when idle (the slowdown schedule degrades it
// further), homogeneous 10 Gbps virtual switch ~1.25 GB/s.
const (
	DefaultIntraRate = 600e6
	DefaultInterRate = 150e6
	VSwitchRate      = 1250e6
	// SlowLinkPeriod is how often the slowed link moves (Section V-A:
	// "change the slow link every 5 minutes").
	SlowLinkPeriod = 300.0
)

// NewHeterogeneous builds the multi-tenant-cluster network of Section V-A:
// cluster placement rates plus a dynamic 2-100x slowdown moving every
// SlowLinkPeriod seconds for the given horizon. Deterministic in seed.
func NewHeterogeneous(topo *Topology, seed int64, horizon float64) *Network {
	return NewHeterogeneousPeriod(topo, seed, horizon, SlowLinkPeriod)
}

// NewHeterogeneousPeriod is NewHeterogeneous with an explicit slow-link
// relocation period. The paper moves the slow link every 300s against epochs
// of ~100s; simulations with faster epochs scale the period down to keep the
// dynamics-per-epoch ratio.
func NewHeterogeneousPeriod(topo *Topology, seed int64, horizon, period float64) *Network {
	n := &Network{Topo: topo, IntraRate: DefaultIntraRate, InterRate: DefaultInterRate}
	rng := rand.New(rand.NewSource(seed))
	for t := 0.0; t < horizon; t += period {
		a := rng.Intn(topo.M)
		b := rng.Intn(topo.M - 1)
		if b >= a {
			b++
		}
		factor := 2 + rng.Float64()*98 // 2x .. 100x
		n.schedule = append(n.schedule, slowdown{Start: t, A: a, B: b, Factor: factor})
	}
	return n
}

// NewHomogeneous builds the single-server 10 Gbps virtual-switch network of
// Section V-A (no slowdowns).
func NewHomogeneous(topo *Topology) *Network {
	return &Network{Topo: topo, IntraRate: VSwitchRate, InterRate: VSwitchRate}
}

// NewStatic builds a network with the cluster rates and no dynamics; useful
// for tests and for SAPS-style static analyses.
func NewStatic(topo *Topology) *Network {
	return &Network{Topo: topo, IntraRate: DefaultIntraRate, InterRate: DefaultInterRate}
}

// Regions of the paper's Appendix G cross-cloud experiment, in order.
var Regions = []string{"USWest", "USEast", "Ireland", "Mumbai", "Singapore", "Tokyo"}

// NewCrossRegion builds the six-region WAN of Appendix G. Rates follow the
// geographic structure the paper cites ([5]): nearby region pairs are up to
// ~12x faster than distant ones.
func NewCrossRegion() *Network {
	m := len(Regions)
	topo := &Topology{M: m, Machine: make([]int, m), Adj: FullyConnected(m)}
	for i := range topo.Machine {
		topo.Machine[i] = i // every region is its own "machine"
	}
	// Effective pairwise rates in MB/s; symmetric. Close pairs (US-US,
	// Mumbai-Singapore-Tokyo) fast; transpacific/transcontinental slow.
	mb := [][]float64{
		//            USW  USE  Irl  Mum  Sin  Tok
		{0, 60, 25, 10, 12, 30}, // USWest
		{60, 0, 40, 12, 10, 15}, // USEast
		{25, 40, 0, 20, 15, 10}, // Ireland
		{10, 12, 20, 0, 45, 25}, // Mumbai
		{12, 10, 15, 45, 0, 60}, // Singapore
		{30, 15, 10, 25, 60, 0}, // Tokyo
	}
	rates := make([][]float64, m)
	for i := range rates {
		rates[i] = make([]float64, m)
		for j := range rates[i] {
			rates[i][j] = mb[i][j] * 1e6
		}
	}
	return &Network{Topo: topo, rateOverride: rates}
}

// activeSlowdown returns the slowdown in force at virtual time now, if any.
func (n *Network) activeSlowdown(now float64) (slowdown, bool) {
	lo, hi := 0, len(n.schedule)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.schedule[mid].Start <= now {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return slowdown{}, false
	}
	return n.schedule[lo-1], true
}

// Rate returns the effective transfer rate in bytes/second between nodes i
// and j at virtual time now.
func (n *Network) Rate(i, j int, now float64) float64 {
	if i == j {
		return 0 // self transfers are free; callers must not divide by this
	}
	if n.rateOverride != nil {
		return n.rateOverride[i][j]
	}
	if s, ok := n.activeShuffle(now); ok {
		key := [2]int{i, j}
		if j < i {
			key = [2]int{j, i}
		}
		if s.Fast[key] {
			return n.IntraRate
		}
		return n.InterRate
	}
	rate := n.InterRate
	if n.Topo.Machine[i] == n.Topo.Machine[j] {
		rate = n.IntraRate
	}
	if s, ok := n.activeSlowdown(now); ok {
		if (s.A == i && s.B == j) || (s.A == j && s.B == i) {
			rate /= s.Factor
		}
	}
	return rate
}

// TransferTime returns the seconds needed to move bytes between i and j
// starting at virtual time now. Self transfers take zero time.
func (n *Network) TransferTime(i, j int, bytes int64, now float64) float64 {
	if i == j {
		return 0
	}
	rate := n.Rate(i, j, now)
	if rate <= 0 {
		panic(fmt.Sprintf("simnet: zero rate between %d and %d", i, j))
	}
	return float64(bytes) / rate
}

// IterationTime returns the duration of one local iteration of node i that
// pulls a model of the given size from node j, per Section II-B:
// t_{i,j} = max(C_i, N_{i,j}) when computation and communication overlap,
// or C_i + N_{i,j} when serialized (the fig7 ablation).
func (n *Network) IterationTime(i, j int, bytes int64, computeSecs, now float64, overlap bool) float64 {
	nt := n.TransferTime(i, j, bytes, now)
	if overlap {
		if computeSecs > nt {
			return computeSecs
		}
		return nt
	}
	return computeSecs + nt
}

// SlowdownCount returns the number of scheduled slowdown events (testing).
func (n *Network) SlowdownCount() int { return len(n.schedule) }

// rateShuffle is one period of the base-rate permutation schedule used by
// NewShuffledRates: from Start, node pair classes are remapped by Perm.
type rateShuffle struct {
	Start float64
	Fast  map[[2]int]bool // pairs that are fast during this period
}

// NewShuffledRates builds the Fig. 2 scenario directly: which links are
// congested changes over time (not merely one slowed link). Each period a
// random third of the link pairs is congested (8x below the inter-machine
// rate, inside the paper's 2-100x slowdown range) while the rest run at the
// intra-machine rate. Static-subgraph methods (SAPS-PSGD) keep using links
// that were fast at t=0 and degrade; adaptive methods re-measure.
func NewShuffledRates(topo *Topology, seed int64, horizon, period float64) *Network {
	n := &Network{Topo: topo, IntraRate: DefaultIntraRate, InterRate: DefaultInterRate / 8}
	rng := rand.New(rand.NewSource(seed))
	var pairs [][2]int
	for i := 0; i < topo.M; i++ {
		for j := i + 1; j < topo.M; j++ {
			pairs = append(pairs, [2]int{i, j})
		}
	}
	for t := 0.0; t < horizon; t += period {
		rng.Shuffle(len(pairs), func(a, b int) { pairs[a], pairs[b] = pairs[b], pairs[a] })
		fast := make(map[[2]int]bool, len(pairs))
		for _, p := range pairs[len(pairs)/3:] {
			fast[p] = true
		}
		n.shuffles = append(n.shuffles, rateShuffle{Start: t, Fast: fast})
	}
	return n
}

// activeShuffle returns the rate permutation in force at time now.
func (n *Network) activeShuffle(now float64) (rateShuffle, bool) {
	lo, hi := 0, len(n.shuffles)
	for lo < hi {
		mid := (lo + hi) / 2
		if n.shuffles[mid].Start <= now {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return rateShuffle{}, false
	}
	return n.shuffles[lo-1], true
}

// PSRate returns the effective rate between worker i and a parameter server
// co-located with worker 0's machine (Section V-G assigns the PS to one GPU
// server). Workers on the PS machine use the intra-machine rate; the
// dynamic slowdown schedule covers only worker-worker links, so PS links
// keep their base rate.
func (n *Network) PSRate(i int) float64 {
	if n.rateOverride != nil {
		if i == 0 {
			// The PS shares region 0; local exchange runs at the fastest
			// WAN rate in the matrix as a stand-in for LAN speed.
			best := 0.0
			for j, r := range n.rateOverride[0] {
				if j != 0 && r > best {
					best = r
				}
			}
			return best * 4
		}
		return n.rateOverride[i][0]
	}
	if n.Topo.Machine[i] == n.Topo.Machine[0] {
		return n.IntraRate
	}
	return n.InterRate
}

// PSTransferTime returns the seconds to move bytes between worker i and the
// parameter server, given sharers concurrent transfers splitting the link.
func (n *Network) PSTransferTime(i int, bytes int64, sharers int) float64 {
	if sharers < 1 {
		sharers = 1
	}
	return float64(bytes) * float64(sharers) / n.PSRate(i)
}
