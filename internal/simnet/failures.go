package simnet

import (
	"math"
	"math/rand"
)

// FailureKind enumerates the churn events a FailureSchedule can inject.
type FailureKind uint8

const (
	// FailCrash takes a worker down at Start and rejoins it (with the
	// parameters it held when it crashed) at End. The process is gone:
	// connection attempts fail fast, so peers learn about a crash through
	// membership events rather than timeouts.
	FailCrash FailureKind = iota
	// FailHang freezes a worker for [Start, End): it stops iterating and
	// stops answering pulls, but the process is still there — peers cannot
	// distinguish it from a slow link except by timeout, so no membership
	// event is emitted. This is the failure mode only adaptive routing
	// (or a deadline) can mitigate.
	FailHang
	// FailLeave is a permanent crash: the worker never rejoins.
	FailLeave
	// FailBlackout takes one link (A, B) down for [Start, End): pulls in
	// either direction fail after the detection timeout while both
	// endpoints keep training.
	FailBlackout
)

// Failure is one scheduled churn event. Crash/Hang/Leave events name a
// Worker; Blackout events name the link endpoints A and B. The event is in
// force for virtual times in the half-open interval [Start, End); Leave
// events have End = +Inf.
type Failure struct {
	Kind   FailureKind
	Worker int
	A, B   int
	Start  float64
	End    float64
}

// FailureSchedule is a deterministic schedule of churn events on the
// virtual clock, the failure counterpart of the Network's slowdown
// schedule. An empty schedule injects nothing: the engine treats it exactly
// like a nil one, which the bitwise-determinism gate relies on.
type FailureSchedule struct {
	events []Failure

	// DetectSecs is the simulated failure-detection deadline: the virtual
	// time a worker loses when a pull targets an unresponsive peer or a
	// blacked-out link before giving up and continuing locally. It models
	// the live transport's per-call pull deadline.
	DetectSecs float64
}

// DefaultDetectSecs is the default simulated pull deadline: long enough to
// hurt relative to typical sub-second cluster iterations, matching the
// live transport's conservative default.
const DefaultDetectSecs = 2.0

// NewFailureSchedule returns an empty schedule with the default detection
// deadline. Builder methods (Crash, Hang, Leave, Blackout) append events
// and return the schedule for chaining.
func NewFailureSchedule() *FailureSchedule {
	return &FailureSchedule{DetectSecs: DefaultDetectSecs}
}

// Crash schedules worker w to crash at virtual time `at` and rejoin, with
// the parameters it held when it crashed, at `rejoin`. A rejoin at or
// before the crash time means the worker never comes back — the same
// convention as the live runtime's ChurnEvent — so the call degrades to
// Leave instead of silently scheduling an empty interval.
func (s *FailureSchedule) Crash(w int, at, rejoin float64) *FailureSchedule {
	if rejoin <= at {
		return s.Leave(w, at)
	}
	s.events = append(s.events, Failure{Kind: FailCrash, Worker: w, Start: at, End: rejoin})
	return s
}

// Hang schedules worker w to freeze for [at, until): it neither iterates
// nor answers pulls, and no membership event is emitted.
func (s *FailureSchedule) Hang(w int, at, until float64) *FailureSchedule {
	if until < at {
		until = at
	}
	s.events = append(s.events, Failure{Kind: FailHang, Worker: w, Start: at, End: until})
	return s
}

// Leave schedules worker w to crash at `at` and never rejoin.
func (s *FailureSchedule) Leave(w int, at float64) *FailureSchedule {
	s.events = append(s.events, Failure{Kind: FailLeave, Worker: w, Start: at, End: math.Inf(1)})
	return s
}

// Blackout schedules link (a, b) to drop all pulls in both directions for
// [at, until).
func (s *FailureSchedule) Blackout(a, b int, at, until float64) *FailureSchedule {
	if until < at {
		until = at
	}
	s.events = append(s.events, Failure{Kind: FailBlackout, A: a, B: b, Start: at, End: until})
	return s
}

// NewRandomChurn builds a deterministic random crash schedule for m
// workers: each worker crashes `crashesPerWorker` times in expectation over
// the horizon (exponential inter-arrival gaps), staying down for a random
// duration of mean `meanDown` seconds. Identical seeds give identical
// schedules. A non-positive rate, horizon or mean downtime yields an empty
// schedule — a zero downtime must not degrade every crash into a
// permanent leave through Crash's rejoin<=at convention.
func NewRandomChurn(m int, seed int64, horizon, crashesPerWorker, meanDown float64) *FailureSchedule {
	s := NewFailureSchedule()
	if crashesPerWorker <= 0 || horizon <= 0 || meanDown <= 0 {
		return s
	}
	rng := rand.New(rand.NewSource(seed))
	meanGap := horizon / crashesPerWorker
	for w := 0; w < m; w++ {
		t := 0.0
		for {
			t += rng.ExpFloat64() * meanGap
			if t >= horizon {
				break
			}
			down := meanDown * (0.5 + rng.Float64())
			s.Crash(w, t, t+down)
			t += down
		}
	}
	return s
}

// Empty reports whether the schedule has no events; the engine treats an
// empty schedule exactly like a nil one.
func (s *FailureSchedule) Empty() bool { return s == nil || len(s.events) == 0 }

// Len returns the number of scheduled events.
func (s *FailureSchedule) Len() int {
	if s == nil {
		return 0
	}
	return len(s.events)
}

// Events returns a copy of the scheduled events (observability, tests).
func (s *FailureSchedule) Events() []Failure {
	out := make([]Failure, len(s.events))
	copy(out, s.events)
	return out
}

// Down reports whether worker i is crashed or has left at virtual time now
// (the detectable, membership-changing failure modes; hangs are not Down).
func (s *FailureSchedule) Down(i int, now float64) bool {
	for _, e := range s.events {
		if (e.Kind == FailCrash || e.Kind == FailLeave) && e.Worker == i && e.Start <= now && now < e.End {
			return true
		}
	}
	return false
}

// Hung reports whether worker i is frozen at virtual time now.
func (s *FailureSchedule) Hung(i int, now float64) bool {
	for _, e := range s.events {
		if e.Kind == FailHang && e.Worker == i && e.Start <= now && now < e.End {
			return true
		}
	}
	return false
}

// Unresponsive reports whether worker i can neither iterate nor answer
// pulls at virtual time now (crashed, left, or hung).
func (s *FailureSchedule) Unresponsive(i int, now float64) bool {
	return s.Down(i, now) || s.Hung(i, now)
}

// LinkDown reports whether the link between i and j is blacked out at
// virtual time now (direction-agnostic).
func (s *FailureSchedule) LinkDown(i, j int, now float64) bool {
	for _, e := range s.events {
		if e.Kind != FailBlackout || e.Start > now || now >= e.End {
			continue
		}
		if (e.A == i && e.B == j) || (e.A == j && e.B == i) {
			return true
		}
	}
	return false
}

// PullFails reports whether a pull by i from j at virtual time now fails:
// the target is unresponsive or the link is blacked out. The caller is
// charged DetectSecs of virtual time for the failed attempt.
func (s *FailureSchedule) PullFails(i, j int, now float64) bool {
	return s.Unresponsive(j, now) || s.LinkDown(i, j, now)
}

// NextUp returns the earliest virtual time >= after at which worker i is
// responsive again, chaining through overlapping down intervals. ok is
// false when the worker never comes back (a Leave covers the time).
func (s *FailureSchedule) NextUp(i int, after float64) (float64, bool) {
	t := after
	for changed := true; changed; {
		changed = false
		for _, e := range s.events {
			if e.Kind == FailBlackout || e.Worker != i {
				continue
			}
			if e.Start <= t && t < e.End {
				if math.IsInf(e.End, 1) {
					return 0, false
				}
				t = e.End
				changed = true
			}
		}
	}
	return t, true
}

// Interrupted reports whether worker i was unresponsive at any point in the
// open interval (from, to): an iteration in flight across such an interval
// died with the worker and must be discarded. Blackouts do not interrupt
// local compute.
func (s *FailureSchedule) Interrupted(i int, from, to float64) bool {
	for _, e := range s.events {
		if e.Kind == FailBlackout || e.Worker != i {
			continue
		}
		if e.Start < to && e.End > from {
			return true
		}
	}
	return false
}

// NextTransition returns the earliest membership boundary — a crash, a
// leave, or a crash's rejoin — strictly after the given time; ok is false
// when none remain. The engine tracks the next boundary with this instead
// of re-scanning the schedule on every event pop.
func (s *FailureSchedule) NextTransition(after float64) (float64, bool) {
	best := math.Inf(1)
	for _, e := range s.events {
		if e.Kind != FailCrash && e.Kind != FailLeave {
			continue
		}
		if e.Start > after && e.Start < best {
			best = e.Start
		}
		if !math.IsInf(e.End, 1) && e.End > after && e.End < best {
			best = e.End
		}
	}
	if math.IsInf(best, 1) {
		return 0, false
	}
	return best, true
}

// TransitionIn reports whether any membership boundary — a crash, a leave,
// or a crash's rejoin — occurs at a virtual time t with a < t <= b. Hangs
// and blackouts are not membership events: peers cannot detect them except
// by timeout. Defined in terms of NextTransition so the two queries cannot
// drift apart.
func (s *FailureSchedule) TransitionIn(a, b float64) bool {
	t, ok := s.NextTransition(a)
	return ok && t <= b
}

// AliveInto fills dst[i] with the membership status of worker i at virtual
// time now: false only for crashed or departed workers. Hung workers stay
// in the membership — their failure is undetectable without a timeout.
func (s *FailureSchedule) AliveInto(dst []bool, now float64) {
	for i := range dst {
		dst[i] = !s.Down(i, now)
	}
}

// Detect returns the configured detection deadline, defaulting when unset.
func (s *FailureSchedule) Detect() float64 {
	if s.DetectSecs > 0 {
		return s.DetectSecs
	}
	return DefaultDetectSecs
}
