package simnet

import (
	"testing"
)

func TestShuffledRatesTwoClasses(t *testing.T) {
	topo := PaperCluster(8)
	net := NewShuffledRates(topo, 1, 600, 30)
	fast, slow := 0, 0
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			switch net.Rate(i, j, 5) {
			case net.IntraRate:
				fast++
			case net.InterRate:
				slow++
			default:
				t.Fatalf("unexpected rate %v for %d-%d", net.Rate(i, j, 5), i, j)
			}
		}
	}
	if slow == 0 || fast == 0 {
		t.Fatalf("want both classes, got %d fast / %d slow", fast, slow)
	}
	// A third of the 28 pairs should be congested.
	if slow != 28/3 {
		t.Fatalf("congested pairs = %d, want %d", slow, 28/3)
	}
}

func TestShuffledRatesChangeOverPeriods(t *testing.T) {
	topo := PaperCluster(8)
	net := NewShuffledRates(topo, 3, 900, 30)
	classify := func(now float64) map[[2]int]bool {
		out := map[[2]int]bool{}
		for i := 0; i < 8; i++ {
			for j := i + 1; j < 8; j++ {
				out[[2]int{i, j}] = net.Rate(i, j, now) == net.IntraRate
			}
		}
		return out
	}
	first := classify(5)
	changed := false
	for p := 1; p < 10; p++ {
		cur := classify(float64(p)*30 + 5)
		for k, v := range first {
			if cur[k] != v {
				changed = true
			}
		}
		if changed {
			break
		}
	}
	if !changed {
		t.Fatal("link classes never changed across periods")
	}
}

func TestShuffledRatesStableWithinPeriod(t *testing.T) {
	topo := PaperCluster(4)
	net := NewShuffledRates(topo, 5, 600, 30)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			if net.Rate(i, j, 1) != net.Rate(i, j, 29) {
				t.Fatalf("rate of %d-%d changed within one period", i, j)
			}
		}
	}
}

func TestShuffledRatesSlowClassBelowInter(t *testing.T) {
	topo := PaperCluster(4)
	net := NewShuffledRates(topo, 7, 300, 30)
	if net.InterRate >= DefaultInterRate {
		t.Fatalf("shuffled slow class %v should sit well below the normal inter rate %v",
			net.InterRate, DefaultInterRate)
	}
}

func TestShuffledRatesDeterministic(t *testing.T) {
	topo := PaperCluster(8)
	a := NewShuffledRates(topo, 11, 600, 30)
	b := NewShuffledRates(topo, 11, 600, 30)
	for now := 0.0; now < 600; now += 17 {
		for i := 0; i < 8; i++ {
			for j := 0; j < 8; j++ {
				if i != j && a.Rate(i, j, now) != b.Rate(i, j, now) {
					t.Fatal("same seed produced different shuffled rates")
				}
			}
		}
	}
}
