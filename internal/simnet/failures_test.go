package simnet

import (
	"math"
	"testing"
)

func TestFailureScheduleQueries(t *testing.T) {
	s := NewFailureSchedule().
		Crash(1, 10, 20).
		Hang(2, 5, 8).
		Leave(3, 30).
		Blackout(0, 2, 12, 18)

	// Crash: down on [10, 20), membership-changing.
	if s.Down(1, 9.99) || !s.Down(1, 10) || !s.Down(1, 19.99) || s.Down(1, 20) {
		t.Fatal("crash interval wrong")
	}
	// Hang: not Down, but Unresponsive.
	if s.Down(2, 6) {
		t.Fatal("hang must not change membership")
	}
	if !s.Hung(2, 6) || !s.Unresponsive(2, 6) || s.Unresponsive(2, 8) {
		t.Fatal("hang interval wrong")
	}
	// Leave: down forever.
	if !s.Down(3, 30) || !s.Down(3, 1e12) {
		t.Fatal("leave must be permanent")
	}
	// Blackout: link-level, both directions, no membership change.
	if !s.LinkDown(0, 2, 12) || !s.LinkDown(2, 0, 17.99) || s.LinkDown(0, 2, 18) {
		t.Fatal("blackout interval wrong")
	}
	if s.Down(0, 13) || s.Down(2, 13) {
		t.Fatal("blackout must not take workers down")
	}
	// PullFails composes target liveness and link state.
	if !s.PullFails(0, 1, 15) { // target crashed
		t.Fatal("pull from crashed worker must fail")
	}
	if !s.PullFails(0, 2, 13) || !s.PullFails(2, 0, 13) { // link blacked out
		t.Fatal("pull over blacked-out link must fail")
	}
	if s.PullFails(0, 1, 25) {
		t.Fatal("pull after rejoin must succeed")
	}
}

func TestFailureScheduleNextUp(t *testing.T) {
	s := NewFailureSchedule().Crash(0, 10, 20).Hang(0, 18, 25)
	// Overlapping crash+hang chain: first responsive time is 25.
	if up, ok := s.NextUp(0, 12); !ok || up != 25 {
		t.Fatalf("NextUp = %v, %v; want 25, true", up, ok)
	}
	if up, ok := s.NextUp(0, 3); !ok || up != 3 {
		t.Fatalf("NextUp before failures = %v, %v; want 3, true", up, ok)
	}
	s.Leave(1, 5)
	if _, ok := s.NextUp(1, 7); ok {
		t.Fatal("NextUp after a leave must report never")
	}
}

func TestCrashWithoutRejoinIsLeave(t *testing.T) {
	// Crash(w, at, rejoin <= at) follows the live ChurnEvent convention:
	// the worker leaves permanently instead of a silent zero-length no-op.
	s := NewFailureSchedule().Crash(0, 10, 0)
	if !s.Down(0, 10) || !s.Down(0, 1e12) {
		t.Fatal("rejoin <= at must mean a permanent leave")
	}
	if _, ok := s.NextUp(0, 11); ok {
		t.Fatal("degraded crash must never rejoin")
	}
}

func TestFailureScheduleInterrupted(t *testing.T) {
	s := NewFailureSchedule().Crash(0, 10, 11)
	if !s.Interrupted(0, 9, 12) {
		t.Fatal("flight spanning the crash must be interrupted")
	}
	if s.Interrupted(0, 11.5, 12) || s.Interrupted(0, 2, 9) {
		t.Fatal("flight outside the crash must survive")
	}
	if s.Interrupted(1, 9, 12) {
		t.Fatal("other workers unaffected")
	}
	s.Blackout(0, 1, 9, 12)
	if s.Interrupted(0, 9.5, 10) {
		t.Fatal("blackouts must not interrupt local compute")
	}
}

func TestFailureScheduleTransitions(t *testing.T) {
	s := NewFailureSchedule().Crash(0, 10, 20).Hang(1, 5, 50).Blackout(0, 1, 7, 9)
	if !s.TransitionIn(9, 10) || !s.TransitionIn(19, 20) {
		t.Fatal("crash start/rejoin are membership transitions")
	}
	if s.TransitionIn(4, 6) || s.TransitionIn(6, 8) {
		t.Fatal("hangs and blackouts are not membership transitions")
	}
	if s.TransitionIn(10, 19) {
		t.Fatal("no transition strictly inside the down interval")
	}
	alive := make([]bool, 2)
	s.AliveInto(alive, 15)
	if alive[0] || !alive[1] {
		t.Fatalf("AliveInto = %v; hang must not evict from membership", alive)
	}
	// NextTransition walks the crash/rejoin boundaries and ignores
	// hangs/blackouts, mirroring TransitionIn.
	if tr, ok := s.NextTransition(math.Inf(-1)); !ok || tr != 10 {
		t.Fatalf("NextTransition(-Inf) = %v, %v; want 10, true", tr, ok)
	}
	if tr, ok := s.NextTransition(10); !ok || tr != 20 {
		t.Fatalf("NextTransition(10) = %v, %v; want 20, true", tr, ok)
	}
	if _, ok := s.NextTransition(20); ok {
		t.Fatal("no boundaries remain after the rejoin")
	}
}

func TestRandomChurnDeterministicAndBounded(t *testing.T) {
	a := NewRandomChurn(8, 42, 1000, 2, 50)
	b := NewRandomChurn(8, 42, 1000, 2, 50)
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different event counts: %d vs %d", a.Len(), b.Len())
	}
	ea, eb := a.Events(), b.Events()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("same seed, different event %d: %+v vs %+v", i, ea[i], eb[i])
		}
	}
	if a.Len() == 0 {
		t.Fatal("rate 2 over 8 workers produced no crashes")
	}
	for _, e := range ea {
		if e.Kind != FailCrash {
			t.Fatalf("random churn produced non-crash event %+v", e)
		}
		if e.Start < 0 || e.Start >= 1000 || e.End <= e.Start || math.IsInf(e.End, 1) {
			t.Fatalf("event outside horizon or malformed: %+v", e)
		}
	}
	if c := NewRandomChurn(4, 1, 1000, 0, 50); !c.Empty() {
		t.Fatal("zero rate must give an empty schedule")
	}
	if c := NewRandomChurn(4, 1, 1000, 2, 0); !c.Empty() {
		t.Fatal("zero mean downtime must give an empty schedule, not permanent leaves")
	}
}

func TestEmptyScheduleIsInert(t *testing.T) {
	s := NewFailureSchedule()
	if !s.Empty() {
		t.Fatal("fresh schedule not empty")
	}
	if s.Down(0, 5) || s.Hung(0, 5) || s.LinkDown(0, 1, 5) || s.PullFails(0, 1, 5) || s.TransitionIn(0, 100) {
		t.Fatal("empty schedule must report no failures")
	}
	if up, ok := s.NextUp(0, 7); !ok || up != 7 {
		t.Fatal("NextUp on empty schedule must be identity")
	}
	if s.Detect() != DefaultDetectSecs {
		t.Fatalf("default Detect = %v", s.Detect())
	}
}
