package tensor

import (
	"sync"
)

// The tensor arena: size-keyed free lists of whole *Tensor objects backed by
// sync.Pool, so hot loops (the autograd tape, the engine's per-iteration
// batches) reuse both the float64 storage and the Tensor header across
// iterations instead of allocating ~every op.
//
// Lifecycle rules:
//
//   - GetPooled returns a zero-filled tensor indistinguishable from New.
//   - Recycle hands a tensor back to the arena. The caller must own the
//     tensor outright: no other live reference to it or its Data may remain,
//     and it must not be used afterwards. Recycling the same tensor twice is
//     a bug (two future GetPooled calls would alias the same storage).
//   - Tensors that are never recycled are simply collected by the GC; the
//     arena holds no reference to handed-out tensors, so "leaking" one is
//     always safe.
//
// Arena tensors are keyed by element count, not shape: a recycled (4, 8)
// tensor may come back as (32) or (8, 4). Shapes are rewritten on Get.
var arena sync.Map // int (element count) -> *sync.Pool of *Tensor

func arenaFor(n int) *sync.Pool {
	if p, ok := arena.Load(n); ok {
		return p.(*sync.Pool)
	}
	p, _ := arena.LoadOrStore(n, &sync.Pool{})
	return p.(*sync.Pool)
}

// GetPooled returns a zero-filled tensor of the given shape, reusing arena
// storage when a tensor of the same element count has been Recycled.
func GetPooled(shape ...int) *Tensor {
	t := GetPooledDirty(shape...)
	clear(t.Data)
	return t
}

// GetPooledDirty is GetPooled without the zero fill: the contents are
// unspecified (stale data from a previous owner on an arena hit). Use it
// only when every element is about to be overwritten — destinations of
// overwriting Into kernels, full copies, full fills — to skip a redundant
// memory pass on the hot path.
func GetPooledDirty(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if v := arenaFor(n).Get(); v != nil {
		t := v.(*Tensor)
		t.Shape = append(t.Shape[:0], shape...)
		return t
	}
	return New(shape...)
}

// Recycle returns tensors to the arena for reuse by GetPooled. See the
// package lifecycle rules: the caller must hold the only live reference, and
// the tensors must not be touched afterwards. Nil entries are ignored.
func Recycle(ts ...*Tensor) {
	for _, t := range ts {
		if t == nil {
			continue
		}
		arenaFor(len(t.Data)).Put(t)
	}
}
