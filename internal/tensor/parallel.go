package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Parallel execution substrate: a persistent pool of worker goroutines that
// large kernels (MatMul and friends) shard row-panels across. The pool is
// lazily started at first use and sized to runtime.NumCPU(); workers block on
// an unbuffered-receive loop and cost nothing while idle.
//
// Two properties the rest of the repository depends on:
//
//   - Determinism: work is sharded so that every output element is produced
//     by exactly one task using the same arithmetic order as the serial
//     kernel, so parallel results are bitwise identical to serial ones.
//   - No deadlock under nesting: when the queue is full (e.g. parallel
//     worker stepping in the engine issuing parallel MatMuls), the caller
//     runs the chunk itself instead of blocking on submission, so progress
//     never depends on a free pool worker.

// parDegree is the configured parallel degree; 0 means runtime.NumCPU().
var parDegree atomic.Int64

// SetParallelism sets the degree of intra-op parallelism: 0 restores the
// default (NumCPU), 1 forces every kernel onto the calling goroutine (the
// serial baseline), n > 1 allows up to n-way sharding. It returns the
// previous setting. Safe to call concurrently; kernels already in flight
// finish under the old degree.
func SetParallelism(n int) int {
	if n < 0 {
		n = 0
	}
	return int(parDegree.Swap(int64(n)))
}

// Parallelism reports the effective parallel degree kernels run at.
func Parallelism() int {
	if n := int(parDegree.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

type task struct {
	f      func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

var (
	poolOnce sync.Once
	tasks    chan task
)

func ensurePool() {
	poolOnce.Do(func() {
		n := runtime.NumCPU()
		tasks = make(chan task, 4*n)
		for i := 0; i < n; i++ {
			go func() {
				for t := range tasks {
					t.f(t.lo, t.hi)
					t.wg.Done()
				}
			}()
		}
	})
}

// parallelFor splits [0, n) into one contiguous chunk per available worker
// (at least grain iterations each) and runs f over the chunks concurrently.
// The caller always executes at least one chunk itself and never blocks
// handing out work, so nested parallelFor calls cannot deadlock.
func parallelFor(n, grain int, f func(lo, hi int)) {
	p := Parallelism()
	if grain < 1 {
		grain = 1
	}
	if p <= 1 || n <= grain {
		f(0, n)
		return
	}
	chunks := (n + grain - 1) / grain
	if chunks > p {
		chunks = p
	}
	ensurePool()
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	lo := 0
	for lo < n {
		hi := lo + size
		if hi > n {
			hi = n
		}
		if hi == n {
			// Final chunk runs on the caller.
			f(lo, hi)
			break
		}
		wg.Add(1)
		select {
		case tasks <- task{f: f, lo: lo, hi: hi, wg: &wg}:
		default:
			// Queue full (nested parallelism): do it ourselves.
			f(lo, hi)
			wg.Done()
		}
		lo = hi
	}
	wg.Wait()
}

// matMulGrainFlops is the approximate flop count below which sharding a
// MatMul costs more than it saves; panels are sized so each task does at
// least this much work. The model-zoo MLP matmuls (batch 16, widths ≤ 72)
// stay below it and run serially, which is the right call at that size.
const matMulGrainFlops = 64 * 1024

// matMulInto is the shared kernel of MatMul and MatMulInto: out = a@b with
// row panels of out sharded across the pool. Each output row is produced
// start-to-finish by one task with the serial loop's arithmetic order, so the
// result is bitwise identical at any parallel degree.
func matMulInto(out, a, b *Tensor) {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	grain := 1
	if rowFlops := k * n; rowFlops > 0 {
		grain = (matMulGrainFlops + rowFlops - 1) / rowFlops
	}
	if Parallelism() <= 1 || m <= grain {
		// Skip parallelFor entirely: the direct call keeps the serial path
		// allocation-free (no chunk closure).
		matMulRows(out, a, b, 0, m)
		return
	}
	parallelFor(m, grain, func(lo, hi int) { matMulRows(out, a, b, lo, hi) })
}

func matMulRows(out, a, b *Tensor, lo, hi int) {
	k, n := a.Shape[1], b.Shape[1]
	// Local slice headers: with out passed in (rather than freshly
	// allocated) the compiler cannot prove non-aliasing and would otherwise
	// reload the headers through the Tensor pointers on every iteration,
	// costing ~40% on model-sized products.
	ad, bd, od := a.Data, b.Data, out.Data
	for i := lo; i < hi; i++ {
		arow := ad[i*k : (i+1)*k]
		orow := od[i*n : (i+1)*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := bd[p*n : (p+1)*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
}
