// Package tensor implements a small dense float64 tensor library used as the
// numeric substrate for the autograd engine and the neural-network layers.
//
// Tensors are row-major, at most rank 2 in practice (the model zoo uses
// vectors and matrices), but the type supports arbitrary rank. All operations
// allocate their result unless the method name ends in "Into" or is
// documented as in-place.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float64 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", s))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v does not match data length %d", shape, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Randn returns a tensor with entries drawn from N(0, std²) using rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Full returns a tensor filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Rows returns the first dimension (1 for scalars/vectors of rank<1).
func (t *Tensor) Rows() int {
	if len(t.Shape) == 0 {
		return 1
	}
	return t.Shape[0]
}

// Cols returns the second dimension, or 1 if rank < 2.
func (t *Tensor) Cols() int {
	if len(t.Shape) < 2 {
		return 1
	}
	return t.Shape[1]
}

// At returns the element at a rank-2 index.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols()+j] }

// Set assigns the element at a rank-2 index.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols()+j] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
}

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	assertSameShape("Add", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	assertSameShape("Sub", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product.
func Mul(a, b *Tensor) *Tensor {
	assertSameShape("Mul", a, b)
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale returns a*s.
func Scale(a *Tensor, s float64) *Tensor {
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * s
	}
	return out
}

// AddInPlace adds b into a.
func (t *Tensor) AddInPlace(b *Tensor) {
	assertSameShape("AddInPlace", t, b)
	for i := range t.Data {
		t.Data[i] += b.Data[i]
	}
}

// AXPY performs t += s*b in place.
func (t *Tensor) AXPY(s float64, b *Tensor) {
	assertSameShape("AXPY", t, b)
	for i := range t.Data {
		t.Data[i] += s * b.Data[i]
	}
}

// ScaleInPlace multiplies t by s in place.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// MatMul returns a@b for rank-2 tensors.
func MatMul(a, b *Tensor) *Tensor {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	m, k, k2, n := a.Shape[0], a.Shape[1], b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires rank-2 operand")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Dot returns the inner product of two tensors viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	return math.Sqrt(Dot(t, t))
}

// Apply returns f applied elementwise.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	out := New(a.Shape...)
	for i, v := range a.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ArgMaxRow returns the index of the maximum element of row i (rank-2).
func (t *Tensor) ArgMaxRow(i int) int {
	c := t.Cols()
	row := t.Data[i*c : (i+1)*c]
	best, bv := 0, row[0]
	for j, v := range row {
		if v > bv {
			best, bv = j, v
		}
	}
	return best
}

// AddRowVector adds vector v (length = cols) to every row of a rank-2 tensor.
func AddRowVector(a, v *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	if v.Len() != n {
		panic(fmt.Sprintf("tensor: AddRowVector length %d vs cols %d", v.Len(), n))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[i*n+j] = a.Data[i*n+j] + v.Data[j]
		}
	}
	return out
}

// SumRows returns the column-wise sums of a rank-2 tensor as a vector.
func SumRows(a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	out := New(n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j] += a.Data[i*n+j]
		}
	}
	return out
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Equal reports exact equality of shape and data.
func Equal(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether all elements differ by at most tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
