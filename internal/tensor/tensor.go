// Package tensor implements a small dense float64 tensor library used as the
// numeric substrate for the autograd engine and the neural-network layers.
//
// Tensors are row-major, at most rank 2 in practice (the model zoo uses
// vectors and matrices), but the type supports arbitrary rank. All operations
// allocate their result unless the method name ends in "Into" or is
// documented as in-place; "Into" variants write into a caller-owned
// destination so hot loops can reuse buffers (see GetPooled/Recycle for the
// size-keyed arena they pair with). Large MatMuls shard row panels across a
// persistent worker pool sized to runtime.NumCPU() (see SetParallelism);
// sharding never changes arithmetic order, so parallel results are bitwise
// identical to serial ones.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float64 array with an explicit shape.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero-filled tensor of the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s < 0 {
			panic(fmt.Sprintf("tensor: negative dimension %d", s))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: shape %v does not match data length %d", shape, len(data)))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Randn returns a tensor with entries drawn from N(0, std²) using rng.
func Randn(rng *rand.Rand, std float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * std
	}
	return t
}

// Full returns a tensor filled with v.
func Full(v float64, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Rank returns the number of dimensions.
func (t *Tensor) Rank() int { return len(t.Shape) }

// Rows returns the first dimension (1 for scalars/vectors of rank<1).
func (t *Tensor) Rows() int {
	if len(t.Shape) == 0 {
		return 1
	}
	return t.Shape[0]
}

// Cols returns the second dimension, or 1 if rank < 2.
func (t *Tensor) Cols() int {
	if len(t.Shape) < 2 {
		return 1
	}
	return t.Shape[1]
}

// At returns the element at a rank-2 index.
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.Cols()+j] }

// Set assigns the element at a rank-2 index.
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.Cols()+j] = v }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i := range t.Shape {
		if t.Shape[i] != o.Shape[i] {
			return false
		}
	}
	return true
}

func (t *Tensor) String() string {
	return fmt.Sprintf("Tensor%v%v", t.Shape, t.Data)
}

func assertSameShape(op string, a, b *Tensor) {
	if !a.SameShape(b) {
		panic(fmt.Sprintf("tensor: %s shape mismatch %v vs %v", op, a.Shape, b.Shape))
	}
}

func assertSameLen(op string, dst, a *Tensor) {
	if len(dst.Data) != len(a.Data) {
		panic(fmt.Sprintf("tensor: %s dst length %d, want %d", op, len(dst.Data), len(a.Data)))
	}
}

// Add returns a + b elementwise.
func Add(a, b *Tensor) *Tensor {
	return AddInto(New(a.Shape...), a, b)
}

// AddInto writes a + b elementwise into dst (same element count as a and b).
// dst may alias either operand.
func AddInto(dst, a, b *Tensor) *Tensor {
	assertSameShape("AddInto", a, b)
	assertSameLen("AddInto", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
	return dst
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	return SubInto(New(a.Shape...), a, b)
}

// SubInto writes a - b elementwise into dst (same element count as a and b).
// dst may alias either operand.
func SubInto(dst, a, b *Tensor) *Tensor {
	assertSameShape("SubInto", a, b)
	assertSameLen("SubInto", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
	return dst
}

// Mul returns the elementwise (Hadamard) product.
func Mul(a, b *Tensor) *Tensor {
	return MulInto(New(a.Shape...), a, b)
}

// MulInto writes the elementwise product a*b into dst (same element count).
// dst may alias either operand.
func MulInto(dst, a, b *Tensor) *Tensor {
	assertSameShape("MulInto", a, b)
	assertSameLen("MulInto", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * b.Data[i]
	}
	return dst
}

// Scale returns a*s.
func Scale(a *Tensor, s float64) *Tensor {
	return ScaleInto(New(a.Shape...), a, s)
}

// ScaleInto writes a*s into dst (same element count). dst may alias a.
func ScaleInto(dst, a *Tensor, s float64) *Tensor {
	assertSameLen("ScaleInto", dst, a)
	for i := range a.Data {
		dst.Data[i] = a.Data[i] * s
	}
	return dst
}

// AddInPlace adds b into a.
func (t *Tensor) AddInPlace(b *Tensor) {
	assertSameShape("AddInPlace", t, b)
	for i := range t.Data {
		t.Data[i] += b.Data[i]
	}
}

// AXPY performs t += s*b in place.
func (t *Tensor) AXPY(s float64, b *Tensor) {
	assertSameShape("AXPY", t, b)
	for i := range t.Data {
		t.Data[i] += s * b.Data[i]
	}
}

// ScaleInPlace multiplies t by s in place.
func (t *Tensor) ScaleInPlace(s float64) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

func checkMatMulShapes(a, b *Tensor) (m, k, n int) {
	if a.Rank() != 2 || b.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	m, k, n = a.Shape[0], a.Shape[1], b.Shape[1]
	if k != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, b.Shape[0]))
	}
	return m, k, n
}

// MatMul returns a@b for rank-2 tensors. Large products are sharded across
// the package worker pool (see MatMulInto for the reuse variant); results
// are bitwise identical at any parallel degree.
func MatMul(a, b *Tensor) *Tensor {
	m, _, n := checkMatMulShapes(a, b)
	out := New(m, n)
	matMulInto(out, a, b)
	return out
}

// MatMulInto computes a@b into dst, which must have shape (a rows, b cols)
// and must not alias a or b. dst is overwritten, not accumulated into.
func MatMulInto(dst, a, b *Tensor) *Tensor {
	m, _, n := checkMatMulShapes(a, b)
	if dst.Rank() != 2 || dst.Shape[0] != m || dst.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want [%d %d]", dst.Shape, m, n))
	}
	dst.Zero()
	matMulInto(dst, a, b)
	return dst
}

// Transpose returns the transpose of a rank-2 tensor.
func Transpose(a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: Transpose requires rank-2 operand")
	}
	out := New(a.Shape[1], a.Shape[0])
	transposeInto(out, a)
	return out
}

// TransposeInto writes the transpose of rank-2 a into dst, which must have
// shape (a cols, a rows) and must not alias a.
func TransposeInto(dst, a *Tensor) *Tensor {
	if a.Rank() != 2 {
		panic("tensor: TransposeInto requires rank-2 operand")
	}
	if dst.Rank() != 2 || dst.Shape[0] != a.Shape[1] || dst.Shape[1] != a.Shape[0] {
		panic(fmt.Sprintf("tensor: TransposeInto dst shape %v for operand %v", dst.Shape, a.Shape))
	}
	transposeInto(dst, a)
	return dst
}

func transposeInto(dst, a *Tensor) {
	m, n := a.Shape[0], a.Shape[1]
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst.Data[j*m+i] = a.Data[i*n+j]
		}
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float64 {
	s := 0.0
	for _, v := range t.Data {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// Dot returns the inner product of two tensors viewed as flat vectors.
func Dot(a, b *Tensor) float64 {
	if len(a.Data) != len(b.Data) {
		panic("tensor: Dot length mismatch")
	}
	s := 0.0
	for i := range a.Data {
		s += a.Data[i] * b.Data[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of the tensor viewed as a flat vector.
func (t *Tensor) Norm2() float64 {
	return math.Sqrt(Dot(t, t))
}

// Apply returns f applied elementwise.
func Apply(a *Tensor, f func(float64) float64) *Tensor {
	return ApplyInto(New(a.Shape...), a, f)
}

// ApplyInto writes f applied elementwise over a into dst (same element
// count). dst may alias a: the transform is purely elementwise.
func ApplyInto(dst, a *Tensor, f func(float64) float64) *Tensor {
	assertSameLen("ApplyInto", dst, a)
	for i, v := range a.Data {
		dst.Data[i] = f(v)
	}
	return dst
}

// ArgMaxRow returns the index of the maximum element of row i (rank-2).
func (t *Tensor) ArgMaxRow(i int) int {
	c := t.Cols()
	row := t.Data[i*c : (i+1)*c]
	best, bv := 0, row[0]
	for j, v := range row {
		if v > bv {
			best, bv = j, v
		}
	}
	return best
}

// AddRowVector adds vector v (length = cols) to every row of a rank-2 tensor.
func AddRowVector(a, v *Tensor) *Tensor {
	return AddRowVectorInto(New(a.Shape...), a, v)
}

// AddRowVectorInto writes a + v (v broadcast over rows) into dst (same
// element count as a). dst may alias a.
func AddRowVectorInto(dst, a, v *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	if v.Len() != n {
		panic(fmt.Sprintf("tensor: AddRowVector length %d vs cols %d", v.Len(), n))
	}
	assertSameLen("AddRowVectorInto", dst, a)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst.Data[i*n+j] = a.Data[i*n+j] + v.Data[j]
		}
	}
	return dst
}

// SumRows returns the column-wise sums of a rank-2 tensor as a vector.
func SumRows(a *Tensor) *Tensor {
	return SumRowsInto(New(a.Shape[1]), a)
}

// SumRowsInto writes the column-wise sums of rank-2 a into vector dst
// (length = a cols), overwriting it. dst must not alias a.
func SumRowsInto(dst, a *Tensor) *Tensor {
	m, n := a.Shape[0], a.Shape[1]
	if dst.Len() != n {
		panic(fmt.Sprintf("tensor: SumRowsInto dst length %d, want %d", dst.Len(), n))
	}
	dst.Zero()
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			dst.Data[j] += a.Data[i*n+j]
		}
	}
	return dst
}

// MaxAbs returns the maximum absolute element value (0 for empty tensors).
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}

// Equal reports exact equality of shape and data.
func Equal(a, b *Tensor) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			return false
		}
	}
	return true
}

// AllClose reports whether all elements differ by at most tol.
func AllClose(a, b *Tensor, tol float64) bool {
	if !a.SameShape(b) {
		return false
	}
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}
