package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroFilled(t *testing.T) {
	a := New(2, 3)
	if a.Len() != 6 {
		t.Fatalf("Len = %d, want 6", a.Len())
	}
	for i, v := range a.Data {
		if v != 0 {
			t.Fatalf("Data[%d] = %v, want 0", i, v)
		}
	}
}

func TestFromSliceShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}

func TestAtSet(t *testing.T) {
	a := New(2, 3)
	a.Set(1, 2, 7.5)
	if got := a.At(1, 2); got != 7.5 {
		t.Fatalf("At(1,2) = %v, want 7.5", got)
	}
	if a.Data[5] != 7.5 {
		t.Fatalf("row-major layout wrong: %v", a.Data)
	}
}

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{5, 6, 7, 8}, 2, 2)
	if got := Add(a, b).Data; got[0] != 6 || got[3] != 12 {
		t.Errorf("Add wrong: %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 4 || got[3] != 4 {
		t.Errorf("Sub wrong: %v", got)
	}
	if got := Mul(a, b).Data; got[0] != 5 || got[3] != 32 {
		t.Errorf("Mul wrong: %v", got)
	}
}

func TestAddShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Add(New(2, 2), New(2, 3))
}

func TestMatMul(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if got.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", got.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := Randn(rng, 1, 4, 4)
	id := New(4, 4)
	for i := 0; i < 4; i++ {
		id.Set(i, i, 1)
	}
	if !AllClose(MatMul(a, id), a, 1e-12) {
		t.Fatal("A @ I != A")
	}
	if !AllClose(MatMul(id, a), a, 1e-12) {
		t.Fatal("I @ A != A")
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Shape[0] != 3 || at.Shape[1] != 2 {
		t.Fatalf("shape = %v", at.Shape)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %v", at.Data)
	}
}

func TestTransposeInvolution(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(6), 1+rng.Intn(6)
		a := Randn(rng, 1, m, n)
		return Equal(Transpose(Transpose(a)), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMatMulTransposeProperty(t *testing.T) {
	// (AB)^T == B^T A^T
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		lhs := Transpose(MatMul(a, b))
		rhs := MatMul(Transpose(b), Transpose(a))
		return AllClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScaleAndAXPY(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := FromSlice([]float64{10, 20}, 2)
	c := Scale(a, 3)
	if c.Data[1] != 6 {
		t.Errorf("Scale wrong: %v", c.Data)
	}
	a.AXPY(0.5, b)
	if a.Data[0] != 6 || a.Data[1] != 12 {
		t.Errorf("AXPY wrong: %v", a.Data)
	}
}

func TestSumMeanDotNorm(t *testing.T) {
	a := FromSlice([]float64{3, 4}, 2)
	if a.Sum() != 7 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if a.Mean() != 3.5 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if Dot(a, a) != 25 {
		t.Errorf("Dot = %v", Dot(a, a))
	}
	if a.Norm2() != 5 {
		t.Errorf("Norm2 = %v", a.Norm2())
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2}, 2)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestApply(t *testing.T) {
	a := FromSlice([]float64{-1, 4}, 2)
	b := Apply(a, math.Abs)
	if b.Data[0] != 1 || b.Data[1] != 4 {
		t.Errorf("Apply wrong: %v", b.Data)
	}
}

func TestArgMaxRow(t *testing.T) {
	a := FromSlice([]float64{1, 9, 3, 8, 2, 0}, 2, 3)
	if a.ArgMaxRow(0) != 1 {
		t.Errorf("ArgMaxRow(0) = %d", a.ArgMaxRow(0))
	}
	if a.ArgMaxRow(1) != 0 {
		t.Errorf("ArgMaxRow(1) = %d", a.ArgMaxRow(1))
	}
}

func TestAddRowVectorAndSumRows(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	v := FromSlice([]float64{10, 20}, 2)
	b := AddRowVector(a, v)
	if b.At(0, 0) != 11 || b.At(1, 1) != 24 {
		t.Errorf("AddRowVector wrong: %v", b.Data)
	}
	s := SumRows(a)
	if s.Data[0] != 4 || s.Data[1] != 6 {
		t.Errorf("SumRows wrong: %v", s.Data)
	}
}

func TestRandnDeterministic(t *testing.T) {
	a := Randn(rand.New(rand.NewSource(42)), 1, 3, 3)
	b := Randn(rand.New(rand.NewSource(42)), 1, 3, 3)
	if !Equal(a, b) {
		t.Fatal("Randn not deterministic for equal seeds")
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromSlice([]float64{-7, 3}, 2)
	if a.MaxAbs() != 7 {
		t.Errorf("MaxAbs = %v", a.MaxAbs())
	}
	if New(0).MaxAbs() != 0 {
		t.Error("MaxAbs of empty should be 0")
	}
}

func TestFullAndZero(t *testing.T) {
	a := Full(2.5, 3)
	if a.Data[2] != 2.5 {
		t.Errorf("Full wrong: %v", a.Data)
	}
	a.Zero()
	if a.Sum() != 0 {
		t.Errorf("Zero wrong: %v", a.Data)
	}
}

func TestMatMulDistributesOverAdd(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, k, n := 1+rng.Intn(4), 1+rng.Intn(4), 1+rng.Intn(4)
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		c := Randn(rng, 1, k, n)
		lhs := MatMul(a, Add(b, c))
		rhs := Add(MatMul(a, b), MatMul(a, c))
		return AllClose(lhs, rhs, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
