package tensor

import (
	"math/rand"
	"testing"
)

func benchMatMul(b *testing.B, n int) {
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, n, n)
	y := Randn(rng, 1, n, n)
	b.ReportAllocs()
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMul64(b *testing.B)   { benchMatMul(b, 64) }
func BenchmarkMatMul256(b *testing.B)  { benchMatMul(b, 256) }
func BenchmarkMatMul1024(b *testing.B) { benchMatMul(b, 1024) }

// BenchmarkMatMulSerial1024 pins the kernel to one goroutine for an in-tree
// measurement of the parallel speedup (compare with BenchmarkMatMul1024).
func BenchmarkMatMulSerial1024(b *testing.B) {
	prev := SetParallelism(1)
	defer SetParallelism(prev)
	benchMatMul(b, 1024)
}

// BenchmarkMatMulInto isolates the destination-reuse variant: zero steady-
// state allocations regardless of operand size.
func BenchmarkMatMulInto(b *testing.B) {
	const n = 256
	rng := rand.New(rand.NewSource(1))
	x := Randn(rng, 1, n, n)
	y := Randn(rng, 1, n, n)
	dst := New(n, n)
	b.ReportAllocs()
	b.SetBytes(int64(8 * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, x, y)
	}
}
