package tensor

import (
	"math/rand"
	"testing"
)

// serialMatMul is the reference kernel: the pre-parallel triple loop.
func serialMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.Data[i*k : (i+1)*k]
		orow := out.Data[i*n : (i+1)*n]
		for p := 0; p < k; p++ {
			av := arow[p]
			if av == 0 {
				continue
			}
			brow := b.Data[p*n : (p+1)*n]
			for j := 0; j < n; j++ {
				orow[j] += av * brow[j]
			}
		}
	}
	return out
}

func TestParallelMatMulBitwiseIdenticalToSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dims := range [][3]int{{1, 1, 1}, {3, 7, 5}, {16, 24, 40}, {97, 103, 89}, {256, 64, 128}} {
		a := Randn(rng, 1, dims[0], dims[1])
		b := Randn(rng, 1, dims[1], dims[2])
		want := serialMatMul(a, b)
		for _, par := range []int{1, 2, 4, 8} {
			prev := SetParallelism(par)
			got := MatMul(a, b)
			SetParallelism(prev)
			if !Equal(got, want) {
				t.Fatalf("MatMul %vx%v at parallelism %d differs from serial", a.Shape, b.Shape, par)
			}
		}
	}
}

func TestMatMulIntoMatchesMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := Randn(rng, 1, 33, 17)
	b := Randn(rng, 1, 17, 29)
	want := MatMul(a, b)
	dst := Full(99, 33, 29) // stale contents must be overwritten
	got := MatMulInto(dst, a, b)
	if got != dst {
		t.Fatal("MatMulInto did not return dst")
	}
	if !Equal(got, want) {
		t.Fatal("MatMulInto differs from MatMul")
	}
}

func TestTransposeIntoMatchesTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := Randn(rng, 1, 5, 9)
	want := Transpose(a)
	got := TransposeInto(Full(99, 9, 5), a)
	if !Equal(got, want) {
		t.Fatal("TransposeInto differs from Transpose")
	}
}

func TestApplyIntoAliasedDestination(t *testing.T) {
	a := FromSlice([]float64{-2, -1, 0, 1}, 2, 2)
	ApplyInto(a, a, func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	})
	want := []float64{0, 0, 0, 1}
	for i, v := range want {
		if a.Data[i] != v {
			t.Fatalf("aliased ApplyInto = %v, want %v", a.Data, want)
		}
	}
}

func TestIntoVariantsMatchAllocatingOnes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := Randn(rng, 1, 4, 6)
	b := Randn(rng, 1, 4, 6)
	v := Randn(rng, 1, 6)
	if !Equal(AddInto(New(4, 6), a, b), Add(a, b)) {
		t.Fatal("AddInto mismatch")
	}
	if !Equal(SubInto(New(4, 6), a, b), Sub(a, b)) {
		t.Fatal("SubInto mismatch")
	}
	if !Equal(MulInto(New(4, 6), a, b), Mul(a, b)) {
		t.Fatal("MulInto mismatch")
	}
	if !Equal(ScaleInto(New(4, 6), a, -1.5), Scale(a, -1.5)) {
		t.Fatal("ScaleInto mismatch")
	}
	if !Equal(AddRowVectorInto(New(4, 6), a, v), AddRowVector(a, v)) {
		t.Fatal("AddRowVectorInto mismatch")
	}
	if !Equal(SumRowsInto(Full(3, 6), a), SumRows(a)) {
		t.Fatal("SumRowsInto mismatch")
	}
}

func TestGetPooledReturnsZeroedTensor(t *testing.T) {
	dirty := GetPooled(3, 4)
	for i := range dirty.Data {
		dirty.Data[i] = float64(i + 1)
	}
	Recycle(dirty)
	// A pool hit of the same element count must come back zeroed with the
	// requested (possibly different) shape.
	got := GetPooled(4, 3)
	if got.Shape[0] != 4 || got.Shape[1] != 3 {
		t.Fatalf("pooled shape = %v, want [4 3]", got.Shape)
	}
	for i, v := range got.Data {
		if v != 0 {
			t.Fatalf("pooled tensor not zeroed at %d: %v", i, got.Data)
		}
	}
	if got.Len() != 12 {
		t.Fatalf("pooled len = %d", got.Len())
	}
}

func TestRecycleNilIsNoop(t *testing.T) {
	Recycle(nil, New(2), nil)
}

func TestSetParallelismRoundTrip(t *testing.T) {
	prev := SetParallelism(3)
	if got := Parallelism(); got != 3 {
		t.Fatalf("Parallelism() = %d, want 3", got)
	}
	if back := SetParallelism(prev); back != 3 {
		t.Fatalf("SetParallelism returned %d, want 3", back)
	}
}
