// Package theory provides an executable form of the paper's convergence
// analysis (Section IV): the matrix-form consensus iteration of Eq. (18),
// the D^k update matrices of Eq. (19), and empirical verifiers for
// Theorems 1-3. The evaluation figures show NetMax is fast; this package
// shows it is *correct* — the same claims the paper proves are checked
// numerically on strongly convex problems where x* is known in closed form.
package theory

import (
	"fmt"
	"math"
	"math/rand"

	"netmax/internal/linalg"
	"netmax/internal/policy"
)

// Quadratic is the scalar strongly convex test problem
// f(x) = (mu/2)(x-target)^2 per worker, whose joint optimum is the mean of
// the per-worker targets when workers reach consensus. Its gradient is
// mu*(x-target), which is mu-strongly convex with mu-Lipschitz gradient, so
// Assumption 1 holds with L = mu and any alpha <= 2/(mu+L) = 1/mu.
type Quadratic struct {
	Mu      float64
	Targets []float64 // per-worker optima (heterogeneous local data)
}

// NewQuadratic draws per-worker targets in [-spread, spread].
func NewQuadratic(m int, mu, spread float64, seed int64) *Quadratic {
	rng := rand.New(rand.NewSource(seed))
	t := make([]float64, m)
	for i := range t {
		t[i] = (rng.Float64()*2 - 1) * spread
	}
	return &Quadratic{Mu: mu, Targets: t}
}

// Optimum returns the consensus optimum x* = mean(targets): the minimizer
// of sum_i f_i(x).
func (q *Quadratic) Optimum() float64 {
	s := 0.0
	for _, t := range q.Targets {
		s += t
	}
	return s / float64(len(q.Targets))
}

// Grad returns worker i's stochastic gradient at x with additive noise of
// the given standard deviation (Assumption 1's bounded-variance noise).
func (q *Quadratic) Grad(i int, x, noiseStd float64, rng *rand.Rand) float64 {
	return q.Mu*(x-q.Targets[i]) + rng.NormFloat64()*noiseStd
}

// Iteration runs the paper's Eq. (17)/(18) update directly: at each global
// step one worker i (drawn with probability pg[i]) takes a gradient step
// and blends toward a neighbor m (drawn with probability P[i][m]).
type Iteration struct {
	Q        *Quadratic
	P        [][]float64
	Adj      [][]bool
	Alpha    float64
	Rho      float64
	NoiseStd float64
	// Pg is the global-step ownership distribution (Eq. 3); nil = uniform.
	Pg []float64

	X   []float64
	rng *rand.Rand
	k   int
}

// NewIteration initializes all workers at x0.
func NewIteration(q *Quadratic, p [][]float64, adj [][]bool, alpha, rho, noiseStd, x0 float64, seed int64) *Iteration {
	m := len(p)
	x := make([]float64, m)
	for i := range x {
		x[i] = x0
	}
	return &Iteration{Q: q, P: p, Adj: adj, Alpha: alpha, Rho: rho, NoiseStd: noiseStd, X: x, rng: rand.New(rand.NewSource(seed))}
}

// Step advances one global iteration step k (Eq. 17).
func (it *Iteration) Step() {
	m := len(it.X)
	i := it.sampleWorker()
	j := sampleRow(it.P[i], i, it.rng)
	// First update: local gradient.
	xi := it.X[i] - it.Alpha*it.Q.Grad(i, it.X[i], it.NoiseStd, it.rng)
	// Second update: consensus blend with gamma = (d_ij+d_ji)/(2 p_ij).
	if j != i && it.P[i][j] > 0 {
		d := 0.0
		if it.Adj[i][j] {
			d++
		}
		if it.Adj[j][i] {
			d++
		}
		gamma := d / (2 * it.P[i][j])
		xi -= it.Alpha * it.Rho * gamma * (xi - it.X[j])
	}
	it.X[i] = xi
	it.k++
	_ = m
}

func (it *Iteration) sampleWorker() int {
	if it.Pg == nil {
		return it.rng.Intn(len(it.X))
	}
	r := it.rng.Float64()
	acc := 0.0
	for i, p := range it.Pg {
		acc += p
		if r < acc {
			return i
		}
	}
	return len(it.X) - 1
}

// Deviation returns ||x^k - x* 1||^2, the quantity bounded by Theorem 1.
func (it *Iteration) Deviation() float64 {
	opt := it.Q.Optimum()
	s := 0.0
	for _, x := range it.X {
		s += (x - opt) * (x - opt)
	}
	return s
}

// ConsensusGap returns max_i,j |x_i - x_j|: zero at consensus.
func (it *Iteration) ConsensusGap() float64 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range it.X {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return hi - lo
}

func sampleRow(row []float64, self int, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for j, p := range row {
		acc += p
		if r < acc {
			return j
		}
	}
	return self
}

// TheoremOneBound evaluates the geometric-contraction envelope of Eq. (23):
// rate^k * ||x0 - x* 1||^2 + alpha^2 sigma^2 rate/(1-rate).
//
// A note on the rate: the paper states the bound with rate = lambda2(Y_P).
// Its derivation (Eq. 39) replaces the quadratic form z'Y z by lambda2 z'z,
// which is exact only for z orthogonal to the all-ones vector; the mean
// component instead contracts through the strong-convexity factor
// 1 - 2*alpha*mu*L*p_min/(mu+L) kept in Eq. 46 and then dropped. The
// rigorous envelope for the full deviation therefore uses
// rate = max(lambda2, 1 - 2 alpha mu L p_min/(mu+L)); the lambda2-only form
// governs the consensus (perpendicular) component, which
// VerifyConsensusContraction checks separately.
func TheoremOneBound(rate, initialDeviation, alpha, sigma float64, k int) float64 {
	return math.Pow(rate, float64(k))*initialDeviation + alpha*alpha*sigma*sigma*rate/(1-rate)
}

// ContractionRate returns the rigorous per-global-step contraction factor
// for a policy with second eigenvalue lambda2 on a mu-strongly convex
// problem with L-Lipschitz gradients and minimum global-step probability
// pMin (see TheoremOneBound's note).
func ContractionRate(lambda2, alpha, mu, l, pMin float64) float64 {
	sc := 1 - 2*alpha*mu*l*pMin/(mu+l)
	if lambda2 > sc {
		return lambda2
	}
	return sc
}

// VerifyTheorem1 runs the Eq. (18) iteration on a shared-optimum strongly
// convex problem (the setting of the paper's proof, whose Eq. 42 evaluates
// local gradients at the joint optimum) and checks that the mean squared
// deviation over trials stays within slack x the Theorem 1 envelope at
// every sampled checkpoint. It returns the measured and bound series.
func VerifyTheorem1(p *policy.Policy, adj [][]bool, alpha, noiseStd float64, steps, trials int, slack float64, seed int64) (measured, bound []float64, err error) {
	m := len(p.P)
	const checkEvery = 50
	nChecks := steps/checkEvery + 1
	measured = make([]float64, nChecks)
	bound = make([]float64, nChecks)

	// Shared optimum at 0: every worker's loss is (mu/2) x^2.
	q := &Quadratic{Mu: 1.0, Targets: make([]float64, m)}
	x0 := 3.0
	init := float64(m) * x0 * x0
	rate := ContractionRate(p.Lambda2, alpha, q.Mu, q.Mu, 1/float64(m))
	for c := 0; c < nChecks; c++ {
		bound[c] = TheoremOneBound(rate, init, alpha, noiseStd, c*checkEvery)
	}
	for trial := 0; trial < trials; trial++ {
		it := NewIteration(q, p.P, adj, alpha, p.Rho, noiseStd, x0, seed+int64(trial)*101)
		for s := 0; s <= steps; s++ {
			if s%checkEvery == 0 {
				measured[s/checkEvery] += it.Deviation() / float64(trials)
			}
			if s < steps {
				it.Step()
			}
		}
	}
	for c := range measured {
		if measured[c] > slack*bound[c]+1e-9 {
			return measured, bound, fmt.Errorf("theory: deviation %v exceeds %vx bound %v at step %d",
				measured[c], slack, bound[c], c*checkEvery)
		}
	}
	return measured, bound, nil
}

// VerifyConsensusContraction checks the consensus half of Theorem 1: with
// no gradient noise, the disagreement x - mean(x) must contract
// geometrically, within slack of the rigorous envelope rate^k where rate is
// ContractionRate (the mean component leaks back into the consensus
// subspace each step, so the pure lambda2^k envelope is attainable only
// asymptotically; see TheoremOneBound's note).
func VerifyConsensusContraction(p *policy.Policy, adj [][]bool, alpha float64, steps, trials int, slack float64, seed int64) error {
	m := len(p.P)
	q := &Quadratic{Mu: 1.0, Targets: make([]float64, m)}
	rate := ContractionRate(p.Lambda2, alpha, q.Mu, q.Mu, 1/float64(m))
	const checkEvery = 100
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < trials; trial++ {
		it := NewIteration(q, p.P, adj, alpha, p.Rho, 0, 0, seed+int64(trial)*107)
		// Random disagreement around zero mean.
		for i := range it.X {
			it.X[i] = rng.NormFloat64()
		}
		init := consensusSq(it.X)
		for s := 1; s <= steps; s++ {
			it.Step()
			if s%checkEvery == 0 {
				envelope := math.Pow(rate, float64(s)) * init * slack
				// Floor the envelope: rounding noise keeps a tiny residual.
				if envelope < 1e-10 {
					envelope = 1e-10
				}
				if got := consensusSq(it.X); got > envelope {
					return fmt.Errorf("theory: consensus residual %v exceeds envelope %v at step %d", got, envelope, s)
				}
			}
		}
	}
	return nil
}

func consensusSq(x []float64) float64 {
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	s := 0.0
	for _, v := range x {
		s += (v - mean) * (v - mean)
	}
	return s
}

// SpectralGap returns 1 - lambda2(Y_P): the consensus speed of a policy on
// the given timing landscape.
func SpectralGap(p [][]float64, times [][]float64, adj [][]bool, alpha, rho float64) (float64, error) {
	y := policy.BuildY(p, times, adj, alpha, rho)
	l2, err := linalg.SecondLargestEigenvalue(y)
	if err != nil {
		return 0, err
	}
	return 1 - l2, nil
}

// ConvergenceRateCheck verifies the O(1/sqrt(k)) ergodic rate of Theorem 3:
// running with alpha = c/sqrt(k) for increasing k, the averaged suboptimality
// sum f(x^l)-f(x*) over k must scale like 1/sqrt(k). Returns the measured
// suboptimality at each k.
func ConvergenceRateCheck(p *policy.Policy, adj [][]bool, ks []int, c float64, seed int64) []float64 {
	m := len(p.P)
	q := NewQuadratic(m, 1.0, 1.0, seed)
	opt := q.Optimum()
	f := func(x float64) float64 {
		s := 0.0
		for _, t := range q.Targets {
			s += 0.5 * (x - t) * (x - t)
		}
		return s
	}
	fstar := f(opt)
	out := make([]float64, len(ks))
	for idx, k := range ks {
		alpha := c / math.Sqrt(float64(k))
		it := NewIteration(q, p.P, adj, alpha, p.Rho, 0.1, 3.0, seed+int64(idx))
		sum := 0.0
		for s := 0; s < k; s++ {
			it.Step()
			mean := 0.0
			for _, x := range it.X {
				mean += x
			}
			mean /= float64(m)
			sum += f(mean) - fstar
		}
		out[idx] = sum / float64(k)
	}
	return out
}
