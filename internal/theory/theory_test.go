package theory

import (
	"math"
	"math/rand"
	"testing"

	"netmax/internal/policy"
	"netmax/internal/simnet"
)

func testPolicy(t *testing.T, m int, seed int64) (*policy.Policy, [][]bool, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	times := make([][]float64, m)
	for i := range times {
		times[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			v := 1 + rng.Float64()*9
			times[i][j], times[j][i] = v, v
		}
	}
	adj := simnet.FullyConnected(m)
	pol, err := policy.Generate(policy.Input{Times: times, Adj: adj, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return pol, adj, times
}

func TestQuadraticOptimum(t *testing.T) {
	q := &Quadratic{Mu: 1, Targets: []float64{1, 2, 3}}
	if q.Optimum() != 2 {
		t.Fatalf("optimum = %v", q.Optimum())
	}
}

func TestQuadraticGradZeroAtTargetNoNoise(t *testing.T) {
	q := &Quadratic{Mu: 2, Targets: []float64{5}}
	rng := rand.New(rand.NewSource(1))
	if g := q.Grad(0, 5, 0, rng); g != 0 {
		t.Fatalf("grad at target = %v", g)
	}
	if g := q.Grad(0, 6, 0, rng); g != 2 {
		t.Fatalf("grad = %v, want mu*(x-t) = 2", g)
	}
}

func TestIterationReachesConsensusNoiseless(t *testing.T) {
	// Theorem 1 with sigma = 0: the deviation contracts to zero, meaning
	// both consensus and optimality.
	pol, adj, _ := testPolicy(t, 4, 1)
	q := NewQuadratic(4, 1.0, 1.0, 2)
	it := NewIteration(q, pol.P, adj, 0.1, pol.Rho, 0, 3.0, 3)
	initial := it.Deviation()
	for s := 0; s < 20000; s++ {
		it.Step()
	}
	// Eq. (1) is a quadratic-penalty consensus formulation: with
	// heterogeneous local optima a residual disagreement proportional to
	// the gradient spread over the coupling strength persists, so we check
	// contraction to a small neighborhood rather than exact consensus.
	if it.Deviation() > initial*1e-2 {
		t.Fatalf("deviation %v did not contract from %v", it.Deviation(), initial)
	}
	if it.ConsensusGap() > 0.5 {
		t.Fatalf("consensus gap = %v", it.ConsensusGap())
	}
	// All workers near the joint optimum, not their local targets (the
	// targets are spread over [-1, 1]).
	opt := q.Optimum()
	for i, x := range it.X {
		if math.Abs(x-opt) > 0.3 {
			t.Fatalf("worker %d at %v, optimum %v", i, x, opt)
		}
	}
}

func TestIterationNoiseBall(t *testing.T) {
	// With noise, the deviation settles into a ball whose size shrinks
	// with alpha (the alpha^2 sigma^2 term of Eq. 23).
	pol, adj, _ := testPolicy(t, 4, 5)
	q := NewQuadratic(4, 1.0, 0.5, 6)
	settle := func(alpha float64) float64 {
		it := NewIteration(q, pol.P, adj, alpha, pol.Rho, 1.0, 2.0, 7)
		for s := 0; s < 30000; s++ {
			it.Step()
		}
		// Average the tail.
		sum := 0.0
		for s := 0; s < 5000; s++ {
			it.Step()
			sum += it.Deviation()
		}
		return sum / 5000
	}
	big := settle(0.2)
	small := settle(0.02)
	if small >= big {
		t.Fatalf("noise ball did not shrink with alpha: %v (a=0.02) vs %v (a=0.2)", small, big)
	}
}

func TestTheoremOneBoundFormula(t *testing.T) {
	// k=0: bound = initial + noise term.
	b := TheoremOneBound(0.5, 4.0, 0.1, 1.0, 0)
	want := 4.0 + 0.01*0.5/0.5
	if math.Abs(b-want) > 1e-12 {
		t.Fatalf("bound = %v, want %v", b, want)
	}
	// Large k: bound approaches the noise floor.
	b = TheoremOneBound(0.5, 4.0, 0.1, 1.0, 1000)
	if math.Abs(b-0.01) > 1e-9 {
		t.Fatalf("asymptotic bound = %v, want 0.01", b)
	}
}

func TestContractionRate(t *testing.T) {
	// Strong-convexity factor dominates for small alpha.
	r := ContractionRate(0.5, 0.01, 1, 1, 0.25)
	want := 1 - 2*0.01*0.5*0.25
	if math.Abs(r-want) > 1e-12 {
		t.Fatalf("rate = %v, want %v", r, want)
	}
	// lambda2 dominates when it is larger.
	if got := ContractionRate(0.999, 0.5, 1, 1, 0.25); got != 0.999 {
		t.Fatalf("rate = %v, want lambda2", got)
	}
}

func TestVerifyConsensusContraction(t *testing.T) {
	pol, adj, _ := testPolicy(t, 4, 33)
	if err := VerifyConsensusContraction(pol, adj, 0.1, 1500, 4, 50, 35); err != nil {
		t.Fatalf("consensus contraction violated: %v", err)
	}
}

func TestVerifyTheorem1Holds(t *testing.T) {
	pol, adj, _ := testPolicy(t, 4, 9)
	measured, bound, err := VerifyTheorem1(pol, adj, 0.1, 0.1, 2000, 8, 3.0, 11)
	if err != nil {
		t.Fatalf("Theorem 1 violated: %v", err)
	}
	if len(measured) != len(bound) || len(measured) == 0 {
		t.Fatal("series missing")
	}
	// The measured deviation should have contracted substantially.
	if measured[len(measured)-1] > measured[0]*0.3 {
		t.Fatalf("deviation did not contract: %v -> %v", measured[0], measured[len(measured)-1])
	}
}

func TestSpectralGapPositiveForGeneratedPolicies(t *testing.T) {
	pol, adj, times := testPolicy(t, 5, 13)
	gap, err := SpectralGap(pol.P, times, adj, 0.1, pol.Rho)
	if err != nil {
		t.Fatal(err)
	}
	if gap <= 0 || gap >= 1 {
		t.Fatalf("spectral gap = %v, want in (0,1)", gap)
	}
	// Consistent with the policy's own lambda2.
	if math.Abs((1-gap)-pol.Lambda2) > 1e-6 {
		t.Fatalf("gap disagrees with policy lambda2: %v vs %v", 1-gap, pol.Lambda2)
	}
}

func TestConvergenceRateScalesLikeInverseSqrtK(t *testing.T) {
	// Theorem 3: ergodic suboptimality ~ O(1/sqrt(k)). Quadrupling k should
	// roughly halve it; allow generous slack for stochasticity.
	pol, adj, _ := testPolicy(t, 4, 15)
	ks := []int{2000, 32000}
	sub := ConvergenceRateCheck(pol, adj, ks, 1.0, 17)
	if sub[1] >= sub[0] {
		t.Fatalf("suboptimality did not decrease with k: %v", sub)
	}
	// 16x more steps => expect ~4x reduction; demand at least 2x.
	if sub[0]/sub[1] < 2 {
		t.Fatalf("rate too slow: %v -> %v (ratio %v)", sub[0], sub[1], sub[0]/sub[1])
	}
}

func TestDynamicNetworkTheorem2(t *testing.T) {
	// Theorem 2: under a changing policy (network dynamics), convergence is
	// still governed by lambda_max < 1. Alternate between two generated
	// policies and verify contraction.
	polA, adj, _ := testPolicy(t, 4, 19)
	polB, _, _ := testPolicy(t, 4, 23)
	q := NewQuadratic(4, 1.0, 1.0, 25)
	it := NewIteration(q, polA.P, adj, 0.1, polA.Rho, 0, 3.0, 27)
	initial := it.Deviation()
	for s := 0; s < 20000; s++ {
		if s%500 == 0 { // swap policy every 500 steps
			if (s/500)%2 == 0 {
				it.P, it.Rho = polB.P, polB.Rho
			} else {
				it.P, it.Rho = polA.P, polA.Rho
			}
		}
		it.Step()
	}
	if it.Deviation() > initial*1e-2 {
		t.Fatalf("dynamic-network iteration did not contract: %v -> %v", initial, it.Deviation())
	}
}

func TestIterationWithExplicitPg(t *testing.T) {
	pol, adj, _ := testPolicy(t, 3, 29)
	q := NewQuadratic(3, 1.0, 1.0, 30)
	it := NewIteration(q, pol.P, adj, 0.1, pol.Rho, 0, 1.0, 31)
	it.Pg = []float64{0.8, 0.1, 0.1}
	for s := 0; s < 5000; s++ {
		it.Step()
	}
	if it.ConsensusGap() > 0.2 {
		t.Fatalf("consensus gap with skewed pg = %v", it.ConsensusGap())
	}
}
