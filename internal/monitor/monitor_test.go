package monitor

import (
	"math"
	"testing"

	"netmax/internal/simnet"
)

func fullTimes(m int, v float64) func(mo *Monitor) {
	return func(mo *Monitor) {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if i != j {
					mo.Observe(i, j, v)
				}
			}
		}
	}
}

func TestNoRegenerationWithoutCoverage(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 10})
	if _, ok := mo.MaybeRegenerate(0); ok {
		t.Fatal("regenerated with no observations")
	}
	// Partial coverage: only node 0 reported.
	mo.Observe(0, 1, 2.0)
	if _, ok := mo.MaybeRegenerate(1); ok {
		t.Fatal("regenerated before every worker reported")
	}
}

func TestRegeneratesOnceCovered(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 10})
	fullTimes(4, 2.0)(mo)
	pol, ok := mo.MaybeRegenerate(0)
	if !ok {
		t.Fatal("expected regeneration")
	}
	if len(pol.P) != 4 {
		t.Fatalf("policy size %d", len(pol.P))
	}
	if mo.Regenerations != 1 {
		t.Fatalf("Regenerations = %d", mo.Regenerations)
	}
}

func TestPeriodGate(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 10})
	fullTimes(4, 2.0)(mo)
	if _, ok := mo.MaybeRegenerate(0); !ok {
		t.Fatal("first regeneration blocked")
	}
	if _, ok := mo.MaybeRegenerate(5); ok {
		t.Fatal("regenerated before period elapsed")
	}
	if _, ok := mo.MaybeRegenerate(10); !ok {
		t.Fatal("regeneration due at period boundary blocked")
	}
	if mo.Regenerations != 2 {
		t.Fatalf("Regenerations = %d", mo.Regenerations)
	}
}

func TestDefaultPeriodIsPaperTs(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(2), Alpha: 0.1})
	if mo.cfg.Period != 120 {
		t.Fatalf("default period = %v, want 120 (the paper's 2 minutes)", mo.cfg.Period)
	}
}

func TestTimesFillsGapsPessimistically(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(3), Alpha: 0.1, Period: 10})
	mo.Observe(0, 1, 1.0)
	mo.Observe(1, 0, 1.0)
	mo.Observe(2, 0, 9.0)
	times := mo.Times()
	// Unobserved edges take the max observed time (9).
	if times[0][2] != 9 || times[1][2] != 9 {
		t.Fatalf("gap fill wrong: %v", times)
	}
	if times[0][1] != 1 {
		t.Fatalf("observed value overwritten: %v", times)
	}
	if times[0][0] != 0 {
		t.Fatal("diagonal should stay zero")
	}
}

func TestObserveSelfIgnored(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(2), Alpha: 0.1, Period: 10})
	mo.Observe(1, 1, 5)
	if mo.ema[1][1] != 0 {
		t.Fatal("self observation stored")
	}
}

func TestAdaptsToChangedTimes(t *testing.T) {
	// After link (0,1) degrades, the regenerated policy should shift mass
	// away from it.
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 1})
	fullTimes(4, 1.0)(mo)
	pol1, ok := mo.MaybeRegenerate(0)
	if !ok {
		t.Fatal("first regeneration failed")
	}
	mo.Observe(0, 1, 50)
	mo.Observe(1, 0, 50)
	pol2, ok := mo.MaybeRegenerate(2)
	if !ok {
		t.Fatal("second regeneration failed")
	}
	if pol2.P[0][1] >= pol1.P[0][1] {
		t.Fatalf("policy did not shift away from degraded link: %v -> %v", pol1.P[0][1], pol2.P[0][1])
	}
}

func TestObserveBytesAccumulates(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(3), Alpha: 0.1, Period: 10})
	mo.ObserveBytes(0, 1, 1000)
	mo.ObserveBytes(0, 1, 500) // latest payload wins, total accumulates
	mo.ObserveBytes(1, 2, 250)
	mo.ObserveBytes(2, 2, 99) // self link ignored
	mo.ObserveBytes(0, 2, 0)  // empty transfers ignored
	if got := mo.TotalWireBytes(); got != 1750 {
		t.Fatalf("TotalWireBytes = %d, want 1750", got)
	}
	link := mo.LinkWireBytes()
	if link[0][1] != 500 || link[1][2] != 250 || link[2][2] != 0 || link[0][2] != 0 {
		t.Fatalf("LinkWireBytes = %v", link)
	}
	// The copy must not alias monitor state.
	link[0][1] = 7
	if mo.LinkWireBytes()[0][1] != 500 {
		t.Fatal("LinkWireBytes aliases internal storage")
	}
}

func TestObserveRejectsOutOfRangeIndices(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(3), Alpha: 0.1, Period: 10})
	// Wire-supplied indices must never panic or corrupt state.
	mo.Observe(7, 1, 2.0)
	mo.Observe(0, -1, 2.0)
	mo.ObserveBytes(3, 0, 100)
	mo.ObserveBytes(-2, 1, 100)
	if got := mo.TotalWireBytes(); got != 0 {
		t.Fatalf("TotalWireBytes = %d after out-of-range reports", got)
	}
}

func TestObserveRejectsNonFiniteTimes(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(2), Alpha: 0.1, Period: 10})
	mo.Observe(0, 1, math.NaN())
	mo.Observe(0, 1, math.Inf(1))
	mo.Observe(0, 1, -3)
	mo.Observe(0, 1, 0)
	if mo.ema[0][1] != 0 {
		t.Fatalf("poisonous observation stored: %v", mo.ema[0][1])
	}
	mo.Observe(0, 1, 2.5)
	if mo.ema[0][1] != 2.5 {
		t.Fatal("valid observation rejected")
	}
}
