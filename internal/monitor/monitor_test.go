package monitor

import (
	"math"
	"testing"

	"netmax/internal/simnet"
)

func fullTimes(m int, v float64) func(mo *Monitor) {
	return func(mo *Monitor) {
		for i := 0; i < m; i++ {
			for j := 0; j < m; j++ {
				if i != j {
					mo.Observe(i, j, v)
				}
			}
		}
	}
}

func TestNoRegenerationWithoutCoverage(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 10})
	if _, ok := mo.MaybeRegenerate(0); ok {
		t.Fatal("regenerated with no observations")
	}
	// Partial coverage: only node 0 reported.
	mo.Observe(0, 1, 2.0)
	if _, ok := mo.MaybeRegenerate(1); ok {
		t.Fatal("regenerated before every worker reported")
	}
}

func TestRegeneratesOnceCovered(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 10})
	fullTimes(4, 2.0)(mo)
	pol, ok := mo.MaybeRegenerate(0)
	if !ok {
		t.Fatal("expected regeneration")
	}
	if len(pol.P) != 4 {
		t.Fatalf("policy size %d", len(pol.P))
	}
	if mo.Regenerations != 1 {
		t.Fatalf("Regenerations = %d", mo.Regenerations)
	}
}

func TestPeriodGate(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 10})
	fullTimes(4, 2.0)(mo)
	if _, ok := mo.MaybeRegenerate(0); !ok {
		t.Fatal("first regeneration blocked")
	}
	if _, ok := mo.MaybeRegenerate(5); ok {
		t.Fatal("regenerated before period elapsed")
	}
	if _, ok := mo.MaybeRegenerate(10); !ok {
		t.Fatal("regeneration due at period boundary blocked")
	}
	if mo.Regenerations != 2 {
		t.Fatalf("Regenerations = %d", mo.Regenerations)
	}
}

func TestDefaultPeriodIsPaperTs(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(2), Alpha: 0.1})
	if mo.cfg.Period != 120 {
		t.Fatalf("default period = %v, want 120 (the paper's 2 minutes)", mo.cfg.Period)
	}
}

func TestTimesFillsGapsPessimistically(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(3), Alpha: 0.1, Period: 10})
	mo.Observe(0, 1, 1.0)
	mo.Observe(1, 0, 1.0)
	mo.Observe(2, 0, 9.0)
	times := mo.Times()
	// Unobserved edges take the max observed time (9).
	if times[0][2] != 9 || times[1][2] != 9 {
		t.Fatalf("gap fill wrong: %v", times)
	}
	if times[0][1] != 1 {
		t.Fatalf("observed value overwritten: %v", times)
	}
	if times[0][0] != 0 {
		t.Fatal("diagonal should stay zero")
	}
}

func TestObserveSelfIgnored(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(2), Alpha: 0.1, Period: 10})
	mo.Observe(1, 1, 5)
	if mo.ema[1][1] != 0 {
		t.Fatal("self observation stored")
	}
}

func TestAdaptsToChangedTimes(t *testing.T) {
	// After link (0,1) degrades, the regenerated policy should shift mass
	// away from it.
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 1})
	fullTimes(4, 1.0)(mo)
	pol1, ok := mo.MaybeRegenerate(0)
	if !ok {
		t.Fatal("first regeneration failed")
	}
	mo.Observe(0, 1, 50)
	mo.Observe(1, 0, 50)
	pol2, ok := mo.MaybeRegenerate(2)
	if !ok {
		t.Fatal("second regeneration failed")
	}
	if pol2.P[0][1] >= pol1.P[0][1] {
		t.Fatalf("policy did not shift away from degraded link: %v -> %v", pol1.P[0][1], pol2.P[0][1])
	}
}

func TestObserveBytesAccumulates(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(3), Alpha: 0.1, Period: 10})
	mo.ObserveBytes(0, 1, 1000)
	mo.ObserveBytes(0, 1, 500) // latest payload wins, total accumulates
	mo.ObserveBytes(1, 2, 250)
	mo.ObserveBytes(2, 2, 99) // self link ignored
	mo.ObserveBytes(0, 2, 0)  // empty transfers ignored
	if got := mo.TotalWireBytes(); got != 1750 {
		t.Fatalf("TotalWireBytes = %d, want 1750", got)
	}
	link := mo.LinkWireBytes()
	if link[0][1] != 500 || link[1][2] != 250 || link[2][2] != 0 || link[0][2] != 0 {
		t.Fatalf("LinkWireBytes = %v", link)
	}
	// The copy must not alias monitor state.
	link[0][1] = 7
	if mo.LinkWireBytes()[0][1] != 500 {
		t.Fatal("LinkWireBytes aliases internal storage")
	}
}

func TestObserveRejectsOutOfRangeIndices(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(3), Alpha: 0.1, Period: 10})
	// Wire-supplied indices must never panic or corrupt state.
	mo.Observe(7, 1, 2.0)
	mo.Observe(0, -1, 2.0)
	mo.ObserveBytes(3, 0, 100)
	mo.ObserveBytes(-2, 1, 100)
	if got := mo.TotalWireBytes(); got != 0 {
		t.Fatalf("TotalWireBytes = %d after out-of-range reports", got)
	}
}

// fullTimesAt reports every link at a given timestamp so liveness tracking
// sees fresh rows.
func fullTimesAt(mo *Monitor, m int, v, now float64) {
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j {
				mo.ObserveAt(i, j, v, now)
			}
		}
	}
}

// TestStaleRowEviction is the regression test for the corpse-routing bug: a
// worker that stops reporting kept its last (attractive) EMA row forever
// and the policy kept routing pulls at it. With StalePeriods set, the row
// is evicted and regenerated policies stop selecting the dead worker.
func TestStaleRowEviction(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 10, StalePeriods: 2})
	fullTimesAt(mo, 4, 1.0, 0)
	// Worker 3 has the fastest links of all — the attractive corpse.
	mo.ObserveAt(3, 0, 0.1, 0)
	pol1, ok := mo.MaybeRegenerate(0)
	if !ok {
		t.Fatal("first regeneration failed")
	}
	if pol1.P[0][3] == 0 {
		t.Fatal("live worker 3 should receive pulls before failing")
	}
	// Everyone but worker 3 keeps reporting for three periods.
	for _, now := range []float64{10, 20, 30} {
		for i := 0; i < 3; i++ {
			for j := 0; j < 4; j++ {
				if i != j {
					mo.ObserveAt(i, j, 1.0, now)
				}
			}
		}
		mo.MaybeRegenerate(now)
	}
	alive := mo.LiveWorkers(30)
	if alive[3] {
		t.Fatal("worker 3 silent for 3 periods (k=2) but still considered live")
	}
	if alive[0] != true || alive[1] != true || alive[2] != true {
		t.Fatalf("reporting workers evicted: %v", alive)
	}
	pol2, ok := mo.MaybeRegenerate(31)
	if !ok {
		// The eviction regeneration may already have happened at t=30.
		pol2, ok = mo.MaybeRegenerate(40)
		if !ok {
			t.Fatal("no regeneration after eviction")
		}
	}
	for i := 0; i < 3; i++ {
		if pol2.P[i][3] != 0 {
			t.Fatalf("policy still routes worker %d at the dead worker: %v", i, pol2.P[i])
		}
	}
	if pol2.P[3][3] != 1 {
		t.Fatalf("dead row not pinned to self: %v", pol2.P[3])
	}
	if mo.Evictions == 0 {
		t.Fatal("eviction not counted")
	}
	// Worker 3 resumes reporting: re-admitted on the next regeneration.
	for j := 0; j < 4; j++ {
		if j != 3 {
			mo.ObserveAt(3, j, 1.0, 41)
		}
	}
	pol3, ok := mo.MaybeRegenerate(41)
	if !ok {
		t.Fatal("membership change (re-admission) did not force regeneration")
	}
	if pol3.P[0][3] == 0 {
		t.Fatalf("re-admitted worker receives no pulls: %v", pol3.P[0])
	}
}

// TestStaleEvictionDisabledByDefault pins the historical behavior: with
// StalePeriods zero, silent workers are never evicted.
func TestStaleEvictionDisabledByDefault(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(3), Alpha: 0.1, Period: 10})
	fullTimesAt(mo, 3, 1.0, 0)
	if _, ok := mo.MaybeRegenerate(0); !ok {
		t.Fatal("first regeneration failed")
	}
	alive := mo.LiveWorkers(1e9)
	for i, a := range alive {
		if !a {
			t.Fatalf("worker %d evicted with StalePeriods=0", i)
		}
	}
}

// TestSetLivenessForcesRegeneration verifies the fast membership path: a
// SetLiveness change re-solves the row LPs immediately, bypassing the
// period gate, and re-admission restores routing.
func TestSetLivenessForcesRegeneration(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(4), Alpha: 0.1, Period: 100})
	fullTimesAt(mo, 4, 1.0, 0)
	if _, ok := mo.MaybeRegenerate(0); !ok {
		t.Fatal("first regeneration failed")
	}
	// Within the period: no regeneration without membership change.
	if _, ok := mo.MaybeRegenerate(5); ok {
		t.Fatal("regenerated inside the period without membership change")
	}
	mo.SetLiveness([]bool{true, false, true, true}, 6)
	pol, ok := mo.MaybeRegenerate(6)
	if !ok {
		t.Fatal("membership change did not bypass the period gate")
	}
	if pol.P[0][1] != 0 || pol.P[2][1] != 0 || pol.P[1][1] != 1 {
		t.Fatalf("policy still routes at the down worker: %v", pol.P)
	}
	// Re-admit: forced again, routing restored. No fresh report is needed
	// first — coverage keys on ever-reported, and the evicted row is
	// gap-filled pessimistically until new measurements arrive; requiring
	// a report here would deadlock (the pinned-to-self policy row gives
	// the rejoined worker nothing to report about).
	mo.SetLiveness([]bool{true, true, true, true}, 7)
	pol2, ok := mo.MaybeRegenerate(7)
	if !ok {
		t.Fatal("re-admission did not force regeneration")
	}
	if pol2.P[0][1] == 0 {
		t.Fatalf("re-admitted worker receives no pulls: %v", pol2.P[0])
	}
}

func TestObserveRejectsNonFiniteTimes(t *testing.T) {
	mo := New(Config{Adj: simnet.FullyConnected(2), Alpha: 0.1, Period: 10})
	mo.Observe(0, 1, math.NaN())
	mo.Observe(0, 1, math.Inf(1))
	mo.Observe(0, 1, -3)
	mo.Observe(0, 1, 0)
	if mo.ema[0][1] != 0 {
		t.Fatalf("poisonous observation stored: %v", mo.ema[0][1])
	}
	mo.Observe(0, 1, 2.5)
	if mo.ema[0][1] != 2.5 {
		t.Fatal("valid observation rejected")
	}
}
