// Package monitor implements the Network Monitor of Algorithm 1.
//
// The Monitor is the only central component of NetMax, and deliberately a
// lightweight one: it never sees training data or model parameters — it
// collects the per-link EMA iteration times maintained by the workers
// (Algorithm 2's UPDATETIMEVECTOR), periodically regenerates the
// communication policy with Algorithm 3, and ships (P, ρ) back. The same
// monitor drives the AD-PSGD extension of Section III-D.
package monitor

import (
	"math"
	"sync"

	"netmax/internal/policy"
)

// Config holds the Monitor's tuning knobs.
type Config struct {
	// Adj is the communication graph.
	Adj [][]bool
	// Alpha is the workers' learning rate (needed for the Eq. 11 floors).
	Alpha float64
	// Period is Ts, the schedule period in (virtual) seconds. The paper
	// uses 2 minutes; shorter values react faster to link changes.
	Period float64
	// OuterRounds/InnerRounds are Algorithm 3's grid sizes (default 10).
	OuterRounds, InnerRounds int
	// Epsilon is the convergence target of Eq. 9 (default 1e-2).
	Epsilon float64
	// AveragingBlend selects the Section III-D extension mode (fixed 1/2
	// averaging weight) when generating policies.
	AveragingBlend bool
	// StalePeriods enables liveness tracking: a worker whose last
	// timestamped report (ObserveAt) is older than StalePeriods*Period is
	// evicted — its EMA row is cleared and policies are regenerated over
	// the live subgraph only, so the policy stops routing pulls at a
	// corpse whose last (attractive) iteration time would otherwise live
	// forever. Zero disables eviction (the historical behavior).
	StalePeriods int
}

// Monitor tracks link statistics and regenerates communication policies.
type Monitor struct {
	mu   sync.Mutex
	cfg  Config
	m    int
	ema  [][]float64 // latest collected iteration-time matrix
	last float64     // virtual time of last regeneration
	ran  bool

	payload    [][]int64 // latest reported encoded transfer size per link
	totalBytes int64     // cumulative reported bytes-on-wire

	clock        float64   // latest time seen (ObserveAt/MaybeRegenerate)
	lastReport   []float64 // per-worker time of the last timestamped report
	everReported []bool    // per-worker: any report ever (coverage gate)
	membAlive    []bool    // membership-event liveness (SetLiveness); nil = all
	lastAlive    []bool    // liveness set of the last successful regeneration

	// Regenerations counts successful policy computations (observability).
	Regenerations int
	// Evictions counts workers evicted for staleness (observability).
	Evictions int
}

// New creates a Monitor. Period must be positive.
func New(cfg Config) *Monitor {
	if cfg.Period <= 0 {
		cfg.Period = 120 // the paper's Ts = 2 minutes
	}
	m := len(cfg.Adj)
	ema := make([][]float64, m)
	payload := make([][]int64, m)
	for i := range ema {
		ema[i] = make([]float64, m)
		payload[i] = make([]int64, m)
	}
	lastAlive := make([]bool, m)
	for i := range lastAlive {
		lastAlive[i] = true
	}
	return &Monitor{cfg: cfg, m: m, ema: ema, payload: payload,
		lastReport: make([]float64, m), everReported: make([]bool, m), lastAlive: lastAlive}
}

// Observe ingests one measured iteration time for link (i, j). In the
// distributed deployment this arrives with the periodic statistics pull; in
// the simulator workers report as they finish iterations. The worker-side
// EMA has already been applied, so the monitor just stores the latest value.
func (mo *Monitor) Observe(i, j int, iterSecs float64) {
	mo.mu.Lock()
	now := mo.clock
	mo.mu.Unlock()
	mo.ObserveAt(i, j, iterSecs, now)
}

// ObserveAt is Observe with the (virtual or wall) time of the report. The
// timestamp feeds liveness tracking: a worker whose reports stop arriving
// is evicted from policy generation after StalePeriods periods.
func (mo *Monitor) ObserveAt(i, j int, iterSecs, now float64) {
	// Reports arrive over the wire: reject out-of-range indices and
	// non-finite or non-positive times, either of which would poison the
	// EMA matrix and every policy generated from it. (NaN fails the > 0
	// comparison.)
	if i == j || !mo.validLink(i, j) || !(iterSecs > 0) || math.IsInf(iterSecs, 1) {
		return
	}
	mo.mu.Lock()
	mo.ema[i][j] = iterSecs
	mo.everReported[i] = true
	if now > mo.lastReport[i] {
		mo.lastReport[i] = now
	}
	if now > mo.clock {
		mo.clock = now
	}
	mo.mu.Unlock()
}

// SetLiveness feeds membership knowledge from a faster detector — the
// engine's membership events, or a deployment's failure detector — into
// the monitor: workers marked false are excluded from policy generation
// immediately, without waiting for their reports to go stale. A liveness
// change forces the next MaybeRegenerate regardless of the period gate, so
// the row LPs are re-solved on every membership change.
func (mo *Monitor) SetLiveness(alive []bool, now float64) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	if mo.membAlive == nil {
		mo.membAlive = make([]bool, mo.m)
		for i := range mo.membAlive {
			mo.membAlive[i] = true
		}
	}
	for i := 0; i < mo.m && i < len(alive); i++ {
		mo.membAlive[i] = alive[i]
		if alive[i] && now > mo.lastReport[i] {
			// A re-admitted worker gets a fresh staleness grace period; its
			// old lastReport would otherwise evict it again instantly.
			mo.lastReport[i] = now
		}
	}
	if now > mo.clock {
		mo.clock = now
	}
}

// aliveAt reports the combined liveness of worker i at time now: live
// unless a membership event marked it down or (with StalePeriods > 0) its
// reports have gone stale. Callers hold mo.mu.
func (mo *Monitor) aliveAt(i int, now float64) bool {
	if mo.membAlive != nil && !mo.membAlive[i] {
		return false
	}
	if mo.cfg.StalePeriods > 0 && now-mo.lastReport[i] > float64(mo.cfg.StalePeriods)*mo.cfg.Period {
		return false
	}
	return true
}

// liveness materializes the combined liveness vector. Callers hold mo.mu.
func (mo *Monitor) liveness(now float64) []bool {
	alive := make([]bool, mo.m)
	for i := range alive {
		alive[i] = mo.aliveAt(i, now)
	}
	return alive
}

// LiveWorkers returns the combined liveness vector at time now
// (observability, tests).
func (mo *Monitor) LiveWorkers(now float64) []bool {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.liveness(now)
}

// validLink bounds-checks worker indices: reports arrive over the wire, so
// a malformed or hostile frame must not index outside the m x m matrices.
func (mo *Monitor) validLink(i, j int) bool {
	return i >= 0 && i < mo.m && j >= 0 && j < mo.m
}

// ObserveBytes ingests the encoded byte size of one model transfer on link
// (i, j) — the wire payload the transport's codec actually produced, which
// arrives with the iteration-time report. The monitor keeps the latest
// per-link payload size (link-bandwidth observability under compression)
// and the cumulative bytes-on-wire total.
func (mo *Monitor) ObserveBytes(i, j int, bytes int64) {
	if i == j || bytes <= 0 || !mo.validLink(i, j) {
		return
	}
	mo.mu.Lock()
	mo.payload[i][j] = bytes
	mo.totalBytes += bytes
	mo.mu.Unlock()
}

// TotalWireBytes returns the cumulative encoded bytes reported so far.
func (mo *Monitor) TotalWireBytes() int64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.totalBytes
}

// LinkWireBytes returns a copy of the latest per-link encoded transfer
// sizes (zero where no report carried a byte count yet).
func (mo *Monitor) LinkWireBytes() [][]int64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	out := make([][]int64, mo.m)
	for i := range out {
		out[i] = make([]int64, mo.m)
		copy(out[i], mo.payload[i])
	}
	return out
}

// Times returns a copy of the current iteration-time matrix with gaps
// (never-observed links) filled pessimistically with the largest observed
// time, so that policy generation can run before full coverage.
func (mo *Monitor) Times() [][]float64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	maxT := 0.0
	for i := range mo.ema {
		for j := range mo.ema[i] {
			if mo.ema[i][j] > maxT {
				maxT = mo.ema[i][j]
			}
		}
	}
	out := make([][]float64, mo.m)
	for i := range out {
		out[i] = make([]float64, mo.m)
		for j := range out[i] {
			v := mo.ema[i][j]
			if i != j && mo.cfg.Adj[i][j] && v == 0 {
				v = maxT
			}
			out[i][j] = v
		}
	}
	return out
}

// coverage reports whether every live worker has EVER reported a link
// time, so that the first regeneration does not act on a single skewed
// sample. Dead workers cannot report and must not block the live group's
// policy. The check deliberately uses the ever-reported flag rather than
// the current EMA row: eviction clears a worker's row, and a re-admitted
// worker whose fresh reports have not arrived yet must not freeze policy
// regeneration for the whole cluster — its cleared row is gap-filled
// pessimistically by Times until real measurements rebuild it. Callers
// hold mo.mu.
func (mo *Monitor) coverage(alive []bool) bool {
	for i, ok := range mo.everReported {
		if alive[i] && !ok {
			return false
		}
	}
	return true
}

// MaybeRegenerate runs Algorithm 1's periodic body: if a full period has
// elapsed since the last run (and any statistics exist), it recomputes the
// policy and returns it with ok=true. A membership change — a worker
// evicted for staleness, marked down via SetLiveness, or re-admitted —
// bypasses the period gate so the row LPs are re-solved immediately over
// the live subgraph. Otherwise ok=false.
func (mo *Monitor) MaybeRegenerate(now float64) (*policy.Policy, bool) {
	mo.mu.Lock()
	if now > mo.clock {
		mo.clock = now
	}
	// Allocation-free fast path: Tick calls this on every event, so the
	// liveness vector is only materialized once a regeneration is due.
	changed := false
	for i := 0; i < mo.m; i++ {
		if mo.aliveAt(i, now) != mo.lastAlive[i] {
			changed = true
			break
		}
	}
	if !(!mo.ran || now-mo.last >= mo.cfg.Period || changed) {
		mo.mu.Unlock()
		return nil, false
	}
	alive := mo.liveness(now)
	if !mo.coverage(alive) {
		mo.mu.Unlock()
		return nil, false
	}
	// Stale-row eviction: a newly dead worker's own measurements are
	// meaningless after it returns, so its EMA row is cleared; fresh
	// reports rebuild it on re-admission (gap-filled pessimistically by
	// Times until then).
	for i, ok := range alive {
		if !ok && mo.lastAlive[i] {
			for j := range mo.ema[i] {
				mo.ema[i][j] = 0
			}
			mo.Evictions++
		}
	}
	mo.mu.Unlock()

	pol, err := policy.GenerateLive(policy.Input{
		Times:          mo.Times(),
		Adj:            mo.cfg.Adj,
		Alpha:          mo.cfg.Alpha,
		OuterRounds:    mo.cfg.OuterRounds,
		InnerRounds:    mo.cfg.InnerRounds,
		Epsilon:        mo.cfg.Epsilon,
		AveragingBlend: mo.cfg.AveragingBlend,
	}, alive)
	mo.mu.Lock()
	mo.last = now
	mo.ran = true
	mo.lastAlive = alive
	if err == nil {
		mo.Regenerations++
	}
	mo.mu.Unlock()
	if err != nil {
		return nil, false
	}
	return pol, true
}
