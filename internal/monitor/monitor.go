// Package monitor implements the Network Monitor of Algorithm 1.
//
// The Monitor is the only central component of NetMax, and deliberately a
// lightweight one: it never sees training data or model parameters — it
// collects the per-link EMA iteration times maintained by the workers
// (Algorithm 2's UPDATETIMEVECTOR), periodically regenerates the
// communication policy with Algorithm 3, and ships (P, ρ) back. The same
// monitor drives the AD-PSGD extension of Section III-D.
package monitor

import (
	"math"
	"sync"

	"netmax/internal/policy"
)

// Config holds the Monitor's tuning knobs.
type Config struct {
	// Adj is the communication graph.
	Adj [][]bool
	// Alpha is the workers' learning rate (needed for the Eq. 11 floors).
	Alpha float64
	// Period is Ts, the schedule period in (virtual) seconds. The paper
	// uses 2 minutes; shorter values react faster to link changes.
	Period float64
	// OuterRounds/InnerRounds are Algorithm 3's grid sizes (default 10).
	OuterRounds, InnerRounds int
	// Epsilon is the convergence target of Eq. 9 (default 1e-2).
	Epsilon float64
	// AveragingBlend selects the Section III-D extension mode (fixed 1/2
	// averaging weight) when generating policies.
	AveragingBlend bool
}

// Monitor tracks link statistics and regenerates communication policies.
type Monitor struct {
	mu   sync.Mutex
	cfg  Config
	m    int
	ema  [][]float64 // latest collected iteration-time matrix
	last float64     // virtual time of last regeneration
	ran  bool

	payload    [][]int64 // latest reported encoded transfer size per link
	totalBytes int64     // cumulative reported bytes-on-wire

	// Regenerations counts successful policy computations (observability).
	Regenerations int
}

// New creates a Monitor. Period must be positive.
func New(cfg Config) *Monitor {
	if cfg.Period <= 0 {
		cfg.Period = 120 // the paper's Ts = 2 minutes
	}
	m := len(cfg.Adj)
	ema := make([][]float64, m)
	payload := make([][]int64, m)
	for i := range ema {
		ema[i] = make([]float64, m)
		payload[i] = make([]int64, m)
	}
	return &Monitor{cfg: cfg, m: m, ema: ema, payload: payload}
}

// Observe ingests one measured iteration time for link (i, j). In the
// distributed deployment this arrives with the periodic statistics pull; in
// the simulator workers report as they finish iterations. The worker-side
// EMA has already been applied, so the monitor just stores the latest value.
func (mo *Monitor) Observe(i, j int, iterSecs float64) {
	// Reports arrive over the wire: reject out-of-range indices and
	// non-finite or non-positive times, either of which would poison the
	// EMA matrix and every policy generated from it. (NaN fails the > 0
	// comparison.)
	if i == j || !mo.validLink(i, j) || !(iterSecs > 0) || math.IsInf(iterSecs, 1) {
		return
	}
	mo.mu.Lock()
	mo.ema[i][j] = iterSecs
	mo.mu.Unlock()
}

// validLink bounds-checks worker indices: reports arrive over the wire, so
// a malformed or hostile frame must not index outside the m x m matrices.
func (mo *Monitor) validLink(i, j int) bool {
	return i >= 0 && i < mo.m && j >= 0 && j < mo.m
}

// ObserveBytes ingests the encoded byte size of one model transfer on link
// (i, j) — the wire payload the transport's codec actually produced, which
// arrives with the iteration-time report. The monitor keeps the latest
// per-link payload size (link-bandwidth observability under compression)
// and the cumulative bytes-on-wire total.
func (mo *Monitor) ObserveBytes(i, j int, bytes int64) {
	if i == j || bytes <= 0 || !mo.validLink(i, j) {
		return
	}
	mo.mu.Lock()
	mo.payload[i][j] = bytes
	mo.totalBytes += bytes
	mo.mu.Unlock()
}

// TotalWireBytes returns the cumulative encoded bytes reported so far.
func (mo *Monitor) TotalWireBytes() int64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	return mo.totalBytes
}

// LinkWireBytes returns a copy of the latest per-link encoded transfer
// sizes (zero where no report carried a byte count yet).
func (mo *Monitor) LinkWireBytes() [][]int64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	out := make([][]int64, mo.m)
	for i := range out {
		out[i] = make([]int64, mo.m)
		copy(out[i], mo.payload[i])
	}
	return out
}

// Times returns a copy of the current iteration-time matrix with gaps
// (never-observed links) filled pessimistically with the largest observed
// time, so that policy generation can run before full coverage.
func (mo *Monitor) Times() [][]float64 {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	maxT := 0.0
	for i := range mo.ema {
		for j := range mo.ema[i] {
			if mo.ema[i][j] > maxT {
				maxT = mo.ema[i][j]
			}
		}
	}
	out := make([][]float64, mo.m)
	for i := range out {
		out[i] = make([]float64, mo.m)
		for j := range out[i] {
			v := mo.ema[i][j]
			if i != j && mo.cfg.Adj[i][j] && v == 0 {
				v = maxT
			}
			out[i][j] = v
		}
	}
	return out
}

// coverage reports whether every worker has reported at least one link
// time, so that the first regeneration does not act on a single skewed
// sample.
func (mo *Monitor) coverage() bool {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	for i := range mo.ema {
		seen := false
		for j := range mo.ema[i] {
			if mo.ema[i][j] > 0 {
				seen = true
				break
			}
		}
		if !seen {
			return false
		}
	}
	return true
}

// MaybeRegenerate runs Algorithm 1's periodic body: if a full period has
// elapsed since the last run (and any statistics exist), it recomputes the
// policy and returns it with ok=true. Otherwise ok=false.
func (mo *Monitor) MaybeRegenerate(now float64) (*policy.Policy, bool) {
	mo.mu.Lock()
	due := !mo.ran || now-mo.last >= mo.cfg.Period
	mo.mu.Unlock()
	if !due || !mo.coverage() {
		return nil, false
	}
	pol, err := policy.Generate(policy.Input{
		Times:          mo.Times(),
		Adj:            mo.cfg.Adj,
		Alpha:          mo.cfg.Alpha,
		OuterRounds:    mo.cfg.OuterRounds,
		InnerRounds:    mo.cfg.InnerRounds,
		Epsilon:        mo.cfg.Epsilon,
		AveragingBlend: mo.cfg.AveragingBlend,
	})
	mo.mu.Lock()
	mo.last = now
	mo.ran = true
	mo.mu.Unlock()
	if err != nil {
		return nil, false
	}
	mo.mu.Lock()
	mo.Regenerations++
	mo.mu.Unlock()
	return pol, true
}
