package engine

import (
	"fmt"
	"math"
	"math/rand"

	"netmax/internal/tensor"
)

// AsyncBehavior parameterizes the shared asynchronous pull loop: NetMax,
// AD-PSGD, GoSGD-style gossip, SAPS-PSGD and AD-PSGD+Monitor are all
// "select a peer, pull its model, blend" algorithms that differ only in how
// peers are selected, how the pulled model is weighted, and what periodic
// control runs alongside.
type AsyncBehavior interface {
	// SelectPeer returns the peer worker i pulls from for the iteration
	// starting at virtual time now. Returning i itself means "skip
	// communication this iteration" (a policy may assign p_ii > 0).
	SelectPeer(i int, now float64, rng *rand.Rand) int
	// BlendCoef returns the coefficient c of the second-step update
	// x_i ← (1-c)·x_i + c·x_j. For NetMax c = αρ(d_ij+d_ji)/(2 p_ij)
	// (Algorithm 2 line 13); for AD-PSGD-style averaging c = 1/2.
	BlendCoef(i, j int) float64
	// OnIterationEnd reports the measured iteration time, which behaviors
	// with a Network Monitor feed into their EMA time vectors
	// (Algorithm 2 line 16).
	OnIterationEnd(i, j int, iterSecs, now float64)
	// Tick runs periodic control at virtual time now — the Network
	// Monitor's policy regeneration (Algorithm 1). No-op for static
	// behaviors.
	Tick(now float64)
}

// SymmetricBlender is an optional AsyncBehavior refinement: when Symmetric
// returns true, the blend is applied to BOTH endpoints (each moves toward
// the midpoint with the blend coefficient), matching AD-PSGD's atomic
// two-sided averaging [11]. One-sided behaviors (NetMax's Algorithm 2 pull)
// leave the peer untouched.
type SymmetricBlender interface {
	Symmetric() bool
}

// MembershipAware is an optional AsyncBehavior refinement for behaviors
// that react to cluster membership: whenever a crash, leave or rejoin
// boundary of the configured FailureSchedule passes, the engine calls
// OnMembership with the current membership vector before processing the
// first event at or after the boundary. alive is only valid during the
// call — behaviors keep their own copy. Hangs and link blackouts are NOT
// membership events: a frozen process is indistinguishable from a slow
// link, so behaviors learn about those only through failed pulls and
// inflated iteration times.
type MembershipAware interface {
	OnMembership(alive []bool, now float64)
}

// PartialTransferrer is an optional AsyncBehavior refinement for methods
// that send only part of the model per pull (DLion-style capacity-scaled
// partitions): TransferBytes maps the full model size to the bytes actually
// moved for the current iteration.
type PartialTransferrer interface {
	TransferBytes(full int64) int64
}

// RunAsync executes the asynchronous decentralized loop under cfg with the
// given behavior, returning the aggregated result. Events are processed in
// completion order on the virtual clock; each event atomically performs one
// worker iteration (select peer, snapshot its model, local gradient step,
// blend) and schedules the next completion.
//
// When cfg allows host parallelism, all events sharing the earliest virtual
// timestamp are drained together and their gradient computations — which
// touch only each worker's own replica — run concurrently before the
// mutating tail of every iteration (optimizer step, peer snapshot, blend,
// bookkeeping) is applied serially in event order. A gradient whose replica
// was retroactively written by an earlier same-timestamp event (two-sided
// blending) is recomputed serially on the same batch. The schedule, the
// peer draws and every floating-point reduction therefore happen exactly as
// in the serial loop, keeping results bitwise identical at any Parallelism.
//
// When cfg.Failures carries events, the loop injects them: unresponsive
// workers' events are parked until rejoin (iterations in flight across a
// down interval are discarded), pulls at unresponsive peers or blacked-out
// links fail after the schedule's detection deadline without moving bytes,
// and crash/leave/rejoin boundaries are delivered to MembershipAware
// behaviors before the first event at or past the boundary. A nil or empty
// schedule takes none of these paths and reproduces the failure-free
// trajectory bitwise.
func RunAsync(cfg *Config, b AsyncBehavior, algo string) *Result {
	ws := cfg.Workers()
	tr := NewTracker(cfg, ws, algo)
	bytes := cfg.WireBytes()
	par := cfg.EffectiveParallelism()
	// Compression state: every transferred vector round-trips through the
	// codec so its loss lands in the trajectory; prior receives the
	// receiving worker's own parameters for sparse partial pulls. All
	// buffers are reused across iterations — the event loop stays
	// allocation-free under compression.
	var encBuf []byte
	var prior, ownBuf []float64
	if cfg.Codec != nil {
		prior = make([]float64, ws[0].Model.VectorLen())
	}
	// compress overwrites vec in place with what receiver would decode off
	// the wire. The payload is self-produced, so a decode failure is a
	// codec bug; continuing would charge compressed bytes for an
	// uncompressed transfer.
	compress := func(vec []float64, receiver *Worker) {
		if cfg.Codec == nil {
			return
		}
		encBuf = cfg.Codec.AppendEncode(encBuf[:0], vec)
		receiver.Model.CopyVector(prior)
		if err := cfg.Codec.DecodeInto(encBuf, vec, prior); err != nil {
			panic(fmt.Sprintf("engine: codec %s round-trip failed: %v", cfg.Codec.Name(), err))
		}
	}
	symmetric := false
	if sb, ok := b.(SymmetricBlender); ok {
		symmetric = sb.Symmetric()
	}

	var q Queue
	// Pending bookkeeping per worker: costs of the iteration in flight.
	type pending struct {
		samples    int
		comp, comm float64
	}
	pend := make([]pending, len(ws))
	// Kick off: every worker starts its first iteration at t=0. The first
	// pop therefore carries zero pending cost.
	for i := range ws {
		q.Push(0, i)
	}
	snapshot := make([]float64, ws[0].Model.VectorLen())

	// Churn state. An empty schedule is normalized to nil so the
	// failure-free path is literally the historical one — the bitwise
	// determinism gate compares the two.
	fs := cfg.Failures
	if fs.Empty() {
		fs = nil
	}
	var started []float64 // virtual start time of each worker's in-flight iteration
	var alive []bool      // scratch membership vector
	var membAware MembershipAware
	// nextMemb is the earliest unannounced membership boundary: an O(1)
	// comparison per event pop instead of a schedule scan.
	nextMemb, haveMemb := 0.0, false
	if fs != nil {
		started = make([]float64, len(ws))
		alive = make([]bool, len(ws))
		membAware, _ = b.(MembershipAware)
		nextMemb, haveMemb = fs.NextTransition(math.Inf(-1))
	}
	// admit decides whether worker id's completion event at time now runs
	// an iteration: a currently unresponsive worker is parked until its
	// rejoin (its in-flight iteration died with it), and a worker that
	// crashed and already rejoined mid-flight restarts fresh — the
	// interrupted iteration's accounting is discarded either way.
	admit := func(id int, now float64) bool {
		if fs == nil {
			return true
		}
		if fs.Unresponsive(id, now) {
			pend[id] = pending{}
			if up, ok := fs.NextUp(id, now); ok {
				q.Push(up, id)
				started[id] = up
			}
			return false
		}
		if fs.Interrupted(id, started[id], now) {
			pend[id] = pending{}
		}
		return true
	}

	// batch holds the events drained for one timestamp; job keeps the
	// pre-fetched training batch so a conflicting gradient can be redone on
	// identical data.
	type job struct {
		id     int
		x      *tensor.Tensor
		labels []int
	}
	batch := make([]job, 0, len(ws))
	// dirty[i] marks worker i's replica as written by an earlier event of
	// the current batch after i's gradient was precomputed.
	dirty := make([]bool, len(ws))

events:
	for !tr.Done() && q.Len() > 0 {
		now, first := q.Pop()
		// Membership boundaries (crash, leave, rejoin) that passed since
		// the previous event are announced before anything at this
		// timestamp runs, so behaviors stop selecting dead peers at once.
		if fs != nil && haveMemb && now >= nextMemb {
			fs.AliveInto(alive, now)
			if membAware != nil {
				membAware.OnMembership(alive, now)
			}
			nextMemb, haveMemb = fs.NextTransition(now)
		}
		batch = batch[:0]
		if admit(first, now) {
			batch = append(batch, job{id: first})
		}
		if par > 1 {
			for {
				t, ok := q.PeekTime()
				if !ok || t != now {
					break
				}
				_, id := q.Pop()
				if admit(id, now) {
					batch = append(batch, job{id: id})
				}
			}
		}
		if len(batch) == 0 {
			continue // every event at this timestamp hit a down worker
		}
		prefetched := len(batch) > 1
		if prefetched {
			// Draw every batch in event order (cursor advances are
			// per-worker, so the order is cosmetic but kept identical to
			// the serial loop), then compute all gradients concurrently.
			for k := range batch {
				batch[k].x, batch[k].labels = ws[batch[k].id].NextBatch()
			}
			Concurrently(len(batch), par, func(k int) {
				ws[batch[k].id].ComputeGrad(batch[k].x, batch[k].labels)
			})
			for i := range dirty {
				dirty[i] = false
			}
		}
		for k := range batch {
			i := batch[k].id
			// Flush the completed iteration's accounting.
			if p := pend[i]; p.samples > 0 {
				tr.OnIteration(now, p.samples, p.comp, p.comm)
				if tr.Done() {
					break events
				}
			}
			b.Tick(now)
			w := ws[i]
			j := b.SelectPeer(i, now, w.Rng)
			// A pull at an unresponsive peer or over a blacked-out link
			// fails: nothing is blended or transferred, and the worker
			// loses the schedule's detection deadline waiting it out. The
			// failed attempt still feeds OnIterationEnd, so adaptive
			// behaviors see the link's iteration time inflate and route
			// away — exactly how a hang is survivable at all.
			pullFailed := fs != nil && j != i && fs.PullFails(i, j, now)
			var samples int
			if prefetched {
				if dirty[i] {
					// An earlier same-timestamp event blended into this
					// replica after its gradient was precomputed; redo the
					// computation on the same batch against the current
					// parameters, exactly as the serial loop would.
					w.ComputeGrad(batch[k].x, batch[k].labels)
				}
				w.ApplyStep()
				samples = w.Batch
			} else {
				_, samples = w.GradStep() // first update (local gradients)
			}
			if j != i && !pullFailed {
				ws[j].Model.CopyVector(snapshot) // pull x_j (freshest params)
				compress(snapshot, w)
				coef := b.BlendCoef(i, j)
				if symmetric {
					// Two-sided atomic averaging: j also moves toward i's
					// (pre-blend) model with the same coefficient. The
					// reverse transfer goes through the codec as well, so
					// both directions carry compression loss.
					if ownBuf == nil {
						ownBuf = make([]float64, len(snapshot))
					}
					w.Model.CopyVector(ownBuf)
					compress(ownBuf, ws[j])
					w.Model.BlendVector(coef, snapshot)
					ws[j].Model.BlendVector(coef, ownBuf)
					dirty[j] = true
				} else {
					w.Model.BlendVector(coef, snapshot)
				}
			}
			moved := bytes
			if pt, ok := b.(PartialTransferrer); ok {
				moved = pt.TransferBytes(bytes)
			}
			comp := cfg.ComputeSecs(i)
			var iterSecs float64
			if pullFailed {
				// The local gradient step proceeds while the doomed pull
				// waits out the detection deadline; no bytes move.
				iterSecs = comp + fs.Detect()
				if cfg.Overlap {
					iterSecs = comp
					if d := fs.Detect(); d > iterSecs {
						iterSecs = d
					}
				}
			} else {
				if j != i {
					tr.AddBytes(moved)
				}
				iterSecs = cfg.Net.IterationTime(i, j, moved, comp, now, cfg.Overlap)
			}
			b.OnIterationEnd(i, j, iterSecs, now)
			commCost := iterSecs - comp
			if commCost < 0 {
				commCost = 0
			}
			pend[i] = pending{samples: samples, comp: comp, comm: commCost}
			q.Push(now+iterSecs, i)
			if fs != nil {
				started[i] = now
			}
		}
	}
	return tr.Finish()
}
