package engine

import (
	"runtime"
	"sync"
)

// DefaultParallelism is the process-wide fallback for Config.Parallelism
// when a config leaves it at 0: 0 means runtime.GOMAXPROCS, 1 forces the
// serial code paths everywhere (the pre-parallel behavior), n > 1 caps
// concurrent worker stepping at n. cmd/netmax-bench sets it from its -par
// flag so a whole experiment sweep can be pinned without threading the knob
// through every config constructor.
var DefaultParallelism int

// ResolveParallelism resolves a Parallelism setting (usually a Config field)
// against DefaultParallelism and the machine size. The result is always ≥ 1.
func ResolveParallelism(n int) int {
	if n == 0 {
		n = DefaultParallelism
	}
	if n == 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Concurrently runs f(k) for every k in [0, n) with at most par invocations
// in flight, returning when all have finished. par <= 1 degenerates to the
// plain serial loop on the calling goroutine. Callers are responsible for
// making the f(k) mutually independent; results must be written to
// k-indexed slots (not appended) so the outcome is order-independent.
//
// Calls at every level (experiment driver, per-figure algorithm fan-out,
// engine worker stepping) share one process-wide budget of GOMAXPROCS
// helper slots, so nesting never multiplies concurrency: the outermost
// active levels win the slots and saturated inner calls degrade to the
// serial loop instead of oversubscribing cores or stacking N× the live
// training state per level. Slot acquisition never blocks, so nested use
// cannot deadlock.
func Concurrently(n, par int, f func(k int)) {
	if par > n {
		par = n
	}
	helpers := 0
	if n > 1 && par > 1 {
		helpers = acquireSlots(par)
	}
	if helpers == 1 {
		// A single helper is strictly worse than the serial loop (the
		// caller would idle feeding it while holding a host slot).
		releaseSlots(1)
		helpers = 0
	}
	if helpers == 0 {
		for k := 0; k < n; k++ {
			f(k)
		}
		return
	}
	defer releaseSlots(helpers)
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(helpers)
	for w := 0; w < helpers; w++ {
		go func() {
			defer wg.Done()
			for k := range next {
				f(k)
			}
		}()
	}
	for k := 0; k < n; k++ {
		next <- k
	}
	close(next)
	wg.Wait()
}

var (
	slotOnce  sync.Once
	hostSlots chan struct{}
)

// acquireSlots reserves up to want helper slots from the process-wide
// budget without blocking, returning how many it got (possibly 0).
func acquireSlots(want int) int {
	slotOnce.Do(func() {
		hostSlots = make(chan struct{}, runtime.GOMAXPROCS(0))
	})
	got := 0
	for got < want {
		select {
		case hostSlots <- struct{}{}:
			got++
		default:
			return got
		}
	}
	return got
}

func releaseSlots(n int) {
	for i := 0; i < n; i++ {
		<-hostSlots
	}
}
