package engine

import (
	"testing"
)

func TestComputeSecsDefault(t *testing.T) {
	cfg := testConfig(4, 1)
	for i := 0; i < 4; i++ {
		if cfg.ComputeSecs(i) != cfg.Spec.ComputeSecs {
			t.Fatalf("worker %d compute = %v", i, cfg.ComputeSecs(i))
		}
	}
	if cfg.MaxComputeSecs() != cfg.Spec.ComputeSecs {
		t.Fatalf("max compute = %v", cfg.MaxComputeSecs())
	}
}

func TestComputeSecsStraggler(t *testing.T) {
	cfg := testConfig(4, 1)
	cfg.ComputeScale = []float64{1, 1, 5, 1}
	if got := cfg.ComputeSecs(2); got != 5*cfg.Spec.ComputeSecs {
		t.Fatalf("straggler compute = %v", got)
	}
	if got := cfg.ComputeSecs(0); got != cfg.Spec.ComputeSecs {
		t.Fatalf("normal compute = %v", got)
	}
	if got := cfg.MaxComputeSecs(); got != 5*cfg.Spec.ComputeSecs {
		t.Fatalf("max compute = %v", got)
	}
}

func TestStragglerSlowsAsyncOnlyProportionally(t *testing.T) {
	base := testConfig(4, 4)
	r1 := RunAsync(base, &simpleBehavior{m: 4}, "u")

	slow := testConfig(4, 4)
	slow.ComputeScale = []float64{1, 1, 1, 8}
	r2 := RunAsync(slow, &simpleBehavior{m: 4}, "u")

	ratio := r2.TotalTime / r1.TotalTime
	// Only a quarter of the sample stream is throttled: the run slows, but
	// far less than 8x.
	if ratio <= 1 {
		t.Fatalf("straggler had no effect: %v", ratio)
	}
	if ratio > 4 {
		t.Fatalf("async run slowed %vx, want graceful degradation well below 8x", ratio)
	}
}
