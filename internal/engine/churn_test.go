package engine

import (
	"math/rand"
	"testing"

	"netmax/internal/simnet"
)

// membershipRecorder is simpleBehavior plus membership handling: it masks
// dead peers out of its uniform selection, recording every event.
type membershipRecorder struct {
	m      int
	dead   []bool
	events int
}

func (s *membershipRecorder) SelectPeer(i int, now float64, rng *rand.Rand) int {
	j := rng.Intn(s.m - 1)
	if j >= i {
		j++
	}
	if s.dead != nil && s.dead[j] {
		return i // skip communication rather than pull at a corpse
	}
	return j
}
func (s *membershipRecorder) BlendCoef(i, j int) float64              { return 0.5 }
func (s *membershipRecorder) OnIterationEnd(i, j int, t, now float64) {}
func (s *membershipRecorder) Tick(now float64)                        {}
func (s *membershipRecorder) OnMembership(alive []bool, now float64) {
	if s.dead == nil {
		s.dead = make([]bool, s.m)
	}
	for i, a := range alive {
		s.dead[i] = !a
	}
	s.events++
}

// TestFailureFreeScheduleBitwiseIdentical extends the determinism gate to
// churn configs: attaching an empty FailureSchedule, or one whose events
// all lie beyond the simulated horizon, must reproduce the no-schedule
// trajectory bitwise — at serial and parallel stepping alike.
func TestFailureFreeScheduleBitwiseIdentical(t *testing.T) {
	run := func(fs *simnet.FailureSchedule, par int) *Result {
		cfg := testConfig(4, 3)
		cfg.Net = simnet.NewStatic(simnet.PaperCluster(4))
		cfg.Parallelism = par
		cfg.Failures = fs
		return RunAsync(cfg, &simpleBehavior{m: 4}, "gate")
	}
	ref := run(nil, 1)
	for _, tc := range []struct {
		name string
		fs   *simnet.FailureSchedule
	}{
		{"empty schedule", simnet.NewFailureSchedule()},
		{"events beyond horizon", simnet.NewFailureSchedule().Crash(0, 1e15, 1e15+10).Blackout(1, 2, 1e15, 1e15+5)},
	} {
		for _, par := range []int{1, 4} {
			resultsIdentical(t, tc.name, ref, run(tc.fs, par))
		}
	}
}

// TestChurnCrashRejoinStillConverges is the churn acceptance test: with one
// worker crashing and rejoining mid-run, training must complete every
// epoch, deliver membership events, and keep the loss decreasing in trend.
func TestChurnCrashRejoinStillConverges(t *testing.T) {
	cfg := testConfig(4, 6)
	cfg.Net = simnet.NewStatic(simnet.PaperCluster(4))
	// Find the failure window from a dry run's timescale: iterations are
	// sub-second here, so a crash covering a mid-run stretch of the
	// virtual clock exercises down, rejoin and recovery.
	dry := RunAsync(cfg, &simpleBehavior{m: 4}, "dry")
	crashAt := dry.TotalTime * 0.3
	rejoinAt := dry.TotalTime * 0.6
	fs := simnet.NewFailureSchedule().Crash(2, crashAt, rejoinAt)

	cfg2 := testConfig(4, 6)
	cfg2.Net = simnet.NewStatic(simnet.PaperCluster(4))
	cfg2.Failures = fs
	b := &membershipRecorder{m: 4}
	r := RunAsync(cfg2, b, "churn")

	if r.Epochs != 6 {
		t.Fatalf("churn run completed %d epochs, want 6", r.Epochs)
	}
	if b.events < 2 {
		t.Fatalf("membership events = %d, want >= 2 (crash + rejoin)", b.events)
	}
	if b.dead[2] {
		t.Fatal("worker 2 still masked after rejoin")
	}
	// Loss decreasing in trend: the average of the last two curve points
	// must sit below the average of the first two, and the final loss must
	// be finite.
	n := len(r.Curve)
	if n < 4 {
		t.Fatalf("curve too short: %d points", n)
	}
	early := (r.Curve[0].Value + r.Curve[1].Value) / 2
	late := (r.Curve[n-2].Value + r.Curve[n-1].Value) / 2
	if !(late < early) {
		t.Fatalf("loss trend not decreasing through churn: early %v, late %v", early, late)
	}
	// The crashed worker contributed fewer steps than in the clean run.
	if r.GlobalSteps >= dry.GlobalSteps+10 {
		t.Logf("note: churn run took %d steps vs %d clean", r.GlobalSteps, dry.GlobalSteps)
	}
}

// TestChurnHangChargesDetectionDeadline verifies the undetectable-failure
// path: a hung worker stays in the membership, pulls at it fail after the
// detection deadline, and the puller's clock advances by that deadline.
func TestChurnHangChargesDetectionDeadline(t *testing.T) {
	cfg := testConfig(2, 1)
	cfg.Net = simnet.NewStatic(simnet.PaperCluster(2))
	fs := simnet.NewFailureSchedule().Hang(1, 0, 1e9)
	fs.DetectSecs = 50 // much longer than any real iteration here
	cfg.Failures = fs
	b := &membershipRecorder{m: 2}
	r := RunAsync(cfg, b, "hang")
	if b.events != 0 {
		t.Fatalf("hang emitted %d membership events, want 0", b.events)
	}
	// Worker 0's every pull targets the hung worker 1 and pays the
	// detection deadline, so the run's virtual clock is dominated by it.
	if r.TotalTime < fs.DetectSecs {
		t.Fatalf("TotalTime %v, want >= detection deadline %v", r.TotalTime, fs.DetectSecs)
	}
	if r.BytesSent != 0 {
		t.Fatalf("failed pulls moved %d bytes", r.BytesSent)
	}
}

// TestChurnLeaveDrainsWorker verifies permanent departure: the leaver stops
// contributing steps and the rest finish the run.
func TestChurnLeaveDrainsWorker(t *testing.T) {
	cfg := testConfig(3, 3)
	cfg.Net = simnet.NewStatic(simnet.PaperCluster(3))
	cfg.Failures = simnet.NewFailureSchedule().Leave(2, 0.0001)
	b := &membershipRecorder{m: 3}
	r := RunAsync(cfg, b, "leave")
	if r.Epochs != 3 {
		t.Fatalf("epochs = %d, want 3 (survivors must finish)", r.Epochs)
	}
	if !b.dead[2] {
		t.Fatal("leave not reflected in membership")
	}
}

// TestChurnBlackoutOnlyBlocksLink verifies that a blackout fails pulls over
// one link while both endpoints keep stepping.
func TestChurnBlackoutOnlyBlocksLink(t *testing.T) {
	cfg := testConfig(2, 2)
	cfg.Net = simnet.NewStatic(simnet.PaperCluster(2))
	fs := simnet.NewFailureSchedule().Blackout(0, 1, 0, 1e9)
	fs.DetectSecs = 0.5
	cfg.Failures = fs
	b := &membershipRecorder{m: 2}
	r := RunAsync(cfg, b, "blackout")
	if b.events != 0 {
		t.Fatalf("blackout emitted %d membership events, want 0", b.events)
	}
	if r.Epochs != 2 {
		t.Fatalf("epochs = %d, want 2 (local training must continue)", r.Epochs)
	}
	if r.BytesSent != 0 {
		t.Fatalf("blacked-out link moved %d bytes", r.BytesSent)
	}
}
