package engine

import (
	"math/rand"
	"testing"

	"netmax/internal/codec"
	"netmax/internal/simnet"
)

// lockstepBehavior deterministically pulls from the next worker in the ring.
// On a homogeneous network every iteration takes the same time, so all
// workers' events share every timestamp — the worst case (largest batches)
// for the parallel stepping path.
type lockstepBehavior struct {
	m         int
	symmetric bool
}

func (l *lockstepBehavior) SelectPeer(i int, now float64, rng *rand.Rand) int {
	// Draw from the worker RNG even though the choice is modular, so the
	// test also verifies that RNG consumption order is preserved.
	_ = rng.Float64()
	return (i + 1) % l.m
}
func (l *lockstepBehavior) BlendCoef(i, j int) float64              { return 0.25 }
func (l *lockstepBehavior) OnIterationEnd(i, j int, t, now float64) {}
func (l *lockstepBehavior) Tick(now float64)                        {}
func (l *lockstepBehavior) Symmetric() bool                         { return l.symmetric }

func resultsIdentical(t *testing.T, name string, a, b *Result) {
	t.Helper()
	if a.FinalLoss != b.FinalLoss {
		t.Fatalf("%s: FinalLoss %v vs %v", name, a.FinalLoss, b.FinalLoss)
	}
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("%s: FinalAccuracy %v vs %v", name, a.FinalAccuracy, b.FinalAccuracy)
	}
	if a.TotalTime != b.TotalTime {
		t.Fatalf("%s: TotalTime %v vs %v", name, a.TotalTime, b.TotalTime)
	}
	if a.GlobalSteps != b.GlobalSteps || a.Epochs != b.Epochs || a.BytesSent != b.BytesSent {
		t.Fatalf("%s: steps/epochs/bytes differ: %+v vs %+v", name, a, b)
	}
	if a.CompSecs != b.CompSecs || a.CommSecs != b.CommSecs {
		t.Fatalf("%s: cost decomposition differs", name)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("%s: curve lengths %d vs %d", name, len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("%s: curve[%d] = %+v vs %+v", name, i, a.Curve[i], b.Curve[i])
		}
	}
}

// TestRunAsyncParallelismBitwiseDeterministic is the regression gate for the
// concurrent stepping path: Parallelism 4 must produce a Result — loss
// curve, accuracy, virtual clock, traffic — identical to Parallelism 1 for
// a fixed seed, for one-sided blending, two-sided (symmetric) blending, and
// randomized peer selection under a heterogeneous clock.
func TestRunAsyncParallelismBitwiseDeterministic(t *testing.T) {
	cases := []struct {
		name string
		run  func(par int) *Result
	}{
		{"lockstep one-sided", func(par int) *Result {
			cfg := testConfig(4, 3)
			cfg.Parallelism = par
			return RunAsync(cfg, &lockstepBehavior{m: 4}, "ls")
		}},
		{"lockstep symmetric", func(par int) *Result {
			cfg := testConfig(4, 3)
			cfg.Parallelism = par
			return RunAsync(cfg, &lockstepBehavior{m: 4, symmetric: true}, "lss")
		}},
		{"random peers heterogeneous clock", func(par int) *Result {
			cfg := testConfig(4, 3)
			cfg.Net = simnet.NewStatic(simnet.PaperCluster(4))
			cfg.Parallelism = par
			return RunAsync(cfg, &simpleBehavior{m: 4}, "rnd")
		}},
		{"topk codec one-sided", func(par int) *Result {
			cfg := testConfig(4, 3)
			cfg.Parallelism = par
			cfg.Codec = codec.NewTopK(0.25)
			return RunAsync(cfg, &simpleBehavior{m: 4}, "tk")
		}},
		{"float32 codec symmetric", func(par int) *Result {
			cfg := testConfig(4, 3)
			cfg.Parallelism = par
			cfg.Codec = codec.Float32{}
			return RunAsync(cfg, &lockstepBehavior{m: 4, symmetric: true}, "f32s")
		}},
	}
	for _, tc := range cases {
		serial := tc.run(1)
		parallel := tc.run(4)
		resultsIdentical(t, tc.name, serial, parallel)
	}
}

// TestConcurrentlyCoversAllIndices pins the scheduling helper's contract.
func TestConcurrentlyCoversAllIndices(t *testing.T) {
	for _, par := range []int{1, 2, 7, 64} {
		hits := make([]int, 33)
		Concurrently(len(hits), par, func(k int) { hits[k]++ })
		for k, h := range hits {
			if h != 1 {
				t.Fatalf("par=%d: index %d ran %d times", par, k, h)
			}
		}
	}
}

func TestResolveParallelism(t *testing.T) {
	if got := ResolveParallelism(1); got != 1 {
		t.Fatalf("ResolveParallelism(1) = %d", got)
	}
	if got := ResolveParallelism(6); got != 6 {
		t.Fatalf("ResolveParallelism(6) = %d", got)
	}
	if got := ResolveParallelism(0); got < 1 {
		t.Fatalf("ResolveParallelism(0) = %d, want >= 1", got)
	}
	prev := DefaultParallelism
	DefaultParallelism = 3
	if got := ResolveParallelism(0); got != 3 {
		t.Fatalf("ResolveParallelism(0) with default 3 = %d", got)
	}
	DefaultParallelism = prev
}
