package engine

import (
	"testing"

	"netmax/internal/codec"
)

// runWithCodec executes the uniform async loop under the given codec.
func runWithCodec(t *testing.T, c codec.Codec) *Result {
	t.Helper()
	cfg := testConfig(4, 3)
	cfg.Codec = c
	return RunAsync(cfg, &simpleBehavior{m: 4}, "codec")
}

// TestCodecAwareSimulationBytes checks that the simnet bandwidth model is
// charged the codec's encoded size: float32 halves raw traffic and default
// top-k cuts it by ~4x, while the trained model stays within tolerance.
func TestCodecAwareSimulationBytes(t *testing.T) {
	raw := runWithCodec(t, codec.Raw{})
	f32 := runWithCodec(t, codec.Float32{})
	topk := runWithCodec(t, codec.NewTopK(codec.DefaultTopKFrac))

	if raw.BytesSent == 0 {
		t.Fatal("raw run recorded no traffic")
	}
	// Per-pull normalization: epoch-bounded runs may end on slightly
	// different iteration counts because transfer times differ.
	perStep := func(r *Result) float64 { return float64(r.BytesSent) / float64(r.GlobalSteps) }
	if ratio := perStep(raw) / perStep(f32); ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("float32 traffic ratio = %.3f, want ~2", ratio)
	}
	if ratio := perStep(raw) / perStep(topk); ratio < 2 {
		t.Fatalf("topk traffic ratio = %.3f, want >= 2", ratio)
	}
	// Cheaper transfers must not slow the virtual clock down.
	if f32.TotalTime > raw.TotalTime*1.01 {
		t.Fatalf("float32 virtual time %v exceeds raw %v", f32.TotalTime, raw.TotalTime)
	}
	const tol = 0.05
	if f32.FinalAccuracy < raw.FinalAccuracy-tol {
		t.Fatalf("float32 accuracy %.3f fell below raw %.3f - %.2f", f32.FinalAccuracy, raw.FinalAccuracy, tol)
	}
	if topk.FinalAccuracy < raw.FinalAccuracy-tol {
		t.Fatalf("topk accuracy %.3f fell below raw %.3f - %.2f", topk.FinalAccuracy, raw.FinalAccuracy, tol)
	}
}

// TestCodecSimulationDeterministic pins that compression-aware runs stay
// reproducible: the codecs are deterministic, so two identical runs must
// agree bitwise.
func TestCodecSimulationDeterministic(t *testing.T) {
	a := runWithCodec(t, codec.NewTopK(0.25))
	b := runWithCodec(t, codec.NewTopK(0.25))
	if a.FinalLoss != b.FinalLoss || a.BytesSent != b.BytesSent || a.TotalTime != b.TotalTime {
		t.Fatalf("codec runs diverged: %+v vs %+v", a, b)
	}
}

// TestNilCodecMatchesSeedBehavior guards the seed trajectory: without a
// codec the engine must charge Spec.ModelBytes exactly as before.
func TestNilCodecMatchesSeedBehavior(t *testing.T) {
	cfg := testConfig(4, 1)
	if got, want := cfg.WireBytes(), cfg.Spec.ModelBytes(); got != want {
		t.Fatalf("nil codec WireBytes = %d, want ModelBytes %d", got, want)
	}
	cfg.Codec = codec.Float32{}
	if got, want := cfg.WireBytes(), cfg.Spec.ModelBytes(); got != want {
		t.Fatalf("float32 WireBytes = %d, want %d (float32 matches the 4-byte paper convention)", got, want)
	}
}
