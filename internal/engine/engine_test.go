package engine

import (
	"math"
	"math/rand"
	"testing"

	"netmax/internal/data"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

func testConfig(workers, epochs int) *Config {
	train, test := data.SynthMNIST.Generate(1)
	idx := make([]int, 200)
	for i := range idx {
		idx[i] = i
	}
	return &Config{
		Spec:    nn.SimMobileNet,
		Part:    data.Uniform(train, workers, 1),
		Eval:    train.Slice(idx),
		Test:    test,
		Net:     simnet.NewHomogeneous(simnet.SingleMachine(workers)),
		LR:      0.1,
		Batch:   16,
		Epochs:  epochs,
		Seed:    7,
		Overlap: true,
	}
}

func TestWorkersIdenticalInit(t *testing.T) {
	cfg := testConfig(4, 1)
	ws := cfg.Workers()
	v0 := ws[0].Model.Vector()
	for _, w := range ws[1:] {
		v := w.Model.Vector()
		for i := range v {
			if v[i] != v0[i] {
				t.Fatal("workers start from different models")
			}
		}
	}
}

func TestWorkerBatchScalesWithSegments(t *testing.T) {
	train, test := data.SynthCIFAR100.Generate(2)
	cfg := testConfig(8, 1)
	cfg.Part = data.Segments(train, data.PaperSegments8(), 1)
	cfg.Test = test
	cfg.Batch = 64
	ws := cfg.Workers()
	if ws[0].Batch != 64 {
		t.Fatalf("worker 0 batch = %d, want 64", ws[0].Batch)
	}
	if ws[4].Batch != 128 {
		t.Fatalf("worker 4 (2 segments) batch = %d, want 128", ws[4].Batch)
	}
}

func TestGradStepReducesLocalLoss(t *testing.T) {
	cfg := testConfig(2, 1)
	ws := cfg.Workers()
	w := ws[0]
	first, _ := w.GradStep()
	var last float64
	for i := 0; i < 50; i++ {
		last, _ = w.GradStep()
	}
	if last > first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestGradOnlyDoesNotChangeModel(t *testing.T) {
	cfg := testConfig(2, 1)
	w := cfg.Workers()[0]
	before := w.Model.Vector()
	w.GradOnly()
	after := w.Model.Vector()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("GradOnly modified parameters")
		}
	}
}

func TestApplyGradMovesAgainstGradient(t *testing.T) {
	cfg := testConfig(2, 1)
	w := cfg.Workers()[0]
	w.GradOnly()
	g := w.Model.GradVector(make([]float64, w.Model.VectorLen()))
	before := w.Model.Vector()
	w.ApplyGrad(g)
	after := w.Model.Vector()
	// First step with momentum: delta = -lr * (g + wd*x).
	moved := false
	for i := range before {
		if before[i] != after[i] {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("ApplyGrad did not move parameters")
	}
}

func TestQueueOrdering(t *testing.T) {
	var q Queue
	q.Push(3, 0)
	q.Push(1, 1)
	q.Push(2, 2)
	times := []float64{}
	for q.Len() > 0 {
		tm, _ := q.Pop()
		times = append(times, tm)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatalf("queue not ordered: %v", times)
		}
	}
}

func TestQueueFIFOTieBreak(t *testing.T) {
	var q Queue
	q.Push(1, 10)
	q.Push(1, 20)
	q.Push(1, 30)
	_, a := q.Pop()
	_, b := q.Pop()
	_, c := q.Pop()
	if a != 10 || b != 20 || c != 30 {
		t.Fatalf("tie-break not FIFO: %d %d %d", a, b, c)
	}
}

func TestTrackerEpochDetection(t *testing.T) {
	cfg := testConfig(4, 3)
	ws := cfg.Workers()
	tr := NewTracker(cfg, ws, "test")
	total := 0
	for _, s := range cfg.Part.Shards {
		total += s.Len()
	}
	tr.OnIteration(1.0, total-1, 0.1, 0.2)
	if tr.EpochsDone() != 0 {
		t.Fatal("epoch counted early")
	}
	tr.OnIteration(2.0, 1, 0.1, 0.2)
	if tr.EpochsDone() != 1 {
		t.Fatalf("epochs = %d, want 1", tr.EpochsDone())
	}
	if len(tr.res.Curve) != 1 {
		t.Fatalf("curve points = %d, want 1", len(tr.res.Curve))
	}
	tr.OnIteration(3.0, 2*total, 0.1, 0.2)
	if tr.EpochsDone() != 3 {
		t.Fatalf("epochs = %d, want 3 after bulk samples", tr.EpochsDone())
	}
	if !tr.Done() {
		t.Fatal("tracker should be done after 3 epochs")
	}
}

func TestTrackerCostAccumulation(t *testing.T) {
	cfg := testConfig(2, 10)
	ws := cfg.Workers()
	tr := NewTracker(cfg, ws, "test")
	tr.OnIteration(1.0, 1, 0.5, 1.5)
	tr.OnIteration(2.0, 1, 0.5, 0.5)
	r := tr.Finish()
	if math.Abs(r.CompSecs-1.0) > 1e-12 || math.Abs(r.CommSecs-2.0) > 1e-12 {
		t.Fatalf("costs = %v/%v, want 1/2", r.CompSecs, r.CommSecs)
	}
	if r.GlobalSteps != 2 {
		t.Fatalf("steps = %d", r.GlobalSteps)
	}
	if r.TotalTime != 2.0 {
		t.Fatalf("total time = %v", r.TotalTime)
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{
		Curve:     []Point{{Time: 10, Epoch: 1, Value: 0.9}, {Time: 20, Epoch: 2, Value: 0.4}, {Time: 30, Epoch: 3, Value: 0.2}},
		Epochs:    3,
		TotalTime: 30,
		CompSecs:  6,
		CommSecs:  12,
	}
	if got := r.TimeToLoss(0.5); got != 20 {
		t.Fatalf("TimeToLoss = %v", got)
	}
	if got := r.TimeToLoss(0.1); got != -1 {
		t.Fatalf("TimeToLoss unreachable = %v", got)
	}
	if got := r.EpochToLoss(0.4); got != 2 {
		t.Fatalf("EpochToLoss = %v", got)
	}
	if got := r.AvgEpochTime(); got != 10 {
		t.Fatalf("AvgEpochTime = %v", got)
	}
	if got := r.CompCostPerEpoch(2); got != 1 {
		t.Fatalf("CompCostPerEpoch = %v", got)
	}
	if got := r.CommCostPerEpoch(2); got != 2 {
		t.Fatalf("CommCostPerEpoch = %v", got)
	}
}

func TestAverageModelIsMean(t *testing.T) {
	cfg := testConfig(2, 1)
	ws := cfg.Workers()
	// Perturb worker 1.
	v := ws[1].Model.Vector()
	for i := range v {
		v[i] += 2
	}
	ws[1].Model.SetVector(v)
	avg := AverageModel(cfg, ws)
	av := avg.Vector()
	v0 := ws[0].Model.Vector()
	for i := range av {
		want := v0[i] + 1
		if math.Abs(av[i]-want) > 1e-12 {
			t.Fatalf("avg[%d] = %v, want %v", i, av[i], want)
		}
	}
}

// simpleBehavior is a uniform-random async behavior for engine-level tests.
type simpleBehavior struct{ m int }

func (s *simpleBehavior) SelectPeer(i int, now float64, rng *rand.Rand) int {
	j := rng.Intn(s.m - 1)
	if j >= i {
		j++
	}
	return j
}
func (s *simpleBehavior) BlendCoef(i, j int) float64              { return 0.5 }
func (s *simpleBehavior) OnIterationEnd(i, j int, t, now float64) {}
func (s *simpleBehavior) Tick(now float64)                        {}

func TestRunAsyncConvergesAndTerminates(t *testing.T) {
	cfg := testConfig(4, 8)
	r := RunAsync(cfg, &simpleBehavior{m: 4}, "uniform")
	if r.Epochs != 8 {
		t.Fatalf("epochs = %d, want 8", r.Epochs)
	}
	if len(r.Curve) != 8 {
		t.Fatalf("curve points = %d, want 8", len(r.Curve))
	}
	if r.FinalLoss >= r.Curve[0].Value {
		t.Fatalf("loss did not decrease: %v -> %v", r.Curve[0].Value, r.FinalLoss)
	}
	if r.FinalAccuracy < 0.8 {
		t.Fatalf("accuracy = %v, want >= 0.8 on easy MNIST", r.FinalAccuracy)
	}
	if r.TotalTime <= 0 || r.GlobalSteps == 0 {
		t.Fatalf("timing missing: %+v", r)
	}
}

func TestRunAsyncDeterministic(t *testing.T) {
	a := RunAsync(testConfig(4, 3), &simpleBehavior{m: 4}, "u")
	b := RunAsync(testConfig(4, 3), &simpleBehavior{m: 4}, "u")
	if a.TotalTime != b.TotalTime || a.FinalLoss != b.FinalLoss || a.GlobalSteps != b.GlobalSteps {
		t.Fatalf("non-deterministic: %v/%v vs %v/%v", a.TotalTime, a.FinalLoss, b.TotalTime, b.FinalLoss)
	}
}

func TestRunAsyncMonotonicCurveTimes(t *testing.T) {
	r := RunAsync(testConfig(4, 5), &simpleBehavior{m: 4}, "u")
	for i := 1; i < len(r.Curve); i++ {
		if r.Curve[i].Time < r.Curve[i-1].Time {
			t.Fatalf("curve times not monotonic: %v", r.Curve)
		}
		if r.Curve[i].Epoch <= r.Curve[i-1].Epoch {
			t.Fatalf("curve epochs not increasing: %v", r.Curve)
		}
	}
}

func TestLRDecayApplied(t *testing.T) {
	cfg := testConfig(2, 4)
	cfg.LRDecayEpoch = 2
	ws := cfg.Workers()
	tr := NewTracker(cfg, ws, "t")
	total := 0
	for _, s := range cfg.Part.Shards {
		total += s.Len()
	}
	tr.OnIteration(1, total, 0, 0) // epoch 1
	if ws[0].Opt.LR != cfg.LR {
		t.Fatal("LR decayed too early")
	}
	tr.OnIteration(2, total, 0, 0) // epoch 2
	if math.Abs(ws[0].Opt.LR-cfg.LR*0.1) > 1e-12 {
		t.Fatalf("LR = %v after decay epoch, want %v", ws[0].Opt.LR, cfg.LR*0.1)
	}
}

func TestSerialSlowerThanOverlap(t *testing.T) {
	mk := func(overlap bool) *Config {
		cfg := testConfig(4, 3)
		cfg.Net = simnet.NewStatic(simnet.PaperCluster(4))
		cfg.Spec = nn.SimResNet18
		cfg.Overlap = overlap
		return cfg
	}
	over := RunAsync(mk(true), &simpleBehavior{m: 4}, "o")
	serial := RunAsync(mk(false), &simpleBehavior{m: 4}, "s")
	if serial.TotalTime <= over.TotalTime {
		t.Fatalf("serial (%v) should be slower than overlapped (%v)", serial.TotalTime, over.TotalTime)
	}
}
