// Package engine runs decentralized training algorithms on a virtual clock.
//
// The paper evaluates on a real cluster; here every algorithm is executed as
// a deterministic discrete-event simulation: worker iterations are events on
// a priority queue ordered by virtual completion time, and all timing comes
// from internal/simnet. The gradient work is real (internal/nn on the
// synthetic datasets), so loss curves are genuine SGD trajectories — only
// the clock is simulated.
package engine

import (
	"container/heap"
	"math/rand"

	"netmax/internal/autograd"
	"netmax/internal/codec"
	"netmax/internal/data"
	"netmax/internal/nn"
	"netmax/internal/simnet"
	"netmax/internal/tensor"
)

// backward runs reverse-mode autodiff on a scalar loss.
func backward(v *autograd.Value) { autograd.Backward(v) }

// Config describes one training run.
type Config struct {
	Spec nn.ModelSpec
	// Part provides each worker's shard; Part.Segments scales batch sizes
	// under the paper's non-uniform setting (batch = Batch x segments).
	Part *data.Partition
	// Eval is the dataset used for the global-loss curve (a train subset).
	Eval *data.Dataset
	// Test is used for final accuracy.
	Test *data.Dataset
	Net  *simnet.Network
	// LR is the SGD learning rate α (paper default 0.1).
	LR float64
	// Batch is the per-segment batch size (paper: 128 uniform, 64 per
	// segment in Section V-F, 32 non-IID).
	Batch int
	// Epochs is the number of passes over the union of shards.
	Epochs int
	// Seed controls model init and all stochastic choices.
	Seed int64
	// Overlap enables the compute/communication overlap of Algorithm 2
	// (true everywhere except the fig7 serial ablation).
	Overlap bool
	// LRDecayEpoch, if positive, divides the learning rate by 10 once that
	// epoch completes (the paper's step decay).
	LRDecayEpoch int
	// ComputeScale, if non-nil, multiplies worker i's gradient-computation
	// time by ComputeScale[i] — compute heterogeneity (stragglers), the
	// resource dimension the paper's related work (Prague, Hop) targets.
	// Nil means every worker computes at the model's nominal speed.
	ComputeScale []float64
	// Parallelism bounds how many workers' gradient computations run
	// concurrently on the host when their virtual-clock events are
	// independent: 0 defers to DefaultParallelism (and ultimately NumCPU),
	// 1 reproduces the historical serial loop, n > 1 allows n concurrent
	// steps. Every setting produces bitwise-identical results — parallel
	// stepping only reorders host work, never virtual-clock arithmetic.
	Parallelism int
	// Codec, when non-nil, makes the asynchronous pull loop
	// compression-aware: pulled model snapshots round-trip through the
	// codec (so quantization/sparsification loss shows up in the training
	// trajectory) and the simnet bandwidth model is charged the codec's
	// encoded size for the paper model instead of the dense
	// Spec.ModelBytes. Nil reproduces the uncompressed simulation exactly.
	Codec codec.Codec
	// Failures, when non-nil and non-empty, injects the schedule's churn
	// into the asynchronous loop: crashed/hung workers stop iterating
	// (in-flight iterations are discarded), pulls at unresponsive peers or
	// blacked-out links fail after the schedule's detection deadline, and
	// crash/leave/rejoin boundaries are emitted as membership events to
	// behaviors implementing MembershipAware. A nil or empty schedule
	// reproduces the failure-free trajectory bitwise.
	Failures *simnet.FailureSchedule
}

// WireBytes returns the per-pull traffic the bandwidth model charges: the
// codec's encoded size for the paper model when a codec is configured,
// otherwise the dense Spec.ModelBytes.
func (c *Config) WireBytes() int64 {
	if c.Codec != nil {
		return c.Codec.WireBytes(int(c.Spec.RealParams))
	}
	return c.Spec.ModelBytes()
}

// EffectiveParallelism resolves the config's Parallelism setting.
func (c *Config) EffectiveParallelism() int { return ResolveParallelism(c.Parallelism) }

// ComputeSecs returns worker i's per-iteration gradient time under the
// configured compute heterogeneity.
func (c *Config) ComputeSecs(i int) float64 {
	s := c.Spec.ComputeSecs
	if c.ComputeScale != nil {
		s *= c.ComputeScale[i]
	}
	return s
}

// MaxComputeSecs returns the slowest worker's gradient time: the round
// compute cost of barrier-synchronized algorithms.
func (c *Config) MaxComputeSecs() float64 {
	if c.ComputeScale == nil {
		return c.Spec.ComputeSecs
	}
	maxScale := 0.0
	for _, s := range c.ComputeScale {
		if s > maxScale {
			maxScale = s
		}
	}
	if maxScale < 1e-12 {
		return c.Spec.ComputeSecs
	}
	return c.Spec.ComputeSecs * maxScale
}

// Workers instantiates the worker pool: identical initial models (same
// seed), per-worker RNG streams, shard-proportional batch sizes.
func (c *Config) Workers() []*Worker {
	m := len(c.Part.Shards)
	ws := make([]*Worker, m)
	dim := c.Part.Shards[0].Dim()
	classes := c.Part.Shards[0].Classes
	for i := 0; i < m; i++ {
		batch := c.Batch * c.Part.Segments[i]
		if batch > c.Part.Shards[i].Len() {
			batch = c.Part.Shards[i].Len()
		}
		ws[i] = &Worker{
			ID:    i,
			Model: c.Spec.Build(c.Seed, dim, classes),
			Opt:   nn.NewSGD(c.LR),
			Shard: c.Part.Shards[i],
			Batch: batch,
			Rng:   rand.New(rand.NewSource(c.Seed*1000 + int64(i))),
		}
	}
	return ws
}

// Worker is one training replica.
type Worker struct {
	ID     int
	Model  *nn.Model
	Opt    *nn.SGD
	Shard  *data.Dataset
	Batch  int
	Rng    *rand.Rand
	cursor int
}

// NextBatch returns the worker's next training batch and advances its
// cursor. Split out from GradStep so batch selection (which must follow the
// deterministic event order) can be separated from gradient computation
// (which may run concurrently with other workers').
func (w *Worker) NextBatch() (x *tensor.Tensor, labels []int) {
	x, labels = w.Shard.Batch(w.cursor, w.Batch)
	w.cursor = (w.cursor + w.Batch) % w.Shard.Len()
	return x, labels
}

// ComputeGrad runs forward+backward on (x, labels), leaving the gradients in
// the model's Grad buffers, and returns the batch loss. It touches only this
// worker's replica, so distinct workers' ComputeGrad calls are safe to run
// concurrently.
func (w *Worker) ComputeGrad(x *tensor.Tensor, labels []int) float64 {
	w.Model.ZeroGrad()
	l := w.Model.Loss(x, labels)
	backward(l)
	return l.Item()
}

// ApplyStep applies the optimizer to the gradients left by ComputeGrad
// (Algorithm 2 line 11: first update).
func (w *Worker) ApplyStep() { w.Opt.Step(w.Model) }

// GradStep runs one local SGD step (Algorithm 2 line 11: first update) on
// the worker's next batch and returns the batch loss and sample count.
func (w *Worker) GradStep() (loss float64, samples int) {
	x, labels := w.NextBatch()
	loss = w.ComputeGrad(x, labels)
	w.ApplyStep()
	return loss, w.Batch
}

// GradOnly computes gradients on the worker's next batch without applying
// them (they remain in the model's Grad buffers), for algorithms that
// average gradients across workers before stepping (Allreduce-SGD, PS-syn).
func (w *Worker) GradOnly() (loss float64, samples int) {
	x, labels := w.NextBatch()
	return w.ComputeGrad(x, labels), w.Batch
}

// ApplyGrad runs the worker's optimizer against the gradient vector g
// instead of the locally computed one.
func (w *Worker) ApplyGrad(g []float64) {
	w.Model.SetGradVector(g)
	w.Opt.Step(w.Model)
}

// Point is one sample of a training curve.
type Point struct {
	Time  float64 // virtual seconds since training start
	Epoch float64 // fractional epochs completed
	Value float64 // metric (loss or accuracy)
}

// Result aggregates everything the evaluation figures need from one run.
type Result struct {
	Algo string
	// Loss curve sampled at (fractional) epoch boundaries.
	Curve []Point
	// FinalLoss is the last curve value.
	FinalLoss float64
	// FinalAccuracy on the held-out test set, of the averaged model.
	FinalAccuracy float64
	// TotalTime is the virtual wall-clock of the full run.
	TotalTime float64
	// GlobalSteps counts worker iterations across the cluster.
	GlobalSteps int
	// CompSecs and CommSecs decompose worker busy time per Section V-B:
	// per iteration, computation contributes C and communication the
	// non-overlapped remainder (max(0, N-C) when overlapped, N serial).
	CompSecs, CommSecs float64
	// BytesSent is the total traffic the algorithm put on the network.
	BytesSent int64
	// Epochs actually completed.
	Epochs int
}

// AvgEpochTime returns TotalTime / Epochs.
func (r *Result) AvgEpochTime() float64 {
	if r.Epochs == 0 {
		return 0
	}
	return r.TotalTime / float64(r.Epochs)
}

// CompCostPerEpoch and CommCostPerEpoch are the Fig. 5/6 bar components:
// average per-worker-epoch time attributable to computation/communication.
func (r *Result) CompCostPerEpoch(workers int) float64 {
	if r.Epochs == 0 || workers == 0 {
		return 0
	}
	return r.CompSecs / float64(r.Epochs) / float64(workers)
}

// CommCostPerEpoch is the communication counterpart of CompCostPerEpoch.
func (r *Result) CommCostPerEpoch(workers int) float64 {
	if r.Epochs == 0 || workers == 0 {
		return 0
	}
	return r.CommSecs / float64(r.Epochs) / float64(workers)
}

// TimeToLoss returns the earliest virtual time at which the loss curve
// reaches target, or -1 if it never does.
func (r *Result) TimeToLoss(target float64) float64 {
	for _, p := range r.Curve {
		if p.Value <= target {
			return p.Time
		}
	}
	return -1
}

// EpochToLoss returns the earliest epoch at which the loss curve reaches
// target, or -1 if it never does.
func (r *Result) EpochToLoss(target float64) float64 {
	for _, p := range r.Curve {
		if p.Value <= target {
			return p.Epoch
		}
	}
	return -1
}

// AverageModel returns a model holding the elementwise mean of all worker
// parameter vectors — the consensus model the paper evaluates.
func AverageModel(cfg *Config, ws []*Worker) *nn.Model {
	avg := make([]float64, ws[0].Model.VectorLen())
	tmp := make([]float64, len(avg))
	for _, w := range ws {
		w.Model.CopyVector(tmp)
		for i := range avg {
			avg[i] += tmp[i]
		}
	}
	for i := range avg {
		avg[i] /= float64(len(ws))
	}
	m := cfg.Spec.Build(cfg.Seed, cfg.Part.Shards[0].Dim(), cfg.Part.Shards[0].Classes)
	m.SetVector(avg)
	return m
}

// Tracker accumulates per-iteration bookkeeping shared by all algorithm
// runners: epoch detection, loss sampling, cost decomposition.
type Tracker struct {
	cfg        *Config
	ws         []*Worker
	totalTrain int
	samples    int
	epochsDone int
	res        *Result
	evalX      *tensor.Tensor
	evalLabels []int
}

// NewTracker builds a tracker. The loss curve is evaluated on cfg.Eval.
func NewTracker(cfg *Config, ws []*Worker, algo string) *Tracker {
	total := 0
	for _, s := range cfg.Part.Shards {
		total += s.Len()
	}
	t := &Tracker{cfg: cfg, ws: ws, totalTrain: total, res: &Result{Algo: algo}}
	t.evalX, t.evalLabels = cfg.Eval.Batch(0, cfg.Eval.Len())
	return t
}

// OnIteration records one worker iteration that ended at virtual time now.
func (t *Tracker) OnIteration(now float64, samples int, compSecs, commSecs float64) {
	t.samples += samples
	t.res.GlobalSteps++
	t.res.CompSecs += compSecs
	t.res.CommSecs += commSecs
	if now > t.res.TotalTime {
		t.res.TotalTime = now
	}
	for t.samples >= (t.epochsDone+1)*t.totalTrain {
		t.epochsDone++
		t.recordPoint(now)
		if t.cfg.LRDecayEpoch > 0 && t.epochsDone == t.cfg.LRDecayEpoch {
			for _, w := range t.ws {
				w.Opt.DecayLR(0.1)
			}
		}
	}
}

// AddBytes records network traffic attributable to the run.
func (t *Tracker) AddBytes(n int64) { t.res.BytesSent += n }

// Done reports whether the configured number of epochs has completed.
func (t *Tracker) Done() bool { return t.epochsDone >= t.cfg.Epochs }

// EpochsDone returns the completed epoch count.
func (t *Tracker) EpochsDone() int { return t.epochsDone }

func (t *Tracker) recordPoint(now float64) {
	avg := AverageModel(t.cfg, t.ws)
	loss := avg.Loss(t.evalX, t.evalLabels).Item()
	t.res.Curve = append(t.res.Curve, Point{Time: now, Epoch: float64(t.epochsDone), Value: loss})
}

// Finish computes final metrics and returns the result.
func (t *Tracker) Finish() *Result {
	t.res.Epochs = t.epochsDone
	if n := len(t.res.Curve); n > 0 {
		t.res.FinalLoss = t.res.Curve[n-1].Value
	}
	avg := AverageModel(t.cfg, t.ws)
	x, labels := t.cfg.Test.Batch(0, t.cfg.Test.Len())
	t.res.FinalAccuracy = avg.Accuracy(x, labels)
	return t.res
}

// event is one scheduled worker completion.
type event struct {
	time float64
	id   int
	seq  int // tiebreaker for determinism
}

// Queue is a deterministic min-heap of worker completion events.
type Queue struct {
	h   eventHeap
	seq int
}

// Push schedules worker id to complete at the given virtual time.
func (q *Queue) Push(time float64, id int) {
	q.seq++
	heap.Push(&q.h, event{time: time, id: id, seq: q.seq})
}

// Pop returns the earliest event.
func (q *Queue) Pop() (time float64, id int) {
	e := heap.Pop(&q.h).(event)
	return e.time, e.id
}

// PeekTime returns the earliest pending event's time without removing it;
// ok is false when the queue is empty.
func (q *Queue) PeekTime() (time float64, ok bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].time, true
}

// Len returns the number of pending events.
func (q *Queue) Len() int { return q.h.Len() }

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
