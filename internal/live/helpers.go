package live

import "netmax/internal/autograd"

// backward runs reverse-mode autodiff on a scalar loss.
func backward(v *autograd.Value) { autograd.Backward(v) }
