// Package live runs NetMax as an actual concurrent process group — real
// goroutine workers exchanging models over a Transport, a real Network
// Monitor regenerating policies on a wall-clock timer — as opposed to the
// discrete-event simulation in internal/engine. This is the deployment-
// shaped half of the reproduction: the examples use the in-process
// transport with injected latency, and cmd/netmax-live uses TCP.
package live

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"netmax/internal/codec"
	"netmax/internal/data"
	"netmax/internal/monitor"
	"netmax/internal/nn"
	"netmax/internal/policy"
	"netmax/internal/transport"
)

// Config describes a live NetMax group.
type Config struct {
	Spec  nn.ModelSpec
	Part  *data.Partition
	Test  *data.Dataset
	LR    float64
	Batch int
	Seed  int64
	// Ts is the monitor's wall-clock policy period.
	Ts time.Duration
	// Beta is the EMA smoothing factor.
	Beta float64
	// Duration bounds the run (wall clock); zero means rely on Iterations.
	Duration time.Duration
	// Iterations bounds per-worker iterations; zero means rely on Duration.
	Iterations int
	// Uniform disables the adaptive policy (AD-PSGD-style selection).
	Uniform bool
	// Codec compresses model pulls on the wire (nil keeps the transport's
	// default raw float64 encoding). Sparse codecs turn pulls into partial
	// model pulls: untransmitted coordinates keep the puller's local value.
	Codec codec.Codec
}

// Stats summarizes a live run.
type Stats struct {
	// IterationsPerWorker counts completed iterations per worker.
	IterationsPerWorker []int
	// FinalAccuracy of the averaged model on the test set.
	FinalAccuracy float64
	// FinalLoss of the averaged model on the test set.
	FinalLoss float64
	// PolicyVersions is the number of policy broadcasts observed.
	PolicyVersions int
	// BytesOnWire is the total encoded payload volume of all model pulls,
	// as produced by the configured codec.
	BytesOnWire int64
	// Pulls counts completed cross-worker model pulls.
	Pulls int64
	// Elapsed wall time.
	Elapsed time.Duration
}

// worker is one live training replica.
type worker struct {
	id    int
	model *nn.Model
	mu    sync.Mutex // guards model vector reads vs. local updates
	opt   *nn.SGD
	shard *data.Dataset
	batch int
	rng   *rand.Rand

	p       [][]float64
	rho     float64
	version int
	ema     []float64
}

func (w *worker) vector() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.model.Vector()
}

// Hub is the transport surface the live group needs; both
// transport.LocalNet (in-process, injectable latency) and transport.TCPHub
// (loopback sockets) satisfy it.
type Hub interface {
	Register(id int, src transport.ModelSource)
	Peer(from, to int) transport.Peer
	Monitor() transport.MonitorClient
	SetPolicy(p [][]float64, rho float64)
	SetCodec(c codec.Codec)
	OnReport(f func(from, to int, secs float64, bytes int64))
}

// Run executes the live group until the configured bound and returns stats.
// The transport hub must be fresh; Run registers all workers on it.
func Run(ctx context.Context, cfg Config, hub Hub) *Stats {
	m := len(cfg.Part.Shards)
	adj := fullAdj(m)
	dim := cfg.Part.Shards[0].Dim()
	classes := cfg.Part.Shards[0].Classes

	ts := cfg.Ts
	if ts <= 0 {
		ts = 500 * time.Millisecond
	}
	beta := cfg.Beta
	if beta <= 0 || beta >= 1 {
		beta = 0.5
	}

	if cfg.Codec != nil {
		hub.SetCodec(cfg.Codec)
	}
	mon := monitor.New(monitor.Config{Adj: adj, Alpha: cfg.LR, Period: ts.Seconds()})
	hub.OnReport(func(from, to int, secs float64, bytes int64) {
		mon.Observe(from, to, secs)
		mon.ObserveBytes(from, to, bytes)
	})

	workers := make([]*worker, m)
	for i := 0; i < m; i++ {
		batch := cfg.Batch
		if batch > cfg.Part.Shards[i].Len() {
			batch = cfg.Part.Shards[i].Len()
		}
		w := &worker{
			id:    i,
			model: cfg.Spec.Build(cfg.Seed, dim, classes),
			opt:   nn.NewSGD(cfg.LR),
			shard: cfg.Part.Shards[i],
			batch: batch,
			rng:   rand.New(rand.NewSource(cfg.Seed*1000 + int64(i))),
			p:     policy.Uniform(adj),
			rho:   1 / (8 * cfg.LR * float64(m-1)),
			ema:   make([]float64, m),
		}
		workers[i] = w
		hub.Register(i, w.vector)
	}

	// Always derive a cancellable context: when the run is bounded by
	// Iterations rather than Duration, the monitor goroutine must still be
	// stopped once the workers finish.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	start := time.Now()
	// Monitor loop: wall-clock periodic policy regeneration.
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		ticker := time.NewTicker(ts)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				if cfg.Uniform {
					continue
				}
				if pol, ok := mon.MaybeRegenerate(time.Since(start).Seconds()); ok {
					hub.SetPolicy(pol.P, pol.Rho)
				}
			}
		}
	}()

	counts := make([]int, m)
	var wireBytes, pulls atomic.Int64
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			monClient := hub.Monitor()
			for it := 0; cfg.Iterations == 0 || it < cfg.Iterations; it++ {
				select {
				case <-runCtx.Done():
					return
				default:
				}
				// Adopt a newer policy if one was broadcast.
				if p, rho, v, err := monClient.FetchPolicy(); err == nil && v > w.version && p != nil {
					w.p, w.rho, w.version = p, rho, v
				}
				j := samplePeer(w.p[w.id], w.id, w.rng)
				iterStart := time.Now()
				// Pull the neighbor's model concurrently with the local
				// gradient step (Algorithm 2's overlap). The pull arrives
				// undecoded; decoding waits for the blend step so sparse
				// codecs substitute the post-step vector — not a stale
				// snapshot — on untransmitted coordinates.
				var pulled *transport.Pull
				var pullErr error
				done := make(chan struct{})
				if j != w.id {
					go func() {
						pulled, pullErr = hub.Peer(w.id, j).PullModel()
						close(done)
					}()
				} else {
					close(done)
				}
				w.gradStep(it)
				<-done
				if j != w.id && pullErr == nil && pulled != nil {
					coef := w.blendCoef(cfg.LR, j)
					w.mu.Lock()
					var prior []float64
					if pulled.NeedsPrior() {
						prior = w.model.Vector()
					}
					vec, decErr := pulled.Decode(prior)
					if decErr == nil {
						w.model.BlendVector(coef, vec)
					}
					w.mu.Unlock()
					if decErr == nil {
						pulledBytes := pulled.WireBytes()
						wireBytes.Add(pulledBytes)
						pulls.Add(1)
						secs := time.Since(iterStart).Seconds()
						if w.ema[j] == 0 {
							w.ema[j] = secs
						} else {
							w.ema[j] = beta*w.ema[j] + (1-beta)*secs
						}
						_ = monClient.ReportTime(w.id, j, w.ema[j], pulledBytes)
					}
				}
				counts[w.id]++ // safe: one writer per index
			}
		}(w)
	}
	wg.Wait()
	cancel()
	<-monDone

	// Final consensus model: elementwise mean.
	avg := cfg.Spec.Build(cfg.Seed, dim, classes)
	vec := make([]float64, avg.VectorLen())
	tmp := make([]float64, avg.VectorLen())
	for _, w := range workers {
		copy(tmp, w.vector())
		for i := range vec {
			vec[i] += tmp[i]
		}
	}
	for i := range vec {
		vec[i] /= float64(m)
	}
	avg.SetVector(vec)
	x, labels := cfg.Test.Batch(0, cfg.Test.Len())
	_, _, version, _ := hub.Monitor().FetchPolicy()
	return &Stats{
		IterationsPerWorker: counts,
		FinalAccuracy:       avg.Accuracy(x, labels),
		FinalLoss:           avg.Loss(x, labels).Item(),
		PolicyVersions:      version,
		BytesOnWire:         wireBytes.Load(),
		Pulls:               pulls.Load(),
		Elapsed:             time.Since(start),
	}
}

func (w *worker) gradStep(it int) {
	x, labels := w.shard.Batch(it*w.batch%w.shard.Len(), w.batch)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.model.ZeroGrad()
	loss := w.model.Loss(x, labels)
	backward(loss)
	w.opt.Step(w.model)
}

func (w *worker) blendCoef(alpha float64, j int) float64 {
	pij := w.p[w.id][j]
	if pij <= 0 {
		return 0
	}
	c := alpha * w.rho * 2 / (2 * pij)
	if c > 1 {
		c = 1
	}
	return c
}

func samplePeer(row []float64, self int, rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for j, pj := range row {
		acc += pj
		if r < acc {
			return j
		}
	}
	return self
}

func fullAdj(m int) [][]bool {
	adj := make([][]bool, m)
	for i := range adj {
		adj[i] = make([]bool, m)
		for j := range adj[i] {
			adj[i][j] = i != j
		}
	}
	return adj
}
