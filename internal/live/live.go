// Package live runs NetMax as an actual concurrent process group — real
// goroutine workers exchanging models over a Transport, a real Network
// Monitor regenerating policies on a wall-clock timer — as opposed to the
// discrete-event simulation in internal/engine. This is the deployment-
// shaped half of the reproduction: the examples use the in-process
// transport with injected latency, and cmd/netmax-live uses TCP.
package live

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"netmax/internal/codec"
	"netmax/internal/data"
	"netmax/internal/monitor"
	"netmax/internal/nn"
	"netmax/internal/policy"
	"netmax/internal/transport"
)

// Config describes a live NetMax group.
type Config struct {
	Spec  nn.ModelSpec
	Part  *data.Partition
	Test  *data.Dataset
	LR    float64
	Batch int
	Seed  int64
	// Ts is the monitor's wall-clock policy period.
	Ts time.Duration
	// Beta is the EMA smoothing factor.
	Beta float64
	// Duration bounds the run (wall clock); zero means rely on Iterations.
	Duration time.Duration
	// Iterations bounds per-worker iterations; zero means rely on Duration.
	Iterations int
	// Uniform disables the adaptive policy (AD-PSGD-style selection).
	Uniform bool
	// Codec compresses model pulls on the wire (nil keeps the transport's
	// default raw float64 encoding). Sparse codecs turn pulls into partial
	// model pulls: untransmitted coordinates keep the puller's local value.
	Codec codec.Codec
	// PullTimeout bounds every model pull and monitor exchange: a hung or
	// dead peer costs at most one deadline instead of blocking the worker
	// forever. Zero selects the 2s default; negative disables deadlines.
	PullTimeout time.Duration
	// StalePeriods configures the monitor's liveness tracking: a worker
	// silent for this many Ts periods is evicted and policies regenerate
	// over the live subgraph. Zero selects the default of 3; negative
	// disables eviction.
	StalePeriods int
	// Churn schedules wall-clock crash/rejoin events for workers: the
	// worker goes silent (and its transport endpoint refuses pulls) at At,
	// and resumes at Rejoin with the parameters it held when it crashed.
	Churn []ChurnEvent
}

// ChurnEvent is one scheduled live crash. Rejoin at or before At means the
// worker leaves permanently.
type ChurnEvent struct {
	Worker int
	At     time.Duration // since run start
	Rejoin time.Duration // since run start; <= At means permanent
}

// DefaultPullTimeout is the conservative per-call deadline applied when
// Config.PullTimeout is zero.
const DefaultPullTimeout = 2 * time.Second

// DefaultStalePeriods is the monitor liveness window (in Ts periods)
// applied when Config.StalePeriods is zero.
const DefaultStalePeriods = 3

// Stats summarizes a live run.
type Stats struct {
	// IterationsPerWorker counts completed iterations per worker.
	IterationsPerWorker []int
	// FinalAccuracy of the averaged model on the test set.
	FinalAccuracy float64
	// FinalLoss of the averaged model on the test set.
	FinalLoss float64
	// PolicyVersions is the number of policy broadcasts observed.
	PolicyVersions int
	// BytesOnWire is the total encoded payload volume of all model pulls,
	// as produced by the configured codec.
	BytesOnWire int64
	// Pulls counts completed cross-worker model pulls.
	Pulls int64
	// PeerDownErrors counts pulls that failed with transport.ErrPeerDown
	// (dead or hung peers, expired deadlines).
	PeerDownErrors int64
	// Elapsed wall time.
	Elapsed time.Duration
}

// worker is one live training replica.
type worker struct {
	id    int
	model *nn.Model
	mu    sync.Mutex // guards model vector reads vs. local updates
	opt   *nn.SGD
	shard *data.Dataset
	batch int
	rng   *rand.Rand

	p       [][]float64
	rho     float64
	version int
	ema     []float64

	// masked marks peers whose pulls failed with ErrPeerDown; a masked
	// peer is skipped in selection until the monitor reacts (a new policy
	// version arrives) or a retry cooldown expires. Owned by the worker
	// goroutine — no locking.
	masked   []bool
	maskedAt []time.Time

	churn    []ChurnEvent // this worker's crash schedule, ascending by At
	churnIdx int
}

func (w *worker) vector() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.model.Vector()
}

// Hub is the transport surface the live group needs; both
// transport.LocalNet (in-process, injectable latency) and transport.TCPHub
// (loopback sockets) satisfy it.
type Hub interface {
	Register(id int, src transport.ModelSource)
	Peer(from, to int) transport.Peer
	Monitor() transport.MonitorClient
	SetPolicy(p [][]float64, rho float64)
	SetCodec(c codec.Codec)
	SetPullTimeout(d time.Duration)
	SetWorkerDown(id int, down bool)
	OnReport(f func(from, to int, secs float64, bytes int64))
}

// Run executes the live group until the configured bound and returns stats.
// The transport hub must be fresh; Run registers all workers on it.
func Run(ctx context.Context, cfg Config, hub Hub) *Stats {
	m := len(cfg.Part.Shards)
	adj := fullAdj(m)
	dim := cfg.Part.Shards[0].Dim()
	classes := cfg.Part.Shards[0].Classes

	ts := cfg.Ts
	if ts <= 0 {
		ts = 500 * time.Millisecond
	}
	beta := cfg.Beta
	if beta <= 0 || beta >= 1 {
		beta = 0.5
	}
	pullTimeout := cfg.PullTimeout
	if pullTimeout == 0 {
		pullTimeout = DefaultPullTimeout
	} else if pullTimeout < 0 {
		pullTimeout = 0
	}
	stale := cfg.StalePeriods
	if stale == 0 {
		stale = DefaultStalePeriods
	} else if stale < 0 {
		stale = 0
	}
	// A masked peer is retried after the monitor has had a fair chance to
	// react: the staleness window plus one period.
	maskCooldown := ts * time.Duration(stale+1)
	// Fallback rows for workers handed a dead-pinned policy row (below).
	uniformRows := policy.Uniform(adj)

	if cfg.Codec != nil {
		hub.SetCodec(cfg.Codec)
	}
	hub.SetPullTimeout(pullTimeout)
	start := time.Now()
	mon := monitor.New(monitor.Config{Adj: adj, Alpha: cfg.LR, Period: ts.Seconds(), StalePeriods: stale})
	hub.OnReport(func(from, to int, secs float64, bytes int64) {
		mon.ObserveAt(from, to, secs, time.Since(start).Seconds())
		mon.ObserveBytes(from, to, bytes)
	})

	workers := make([]*worker, m)
	for i := 0; i < m; i++ {
		batch := cfg.Batch
		if batch > cfg.Part.Shards[i].Len() {
			batch = cfg.Part.Shards[i].Len()
		}
		w := &worker{
			id:       i,
			model:    cfg.Spec.Build(cfg.Seed, dim, classes),
			opt:      nn.NewSGD(cfg.LR),
			shard:    cfg.Part.Shards[i],
			batch:    batch,
			rng:      rand.New(rand.NewSource(cfg.Seed*1000 + int64(i))),
			p:        policy.Uniform(adj),
			rho:      1 / (8 * cfg.LR * float64(m-1)),
			ema:      make([]float64, m),
			masked:   make([]bool, m),
			maskedAt: make([]time.Time, m),
		}
		for _, ev := range cfg.Churn {
			if ev.Worker == i {
				w.churn = append(w.churn, ev)
			}
		}
		sort.Slice(w.churn, func(a, b int) bool { return w.churn[a].At < w.churn[b].At })
		workers[i] = w
		hub.Register(i, w.vector)
	}

	// Always derive a cancellable context: when the run is bounded by
	// Iterations rather than Duration, the monitor goroutine must still be
	// stopped once the workers finish.
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cfg.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// Monitor loop: wall-clock periodic policy regeneration.
	monDone := make(chan struct{})
	go func() {
		defer close(monDone)
		ticker := time.NewTicker(ts)
		defer ticker.Stop()
		for {
			select {
			case <-runCtx.Done():
				return
			case <-ticker.C:
				if cfg.Uniform {
					continue
				}
				if pol, ok := mon.MaybeRegenerate(time.Since(start).Seconds()); ok {
					hub.SetPolicy(pol.P, pol.Rho)
				}
			}
		}
	}()

	counts := make([]int, m)
	var wireBytes, pulls, peerDown atomic.Int64
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			monClient := hub.Monitor()
			for it := 0; cfg.Iterations == 0 || it < cfg.Iterations; it++ {
				select {
				case <-runCtx.Done():
					return
				default:
				}
				// Scheduled churn: crash (endpoint refuses pulls, no
				// iterations, no reports) and rejoin with the parameters
				// held at crash time. A permanent leave exits the loop.
				for w.churnIdx < len(w.churn) && time.Since(start) >= w.churn[w.churnIdx].At {
					ev := w.churn[w.churnIdx]
					w.churnIdx++
					hub.SetWorkerDown(w.id, true)
					if ev.Rejoin <= ev.At {
						return
					}
					if wait := ev.Rejoin - time.Since(start); wait > 0 {
						select {
						case <-runCtx.Done():
							return
						case <-time.After(wait):
						}
					}
					hub.SetWorkerDown(w.id, false)
				}
				// Adopt a newer policy if one was broadcast. Masks reset
				// only for peers the new policy assigns mass — the monitor
				// believes those are usable. (A version generated just
				// before a crash can still carry mass on the dead peer and
				// cost one more deadline; the cooldown bounds that.) A
				// masked peer the policy dropped stays masked, which is a
				// no-op anyway since its row mass is zero.
				if p, rho, v, err := monClient.FetchPolicy(); err == nil && v > w.version && p != nil {
					// A policy generated while this worker was presumed
					// dead pins its own row to self. A live worker must
					// not adopt that row — selecting only self means never
					// pulling, never reporting, and never being
					// re-admitted — so it falls back to uniform selection
					// until the monitor takes it back. The broadcast
					// policy is shared between workers; replace the row on
					// a private copy of the row table.
					if policy.SelfOnly(p[w.id], w.id) {
						np := make([][]float64, len(p))
						copy(np, p)
						np[w.id] = uniformRows[w.id]
						p = np
					}
					w.p, w.rho, w.version = p, rho, v
					for k := range w.masked {
						if w.masked[k] && w.p[w.id][k] > 0 {
							w.masked[k] = false
						}
					}
				}
				// Retry cooldown: without policy broadcasts (uniform mode)
				// a mask would otherwise be permanent and a rejoining peer
				// never re-admitted.
				for k, mk := range w.masked {
					if mk && time.Since(w.maskedAt[k]) > maskCooldown {
						w.masked[k] = false
					}
				}
				j := policy.SampleMasked(w.p[w.id], w.id, w.masked, w.rng)
				iterStart := time.Now()
				// Pull the neighbor's model concurrently with the local
				// gradient step (Algorithm 2's overlap). The pull arrives
				// undecoded; decoding waits for the blend step so sparse
				// codecs substitute the post-step vector — not a stale
				// snapshot — on untransmitted coordinates.
				var pulled *transport.Pull
				var pullErr error
				done := make(chan struct{})
				if j != w.id {
					go func() {
						pulled, pullErr = hub.Peer(w.id, j).PullModel()
						close(done)
					}()
				} else {
					close(done)
				}
				w.gradStep(it)
				<-done
				if j != w.id && pullErr == nil && pulled != nil {
					coef := w.blendCoef(cfg.LR, j)
					w.mu.Lock()
					var prior []float64
					if pulled.NeedsPrior() {
						prior = w.model.Vector()
					}
					vec, decErr := pulled.Decode(prior)
					if decErr == nil {
						w.model.BlendVector(coef, vec)
					}
					w.mu.Unlock()
					if decErr == nil {
						pulledBytes := pulled.WireBytes()
						wireBytes.Add(pulledBytes)
						pulls.Add(1)
						secs := time.Since(iterStart).Seconds()
						if w.ema[j] == 0 {
							w.ema[j] = secs
						} else {
							w.ema[j] = beta*w.ema[j] + (1-beta)*secs
						}
						_ = monClient.ReportTime(w.id, j, w.ema[j], pulledBytes)
					}
				} else if j != w.id && pullErr != nil {
					// Failed pull: mask the peer locally until the monitor
					// reacts, and report the attempt's (deadline-inflated)
					// cost so the link degrades in the policy input rather
					// than keeping its last attractive time.
					if errors.Is(pullErr, transport.ErrPeerDown) {
						w.masked[j] = true
						w.maskedAt[j] = time.Now()
						peerDown.Add(1)
					}
					secs := time.Since(iterStart).Seconds()
					if w.ema[j] == 0 {
						w.ema[j] = secs
					} else {
						w.ema[j] = beta*w.ema[j] + (1-beta)*secs
					}
					_ = monClient.ReportTime(w.id, j, w.ema[j], 0)
				}
				counts[w.id]++ // safe: one writer per index
			}
		}(w)
	}
	wg.Wait()
	cancel()
	<-monDone

	// Final consensus model: elementwise mean.
	avg := cfg.Spec.Build(cfg.Seed, dim, classes)
	vec := make([]float64, avg.VectorLen())
	tmp := make([]float64, avg.VectorLen())
	for _, w := range workers {
		copy(tmp, w.vector())
		for i := range vec {
			vec[i] += tmp[i]
		}
	}
	for i := range vec {
		vec[i] /= float64(m)
	}
	avg.SetVector(vec)
	x, labels := cfg.Test.Batch(0, cfg.Test.Len())
	_, _, version, _ := hub.Monitor().FetchPolicy()
	return &Stats{
		IterationsPerWorker: counts,
		FinalAccuracy:       avg.Accuracy(x, labels),
		FinalLoss:           avg.Loss(x, labels).Item(),
		PolicyVersions:      version,
		BytesOnWire:         wireBytes.Load(),
		Pulls:               pulls.Load(),
		PeerDownErrors:      peerDown.Load(),
		Elapsed:             time.Since(start),
	}
}

func (w *worker) gradStep(it int) {
	x, labels := w.shard.Batch(it*w.batch%w.shard.Len(), w.batch)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.model.ZeroGrad()
	loss := w.model.Loss(x, labels)
	backward(loss)
	w.opt.Step(w.model)
}

func (w *worker) blendCoef(alpha float64, j int) float64 {
	pij := w.p[w.id][j]
	if pij <= 0 {
		return 0
	}
	c := alpha * w.rho * 2 / (2 * pij)
	if c > 1 {
		c = 1
	}
	return c
}

func fullAdj(m int) [][]bool {
	adj := make([][]bool, m)
	for i := range adj {
		adj[i] = make([]bool, m)
		for j := range adj[i] {
			adj[i][j] = i != j
		}
	}
	return adj
}
