package live

import (
	"context"
	"testing"
	"time"

	"netmax/internal/codec"
	"netmax/internal/data"
	"netmax/internal/nn"
	"netmax/internal/transport"
)

// TestLiveGroupSurvivesCrashRejoin injects a crash + rejoin through the
// churn schedule: the run must finish, record peer-down pulls (the failed
// neighbor was masked, not fatal), and still produce a finite consensus
// model with everyone else iterating.
func TestLiveGroupSurvivesCrashRejoin(t *testing.T) {
	hub := transport.NewLocalNet()
	// Slow iterations down to ~1ms so the wall-clock churn window overlaps
	// a substantial stretch of the run.
	hub.Latency = func(i, j int, _ time.Time) time.Duration { return time.Millisecond }
	cfg := liveConfig(4, 200)
	cfg.Ts = 40 * time.Millisecond
	cfg.StalePeriods = 2
	cfg.PullTimeout = 200 * time.Millisecond
	cfg.Churn = []ChurnEvent{{Worker: 2, At: 30 * time.Millisecond, Rejoin: 150 * time.Millisecond}}
	stats := Run(context.Background(), cfg, hub)
	if stats.PeerDownErrors == 0 {
		t.Fatal("crash produced no ErrPeerDown pulls")
	}
	for i, c := range stats.IterationsPerWorker {
		if i != 2 && c != 200 {
			t.Fatalf("surviving worker %d did %d iterations, want 200", i, c)
		}
	}
	if stats.IterationsPerWorker[2] == 0 {
		t.Fatal("rejoining worker never iterated")
	}
	if !(stats.FinalLoss > 0) || stats.FinalAccuracy <= 0 {
		t.Fatalf("consensus model degenerate after churn: loss=%v acc=%v", stats.FinalLoss, stats.FinalAccuracy)
	}
}

// TestLiveGroupPermanentLeave verifies a worker that leaves for good: the
// survivors finish their iterations and the run terminates.
func TestLiveGroupPermanentLeave(t *testing.T) {
	hub := transport.NewLocalNet()
	hub.Latency = func(i, j int, _ time.Time) time.Duration { return time.Millisecond }
	cfg := liveConfig(3, 120)
	cfg.PullTimeout = 200 * time.Millisecond
	cfg.Churn = []ChurnEvent{{Worker: 1, At: 20 * time.Millisecond, Rejoin: 0}} // Rejoin <= At: leave
	done := make(chan *Stats, 1)
	go func() { done <- Run(context.Background(), cfg, hub) }()
	select {
	case stats := <-done:
		if stats.IterationsPerWorker[0] != 120 || stats.IterationsPerWorker[2] != 120 {
			t.Fatalf("survivors did not finish: %v", stats.IterationsPerWorker)
		}
		if stats.IterationsPerWorker[1] == 120 {
			t.Fatal("leaver completed every iteration; churn never fired")
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run with a permanent leaver did not terminate")
	}
}

// TestLiveGroupCrashOverTCP drives the crash path over real sockets: the
// down endpoint drops connections, peers classify ErrPeerDown and finish.
func TestLiveGroupCrashOverTCP(t *testing.T) {
	hub, err := transport.NewTCPHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	cfg := liveConfig(3, 200)
	cfg.PullTimeout = 300 * time.Millisecond
	cfg.Churn = []ChurnEvent{{Worker: 0, At: 20 * time.Millisecond, Rejoin: 200 * time.Millisecond}}
	stats := Run(context.Background(), cfg, hub)
	if stats.IterationsPerWorker[1] != 200 || stats.IterationsPerWorker[2] != 200 {
		t.Fatalf("survivors did not finish over TCP: %v", stats.IterationsPerWorker)
	}
	if stats.PeerDownErrors == 0 {
		t.Fatal("TCP crash produced no ErrPeerDown pulls")
	}
}

func liveConfig(workers, iters int) Config {
	train, test := data.SynthMNIST.Generate(1)
	return Config{
		Spec:       nn.SimMobileNet,
		Part:       data.Uniform(train, workers, 1),
		Test:       test,
		LR:         0.1,
		Batch:      16,
		Seed:       7,
		Ts:         50 * time.Millisecond,
		Iterations: iters,
	}
}

func TestLiveGroupTrains(t *testing.T) {
	hub := transport.NewLocalNet()
	stats := Run(context.Background(), liveConfig(4, 150), hub)
	if stats.FinalAccuracy < 0.85 {
		t.Fatalf("live accuracy = %v, want >= 0.85", stats.FinalAccuracy)
	}
	for i, c := range stats.IterationsPerWorker {
		if c != 150 {
			t.Fatalf("worker %d did %d iterations, want 150", i, c)
		}
	}
}

func TestLiveGroupRegeneratesPolicy(t *testing.T) {
	hub := transport.NewLocalNet()
	// Inject strong latency asymmetry so the policy matters and iterations
	// are slow enough for several monitor periods to pass.
	hub.Latency = func(i, j int, _ time.Time) time.Duration {
		if (i < 2) == (j < 2) {
			return time.Millisecond
		}
		return 8 * time.Millisecond
	}
	cfg := liveConfig(4, 250)
	cfg.Ts = 60 * time.Millisecond
	stats := Run(context.Background(), cfg, hub)
	if stats.PolicyVersions == 0 {
		t.Fatal("monitor never published a policy")
	}
}

func TestLiveGroupDurationBound(t *testing.T) {
	hub := transport.NewLocalNet()
	cfg := liveConfig(2, 0)
	cfg.Duration = 300 * time.Millisecond
	start := time.Now()
	stats := Run(context.Background(), cfg, hub)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run overshot duration bound: %v", elapsed)
	}
	// Iteration progress within the bound depends on machine load (this
	// test shares the CPU with the rest of the suite), so only report it.
	t.Logf("iterations within %v: %v", cfg.Duration, stats.IterationsPerWorker)
}

func TestLiveGroupContextCancel(t *testing.T) {
	hub := transport.NewLocalNet()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	cfg := liveConfig(2, 0) // unbounded iterations; relies on cancel
	done := make(chan struct{})
	go func() {
		Run(ctx, cfg, hub)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on context cancellation")
	}
}

func TestLiveGroupOverTCP(t *testing.T) {
	hub, err := transport.NewTCPHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	cfg := liveConfig(3, 80)
	stats := Run(context.Background(), cfg, hub)
	if stats.FinalAccuracy < 0.8 {
		t.Fatalf("TCP live accuracy = %v", stats.FinalAccuracy)
	}
	for i, c := range stats.IterationsPerWorker {
		if c != 80 {
			t.Fatalf("worker %d did %d iterations over TCP, want 80", i, c)
		}
	}
}

func TestLiveUniformMode(t *testing.T) {
	hub := transport.NewLocalNet()
	cfg := liveConfig(3, 60)
	cfg.Uniform = true
	stats := Run(context.Background(), cfg, hub)
	if stats.PolicyVersions != 0 {
		t.Fatalf("uniform mode published %d policies", stats.PolicyVersions)
	}
}

// TestCompressionCodecsReduceBytes is the acceptance gate for the
// communication-efficient transport: on SimMobileNet, the float32 and top-k
// codecs must cut bytes-on-wire by at least 2x versus raw while the trained
// consensus model stays within tolerance of the raw-codec accuracy.
func TestCompressionCodecsReduceBytes(t *testing.T) {
	run := func(c codec.Codec) *Stats {
		hub := transport.NewLocalNet()
		cfg := liveConfig(4, 120)
		cfg.Codec = c
		return Run(context.Background(), cfg, hub)
	}
	raw := run(codec.Raw{})
	f32 := run(codec.Float32{})
	topk := run(codec.NewTopK(0.25))

	if raw.Pulls == 0 || raw.BytesOnWire == 0 {
		t.Fatalf("raw run recorded no traffic: %+v", raw)
	}
	// Bytes-per-pull comparison: iteration counts are identical, but pull
	// counts can differ by the few self-pull draws, so normalize.
	perPull := func(s *Stats) float64 { return float64(s.BytesOnWire) / float64(s.Pulls) }
	if r := perPull(raw) / perPull(f32); r < 2 {
		t.Fatalf("float32 reduced bytes/pull by only %.2fx (raw %.0f, float32 %.0f)", r, perPull(raw), perPull(f32))
	}
	if r := perPull(raw) / perPull(topk); r < 2 {
		t.Fatalf("topk reduced bytes/pull by only %.2fx (raw %.0f, topk %.0f)", r, perPull(raw), perPull(topk))
	}
	// Accuracy within tolerance of the raw run.
	const tol = 0.05
	if f32.FinalAccuracy < raw.FinalAccuracy-tol {
		t.Fatalf("float32 accuracy %.3f fell more than %.2f below raw %.3f", f32.FinalAccuracy, tol, raw.FinalAccuracy)
	}
	if topk.FinalAccuracy < raw.FinalAccuracy-tol {
		t.Fatalf("topk accuracy %.3f fell more than %.2f below raw %.3f", topk.FinalAccuracy, tol, raw.FinalAccuracy)
	}
}

// TestLiveCodecOverTCP runs a short compressed group over real sockets so
// the codec id negotiation is exercised end to end in the live runtime.
func TestLiveCodecOverTCP(t *testing.T) {
	hub, err := transport.NewTCPHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	cfg := liveConfig(3, 60)
	cfg.Codec = codec.NewTopK(0.25)
	stats := Run(context.Background(), cfg, hub)
	if stats.FinalAccuracy < 0.7 {
		t.Fatalf("compressed TCP live accuracy = %v", stats.FinalAccuracy)
	}
	if stats.BytesOnWire == 0 || stats.Pulls == 0 {
		t.Fatalf("no traffic recorded: %+v", stats)
	}
}
