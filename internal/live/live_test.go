package live

import (
	"context"
	"testing"
	"time"

	"netmax/internal/data"
	"netmax/internal/nn"
	"netmax/internal/transport"
)

func liveConfig(workers, iters int) Config {
	train, test := data.SynthMNIST.Generate(1)
	return Config{
		Spec:       nn.SimMobileNet,
		Part:       data.Uniform(train, workers, 1),
		Test:       test,
		LR:         0.1,
		Batch:      16,
		Seed:       7,
		Ts:         50 * time.Millisecond,
		Iterations: iters,
	}
}

func TestLiveGroupTrains(t *testing.T) {
	hub := transport.NewLocalNet()
	stats := Run(context.Background(), liveConfig(4, 150), hub)
	if stats.FinalAccuracy < 0.85 {
		t.Fatalf("live accuracy = %v, want >= 0.85", stats.FinalAccuracy)
	}
	for i, c := range stats.IterationsPerWorker {
		if c != 150 {
			t.Fatalf("worker %d did %d iterations, want 150", i, c)
		}
	}
}

func TestLiveGroupRegeneratesPolicy(t *testing.T) {
	hub := transport.NewLocalNet()
	// Inject strong latency asymmetry so the policy matters and iterations
	// are slow enough for several monitor periods to pass.
	hub.Latency = func(i, j int, _ time.Time) time.Duration {
		if (i < 2) == (j < 2) {
			return time.Millisecond
		}
		return 8 * time.Millisecond
	}
	cfg := liveConfig(4, 250)
	cfg.Ts = 60 * time.Millisecond
	stats := Run(context.Background(), cfg, hub)
	if stats.PolicyVersions == 0 {
		t.Fatal("monitor never published a policy")
	}
}

func TestLiveGroupDurationBound(t *testing.T) {
	hub := transport.NewLocalNet()
	cfg := liveConfig(2, 0)
	cfg.Duration = 300 * time.Millisecond
	start := time.Now()
	stats := Run(context.Background(), cfg, hub)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("run overshot duration bound: %v", elapsed)
	}
	// Iteration progress within the bound depends on machine load (this
	// test shares the CPU with the rest of the suite), so only report it.
	t.Logf("iterations within %v: %v", cfg.Duration, stats.IterationsPerWorker)
}

func TestLiveGroupContextCancel(t *testing.T) {
	hub := transport.NewLocalNet()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	cfg := liveConfig(2, 0) // unbounded iterations; relies on cancel
	done := make(chan struct{})
	go func() {
		Run(ctx, cfg, hub)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop on context cancellation")
	}
}

func TestLiveGroupOverTCP(t *testing.T) {
	hub, err := transport.NewTCPHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	cfg := liveConfig(3, 80)
	stats := Run(context.Background(), cfg, hub)
	if stats.FinalAccuracy < 0.8 {
		t.Fatalf("TCP live accuracy = %v", stats.FinalAccuracy)
	}
	for i, c := range stats.IterationsPerWorker {
		if c != 80 {
			t.Fatalf("worker %d did %d iterations over TCP, want 80", i, c)
		}
	}
}

func TestLiveUniformMode(t *testing.T) {
	hub := transport.NewLocalNet()
	cfg := liveConfig(3, 60)
	cfg.Uniform = true
	stats := Run(context.Background(), cfg, hub)
	if stats.PolicyVersions != 0 {
		t.Fatalf("uniform mode published %d policies", stats.PolicyVersions)
	}
}
