package policy

import (
	"errors"
	"math"
)

// This file implements the paper's Appendix B: the approximation-ratio
// analysis of Algorithm 3 on fully connected heterogeneous graphs.
//
// For a feasible policy with second eigenvalue λ₂ and objective
// l(λ) = t̄ · ln ε / ln λ, the paper bounds
//
//	l(λ₂)/l(λ*) ≤ (U/L) · (ln(M-1) - ln(M-3)) /
//	               (ln(1-2a+a·M) - ln(1-2a+a·(M+1)))
//
// where [L, U] is the feasible t̄ interval, M ≥ 4 the worker count, and a
// the minimum positive entry of Y_P (Eq. 38). The two spectral ingredients
// are Eq. 34 (λ₂ ≥ (M-3)/(M-1), from eigenvalue interlacing) and Eq. 35
// (the cycle-based subdominant-eigenvalue bound λ₂ ≤ (1-2a+a^{M+1})/(1-2a+a^M)).

// Lambda2LowerBound returns the Eq. 34 lower bound on the second-largest
// eigenvalue of Y_P for a fully connected graph with m > 3 workers.
func Lambda2LowerBound(m int) (float64, error) {
	if m <= 3 {
		return 0, errors.New("policy: Eq. 34 requires more than 3 workers")
	}
	return float64(m-3) / float64(m-1), nil
}

// Lambda2UpperBound returns the Eq. 35 cycle-based upper bound on λ₂ given
// the minimum positive entry a of Y_P.
func Lambda2UpperBound(a float64, m int) (float64, error) {
	if a <= 0 || a >= 1 {
		return 0, errors.New("policy: minimum entry must lie in (0,1)")
	}
	num := 1 - 2*a + math.Pow(a, float64(m)+1)
	den := 1 - 2*a + math.Pow(a, float64(m))
	if den <= 0 {
		return 0, errors.New("policy: degenerate denominator in Eq. 35")
	}
	return num / den, nil
}

// ApproximationRatio evaluates the Eq. 38 bound for a feasible-time
// interval [lo, hi], m workers and minimum positive Y_P entry a.
func ApproximationRatio(lo, hi float64, m int, a float64) (float64, error) {
	if m <= 3 {
		return 0, errors.New("policy: Eq. 38 requires more than 3 workers")
	}
	if lo <= 0 || hi < lo {
		return 0, errors.New("policy: invalid feasible interval")
	}
	lower, err := Lambda2LowerBound(m)
	if err != nil {
		return 0, err
	}
	upper, err := Lambda2UpperBound(a, m)
	if err != nil {
		return 0, err
	}
	num := -math.Log(lower) // ln(M-1) - ln(M-3)
	den := -math.Log(upper) // ln(1-2a+aM) - ln(1-2a+a(M+1))
	if den <= 0 {
		return 0, errors.New("policy: Eq. 35 bound is not contracting")
	}
	return (hi / lo) * num / den, nil
}

// MinPositiveEntry returns the smallest strictly positive entry of Y_P
// built for the given feasible policy — the `a` of Appendix B.
func MinPositiveEntry(p *Policy, times [][]float64, adj [][]bool, alpha float64) float64 {
	y := BuildY(p.P, times, adj, alpha, p.Rho)
	minV := math.Inf(1)
	for _, v := range y.Data {
		if v > 1e-12 && v < minV {
			minV = v
		}
	}
	if math.IsInf(minV, 1) {
		return 0
	}
	return minV
}

// CertifyApproximation checks the Appendix B guarantee for a generated
// policy on a fully connected graph: the policy's realized objective
// l(λ₂) = t̄·ln ε/ln λ₂ must not exceed ratio times the analytical lower
// bound L·ln ε / ln((M-3)/(M-1)). It returns the realized objective, the
// lower bound, and the certified ratio.
func CertifyApproximation(p *Policy, times [][]float64, adj [][]bool, alpha, epsilon float64) (objective, lowerBound, ratio float64, err error) {
	m := len(p.P)
	lo, hi, err := FeasibleTimeInterval(times, adj, alpha, p.Rho)
	if err != nil {
		return 0, 0, 0, err
	}
	a := MinPositiveEntry(p, times, adj, alpha)
	ratio, err = ApproximationRatio(lo, hi, m, a)
	if err != nil {
		return 0, 0, 0, err
	}
	lowerL2, err := Lambda2LowerBound(m)
	if err != nil {
		return 0, 0, 0, err
	}
	objective = p.TBar * math.Log(epsilon) / math.Log(p.Lambda2)
	lowerBound = lo * math.Log(epsilon) / math.Log(lowerL2)
	if objective > ratio*lowerBound*(1+1e-9) {
		return objective, lowerBound, ratio, errors.New("policy: Appendix B bound violated")
	}
	return objective, lowerBound, ratio, nil
}
