package policy

import "math/rand"

// Sample draws one index from the probability row (row[j] is the
// probability of selecting j; row[self] is the probability of selecting no
// peer). It is the single peer-selection primitive shared by every
// algorithm — NetMax, the uniform gossip baselines, Hop, and the live
// runtime — and consumes exactly one rng.Float64 per call.
//
// Rows are normalized, but floating-point summation can leave the
// cumulative total marginally below 1; the historical samplers fell
// through to `self` in that gap, silently converting a sliver of every
// row's mass into "skip communication" even when the policy assigned self
// zero probability. The fall-through now lands on the last
// positive-probability entry — the index the cumulative scan was
// converging to as r → 1 — so a zero-probability self (or any
// zero-probability non-neighbor) can never be returned. Self is returned
// only when it carries mass or the row is entirely empty.
func Sample(row []float64, self int, rng *rand.Rand) int {
	return SampleMasked(row, self, nil, rng)
}

// SampleMasked is Sample with a worker-local liveness mask: masked indices
// are treated as zero-probability and the remaining mass is renormalized,
// so a freshly failed neighbor is skipped without waiting for the monitor
// to regenerate the policy. A nil or all-false mask reproduces Sample's
// arithmetic exactly, draw for draw — an all-false mask is detected and
// routed through the nil path, since the renormalizing branch multiplies
// r by the row's FP sum and would otherwise draw differently whenever
// that sum is not exactly 1. The bitwise-determinism gate for failure-free
// runs (where masks, once allocated, stay all-false after a full rejoin)
// depends on this. Self is never masked.
func SampleMasked(row []float64, self int, masked []bool, rng *rand.Rand) int {
	r := rng.Float64()
	if masked != nil {
		any := false
		for _, m := range masked {
			if m {
				any = true
				break
			}
		}
		if !any {
			masked = nil
		}
	}
	if masked == nil {
		acc := 0.0
		fallback := self
		for j, pj := range row {
			acc += pj
			if r < acc {
				return j
			}
			if pj > 0 {
				fallback = j
			}
		}
		return fallback
	}
	live := func(j int) bool { return j == self || !masked[j] }
	total := 0.0
	for j, pj := range row {
		if live(j) {
			total += pj
		}
	}
	if total <= 0 {
		return self
	}
	r *= total
	acc := 0.0
	fallback := self
	for j, pj := range row {
		if !live(j) {
			continue
		}
		acc += pj
		if r < acc {
			return j
		}
		if pj > 0 {
			fallback = j
		}
	}
	return fallback
}

// SelfOnly reports whether a policy row assigns no mass to any peer: the
// row GenerateLive pins onto workers presumed dead. A worker that is in
// fact alive must not adopt such a row for itself — selecting only self
// means never pulling, never reporting, and therefore never being
// re-admitted by the monitor's liveness tracking. Callers detect the
// condition with SelfOnly and fall back to uniform selection until the
// monitor re-admits them.
func SelfOnly(row []float64, self int) bool {
	for j, v := range row {
		if j != self && v > 0 {
			return false
		}
	}
	return true
}

// GenerateLive runs Algorithm 3 restricted to the live subgraph: rows and
// columns of departed workers are removed before generation and the
// resulting policy is embedded back into the full index space, with dead
// rows pinned to self (a dead worker that somehow acts selects nobody) and
// dead columns zeroed (no live worker routes a pull at a corpse). A nil or
// all-true alive vector is exactly Generate. Fewer than two live workers
// cannot form a policy and return ErrNoFeasiblePolicy.
func GenerateLive(in Input, alive []bool) (*Policy, error) {
	if alive == nil {
		return Generate(in)
	}
	m := len(in.Times)
	var idx []int
	for i := 0; i < m && i < len(alive); i++ {
		if alive[i] {
			idx = append(idx, i)
		}
	}
	if len(idx) == m {
		return Generate(in)
	}
	if len(idx) < 2 {
		return nil, ErrNoFeasiblePolicy
	}
	n := len(idx)
	times := make([][]float64, n)
	adj := make([][]bool, n)
	for a, i := range idx {
		times[a] = make([]float64, n)
		adj[a] = make([]bool, n)
		for b, j := range idx {
			times[a][b] = in.Times[i][j]
			adj[a][b] = in.Adj[i][j]
		}
	}
	sub := in
	sub.Times = times
	sub.Adj = adj
	pol, err := Generate(sub)
	if err != nil {
		return nil, err
	}
	full := make([][]float64, m)
	for i := range full {
		full[i] = make([]float64, m)
		full[i][i] = 1 // dead rows: self only
	}
	for a, i := range idx {
		full[i][i] = 0
		for b, j := range idx {
			full[i][j] = pol.P[a][b]
		}
	}
	out := *pol
	out.P = full
	return &out, nil
}
