package policy

import (
	"math"
	"testing"

	"netmax/internal/linalg"
	"netmax/internal/simnet"
)

func TestAveragingBlendPolicyFeasible(t *testing.T) {
	m := 6
	times := hetTimes(m, 21)
	adj := simnet.FullyConnected(m)
	pol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1, AveragingBlend: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(pol.P, adj); err != nil {
		t.Fatal(err)
	}
	if pol.Lambda2 <= 0 || pol.Lambda2 >= 1 {
		t.Fatalf("lambda2 = %v", pol.Lambda2)
	}
	// Eq. 10 still holds: all workers share the same average iteration time.
	avg := AvgIterTimes(pol.P, times, adj)
	for i := 1; i < m; i++ {
		if math.Abs(avg[i]-avg[0]) > 1e-5 {
			t.Fatalf("iteration times not equalized: %v", avg)
		}
	}
}

func TestAveragingBlendAllowsTinyProbabilities(t *testing.T) {
	// Without the 2αρ floor, slow links can be nearly abandoned: the
	// minimum edge probability under averaging mode should be far below
	// NetMax's floor on the same input.
	m := 5
	times := hetTimes(m, 23)
	adj := simnet.FullyConnected(m)
	avgPol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1, AveragingBlend: true})
	if err != nil {
		t.Fatal(err)
	}
	nmPol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	minEdge := func(p [][]float64) float64 {
		m := math.Inf(1)
		for i := range p {
			for j := range p[i] {
				if i != j && p[i][j] > 0 && p[i][j] < m {
					m = p[i][j]
				}
			}
		}
		return m
	}
	if minEdge(avgPol.P) >= 2*0.1*nmPol.Rho {
		t.Fatalf("averaging-mode min edge prob %v not below NetMax floor %v",
			minEdge(avgPol.P), 2*0.1*nmPol.Rho)
	}
}

func TestBuildYAveragingSpectrum(t *testing.T) {
	// With the fixed 1/2 weight, p_ij·w_ij depends on p, so the row-sum
	// cancellation that makes NetMax's Y doubly stochastic (p_ij·w_ij = αρ
	// for every edge) is lost: averaging-mode Y is symmetric but generally
	// NOT doubly stochastic, and the paper's Theorem 1 then uses λ₁
	// ("otherwise let λ = λ1"). This is the spectral reason the extension
	// converges per-epoch slightly slower than NetMax (Fig. 15).
	m := 5
	times := hetTimes(m, 25)
	adj := simnet.FullyConnected(m)
	pol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1, AveragingBlend: true})
	if err != nil {
		t.Fatal(err)
	}
	y := BuildYAveraging(pol.P, times, adj)
	if !y.IsSymmetric(1e-9) {
		t.Fatal("averaging-mode Y must still be symmetric")
	}
	eig, err := linalg.SymmetricEigenvalues(y)
	if err != nil {
		t.Fatal(err)
	}
	// The spectrum stays in a sane contraction range around 1.
	if eig[0] < 0.5 || eig[0] > 1.1 {
		t.Fatalf("lambda1 = %v out of range", eig[0])
	}
	if eig[len(eig)-1] < 0 {
		t.Fatalf("negative eigenvalue %v", eig[len(eig)-1])
	}
}

func TestBuildYMatchesWeightedForm(t *testing.T) {
	// Sanity: the refactored weighted builder must reproduce the original
	// Eq. 22 values for the NetMax weight.
	m := 4
	times := hetTimes(m, 27)
	adj := simnet.FullyConnected(m)
	pol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	y := BuildY(pol.P, times, adj, 0.1, pol.Rho)
	// Entry-level checks against the closed form for one off-diagonal pair.
	i, j := 0, 1
	pg := GlobalStepProbs(AvgIterTimes(pol.P, times, adj))
	ar := 0.1 * pol.Rho
	wij := ar * 2 / (2 * pol.P[i][j])
	wji := ar * 2 / (2 * pol.P[j][i])
	want := pg[i]*pol.P[i][j]*(wij-wij*wij) + pg[j]*pol.P[j][i]*(wji-wji*wji)
	if math.Abs(y.At(i, j)-want) > 1e-9 {
		t.Fatalf("y[0][1] = %v, closed form %v", y.At(i, j), want)
	}
}
