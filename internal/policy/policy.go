// Package policy implements NetMax's communication-policy generation
// (Section III-C, Algorithm 3) and the spectral machinery behind it
// (Section IV, Eq. 20-22).
//
// Given the iteration-time matrix t[i][m] collected by the Network Monitor,
// Generate searches K values of the consensus weight ρ and, for each, R
// values of the target mean iteration time t̄; every (ρ, t̄) candidate is
// turned into a concrete probability matrix P by solving one small linear
// program per worker row (Eq. 14), scored by the predicted convergence time
// T = t̄ · ln ε / ln λ₂(Y_P), and the best-scoring policy is returned.
package policy

import (
	"errors"
	"fmt"
	"math"

	"netmax/internal/linalg"
	"netmax/internal/lp"
)

// Input bundles everything Algorithm 3 needs.
type Input struct {
	// Times[i][m] is the measured iteration time of worker i when pulling
	// from neighbor m (seconds). Entries for non-neighbors are ignored.
	Times [][]float64
	// Adj is the communication graph d[i][m].
	Adj [][]bool
	// Alpha is the SGD learning rate α.
	Alpha float64
	// OuterRounds (K) and InnerRounds (R) are the grid sizes of
	// Algorithm 3. Zero values default to 10 and 10.
	OuterRounds, InnerRounds int
	// Epsilon is the convergence target ε of Eq. (9); defaults to 1e-2.
	Epsilon float64
	// AveragingBlend selects the Section III-D extension mode: the worker
	// update is AD-PSGD's fixed averaging x_i ← (x_i+x_j)/2 instead of the
	// 1/p-scaled consensus blend. The positivity constraint on Y's entries
	// (the paper's replacement for Eq. 11) then only requires p_im > 0, so
	// the row LPs use a tiny floor instead of 2αρ, and ρ plays no role in
	// the update (a single outer iteration is searched).
	AveragingBlend bool
}

// Policy is the output of Algorithm 3.
type Policy struct {
	// P[i][m] is the probability that worker i selects neighbor m
	// (P[i][i] is the probability of skipping communication).
	P [][]float64
	// Rho is the consensus weight ρ shipped to the workers with P.
	Rho float64
	// Lambda2 is the second-largest eigenvalue of Y_P (Theorem 1).
	Lambda2 float64
	// TBar is the global mean iteration time of the chosen candidate.
	TBar float64
	// TConvergence is the predicted convergence time t̄·ln ε/ln λ₂ used as
	// the selection objective (Eq. 8).
	TConvergence float64
}

// ErrNoFeasiblePolicy is returned when no (ρ, t̄) candidate admits a feasible
// probability matrix; callers should fall back to Uniform.
var ErrNoFeasiblePolicy = errors.New("policy: no feasible policy found")

// Uniform returns the uniform neighbor-selection policy used by AD-PSGD and
// GoSGD: every neighbor of i gets probability 1/deg(i), self 0.
func Uniform(adj [][]bool) [][]float64 {
	m := len(adj)
	p := make([][]float64, m)
	for i := range p {
		p[i] = make([]float64, m)
		deg := 0
		for j, ok := range adj[i] {
			if ok && j != i {
				deg++
			}
		}
		if deg == 0 {
			p[i][i] = 1
			continue
		}
		for j, ok := range adj[i] {
			if ok && j != i {
				p[i][j] = 1 / float64(deg)
			}
		}
	}
	return p
}

// AvgIterTimes returns t_i = Σ_m t[i][m]·P[i][m]·d[i][m] (Eq. 2) for every
// worker.
func AvgIterTimes(p [][]float64, times [][]float64, adj [][]bool) []float64 {
	m := len(p)
	out := make([]float64, m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j && adj[i][j] {
				out[i] += times[i][j] * p[i][j]
			}
		}
	}
	return out
}

// GlobalStepProbs returns p_i = (1/t_i)/Σ(1/t_m) (Eq. 3): the probability
// that a given global step belongs to worker i. Workers with zero average
// iteration time (isolated or self-only) are treated as inactive.
func GlobalStepProbs(avgIterTimes []float64) []float64 {
	m := len(avgIterTimes)
	out := make([]float64, m)
	sum := 0.0
	for _, t := range avgIterTimes {
		if t > 0 {
			sum += 1 / t
		}
	}
	if sum == 0 {
		return out
	}
	for i, t := range avgIterTimes {
		if t > 0 {
			out[i] = (1 / t) / sum
		}
	}
	return out
}

// BuildY constructs Y_P = E[(D^k)ᵀD^k] per Eq. (22) for an arbitrary policy
// (not only feasible ones), using the Eq. (2)/(3) global-step probabilities
// derived from the measured iteration times.
func BuildY(p [][]float64, times [][]float64, adj [][]bool, alpha, rho float64) *linalg.Matrix {
	pg := GlobalStepProbs(AvgIterTimes(p, times, adj))
	return buildYWithProbs(p, adj, alpha, rho, pg)
}

// buildYWithProbs is Eq. (22) with explicit global-step probabilities.
// γ_{i,m} = (d_im+d_mi)/(2 p_im); terms with p_im = 0 contribute nothing
// (the selection event has probability zero).
func buildYWithProbs(p [][]float64, adj [][]bool, alpha, rho float64, pg []float64) *linalg.Matrix {
	ar := alpha * rho
	gamma := func(i, j int) float64 {
		d := 0.0
		if adj[i][j] {
			d++
		}
		if adj[j][i] {
			d++
		}
		return d / (2 * p[i][j])
	}
	return buildYWeighted(p, adj, func(i, j int) float64 { return ar * gamma(i, j) }, pg)
}

// BuildYAveraging constructs Y for the Section III-D extension, where the
// update D^k = I + (1/2) e_i(e_m-e_i)ᵀ uses AD-PSGD's fixed averaging
// weight instead of αργ.
func BuildYAveraging(p [][]float64, times [][]float64, adj [][]bool) *linalg.Matrix {
	pg := GlobalStepProbs(AvgIterTimes(p, times, adj))
	return buildYWeighted(p, adj, func(i, j int) float64 { return 0.5 }, pg)
}

// buildYWeighted evaluates E[(D^k)ᵀD^k] for the generic update
// D^k = I + w(i,m)·e_i(e_m-e_i)ᵀ: with w = αργ this is Eq. (22); with
// w = 1/2 it is the averaging extension. In terms of w the entries are
// y_im = Σ_{sides} pg·p·(w - w²) and
// y_ii = 1 - 2 Σ_m pg_i p_im w_im + Σ_m Σ_{sides} pg·p·w².
func buildYWeighted(p [][]float64, adj [][]bool, w func(i, j int) float64, pg []float64) *linalg.Matrix {
	m := len(p)
	y := linalg.NewMatrix(m)
	for i := 0; i < m; i++ {
		diag := 1.0
		for j := 0; j < m; j++ {
			if j == i {
				continue
			}
			var first, second float64
			if adj[i][j] && p[i][j] > 0 {
				wij := w(i, j)
				first += pg[i] * p[i][j] * wij
				second += pg[i] * p[i][j] * wij * wij
				// Diagonal first-order term covers only i's own pulls.
				diag -= 2 * pg[i] * p[i][j] * wij
			}
			if adj[j][i] && p[j][i] > 0 {
				wji := w(j, i)
				first += pg[j] * p[j][i] * wji
				second += pg[j] * p[j][i] * wji * wji
			}
			y.Set(i, j, first-second)
			diag += second
		}
		y.Set(i, i, diag)
	}
	return y
}

// FeasibleRhoInterval returns (Lρ, Uρ] = (0, 0.5/α] per Appendix A.
func FeasibleRhoInterval(alpha float64) (lo, hi float64) {
	return 0, 0.5 / alpha
}

// FeasibleTimeInterval returns [L, U] for t̄ given ρ per Appendix A
// (Eq. 25-28). Returns an error when L > U (no feasible mean time).
func FeasibleTimeInterval(times [][]float64, adj [][]bool, alpha, rho float64) (lo, hi float64, err error) {
	m := len(times)
	lo = 0
	hi = math.Inf(1)
	for i := 0; i < m; i++ {
		li := 0.0
		ui := 0.0
		for j := 0; j < m; j++ {
			if i == j || !adj[i][j] {
				continue
			}
			d := 2.0 // d_im + d_mi on an undirected graph
			li += times[i][j] * d
			if times[i][j] > ui {
				ui = times[i][j]
			}
		}
		li = li * alpha * rho / float64(m)
		ui = ui / float64(m)
		if li > lo {
			lo = li
		}
		if ui < hi {
			hi = ui
		}
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("policy: infeasible time interval [%v, %v]", lo, hi)
	}
	return lo, hi, nil
}

// solveRows solves the Eq. (14) LP independently for every worker row given
// (ρ, t̄): minimize p_ii subject to Σ_m t_im p_im = M·t̄,
// p_im ≥ αρ(d_im+d_mi) for neighbors (or a tiny positivity floor when
// averaging=true, per Section III-D), probabilities sum to 1.
func solveRows(times [][]float64, adj [][]bool, alpha, rho, tbar float64, averaging bool) ([][]float64, error) {
	m := len(times)
	p := make([][]float64, m)
	floorEps := 1e-9 // Eq. (11) is strict; keep entries strictly above floor
	for i := 0; i < m; i++ {
		var nbrs []int
		for j := 0; j < m; j++ {
			if i != j && adj[i][j] {
				nbrs = append(nbrs, j)
			}
		}
		n := len(nbrs)
		if n == 0 {
			row := make([]float64, m)
			row[i] = 1
			p[i] = row
			continue
		}
		// Variables: p_i,nbrs[0..n-1], then p_ii.
		c := make([]float64, n+1)
		c[n] = 1
		timeRow := make([]float64, n+1)
		oneRow := make([]float64, n+1)
		lower := make([]float64, n+1)
		for k, j := range nbrs {
			timeRow[k] = times[i][j]
			oneRow[k] = 1
			if averaging {
				lower[k] = 1e-4 // Section III-D: only positivity is needed
			} else {
				lower[k] = 2*alpha*rho + floorEps
			}
		}
		oneRow[n] = 1
		x, _, err := lp.Solve(&lp.Problem{
			C:     c,
			Aeq:   [][]float64{timeRow, oneRow},
			Beq:   []float64{float64(m) * tbar, 1},
			Lower: lower,
		})
		if err != nil {
			return nil, err
		}
		row := make([]float64, m)
		for k, j := range nbrs {
			row[j] = x[k]
		}
		row[i] = x[n]
		p[i] = row
	}
	return p, nil
}

// Generate runs Algorithm 3 and returns the best feasible policy. When no
// candidate is feasible it returns ErrNoFeasiblePolicy; callers typically
// fall back to Uniform with a mid-range ρ.
func Generate(in Input) (*Policy, error) {
	m := len(in.Times)
	if m == 0 || len(in.Adj) != m {
		return nil, errors.New("policy: times/adjacency size mismatch")
	}
	k := in.OuterRounds
	if k <= 0 {
		k = 10
	}
	r := in.InnerRounds
	if r <= 0 {
		r = 10
	}
	eps := in.Epsilon
	if eps <= 0 || eps >= 1 {
		eps = 1e-2
	}
	lr, ur := FeasibleRhoInterval(in.Alpha)
	// The row floors p_im >= 2αρ must fit within a probability row, which
	// caps ρ at 1/(2α·deg_max) (the paper's Eq. 33 for fully connected
	// graphs). Searching beyond that wastes the whole grid on infeasible
	// candidates, so clamp the upper end with a small safety margin.
	maxDeg := 0
	for i := range in.Adj {
		deg := 0
		for j, ok := range in.Adj[i] {
			if ok && j != i {
				deg++
			}
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	if maxDeg > 0 {
		if cap := 0.999 / (2 * in.Alpha * float64(maxDeg)); cap < ur {
			ur = cap
		}
	}
	// Log-spaced grid over (0, ur]: under extreme heterogeneity (one link
	// slowed 100x) the feasible ρ range collapses toward zero, and a
	// uniform grid like the paper's pseudo-code would need a very large K
	// to land inside it; geometric spacing covers three decades with the
	// same K.
	_ = lr
	if in.AveragingBlend {
		// Section III-D: the blend weight is fixed at 1/2, so ρ plays no
		// role in the update and a single inner search suffices.
		best, err := innerLoop(in, 0, r, eps)
		if err != nil {
			return nil, err
		}
		return best, nil
	}
	const span = 1000.0
	var best *Policy
	for ki := 0; ki < k; ki++ {
		frac := float64(ki) / float64(k-1)
		if k == 1 {
			frac = 1
		}
		rho := ur / math.Pow(span, 1-frac)
		cand, err := innerLoop(in, rho, r, eps)
		if err != nil {
			continue
		}
		if best == nil || cand.TConvergence < best.TConvergence {
			best = cand
		}
	}
	if best == nil {
		return nil, ErrNoFeasiblePolicy
	}
	return best, nil
}

// innerLoop is Algorithm 3's INNERLOOP: grid over t̄ ∈ [L, U].
func innerLoop(in Input, rho float64, r int, eps float64) (*Policy, error) {
	var lo, hi float64
	var err error
	if in.AveragingBlend {
		// Only positivity floors apply, so the lower end of the feasible
		// interval collapses; search from a small positive fraction of U.
		_, hi, err = FeasibleTimeInterval(in.Times, in.Adj, in.Alpha, 0)
		lo = hi / (10 * float64(r))
	} else {
		lo, hi, err = FeasibleTimeInterval(in.Times, in.Adj, in.Alpha, rho)
	}
	if err != nil {
		return nil, err
	}
	delta := (hi - lo) / float64(r)
	var best *Policy
	for ri := 1; ri <= r; ri++ {
		tbar := lo + float64(ri)*delta
		p, err := solveRows(in.Times, in.Adj, in.Alpha, rho, tbar, in.AveragingBlend)
		if err != nil {
			continue
		}
		// For a feasible P all workers share t_i = M·t̄, so p_i = 1/M.
		pg := make([]float64, len(p))
		for i := range pg {
			pg[i] = 1 / float64(len(p))
		}
		var y *linalg.Matrix
		if in.AveragingBlend {
			y = buildYWeighted(p, in.Adj, func(i, j int) float64 { return 0.5 }, pg)
		} else {
			y = buildYWithProbs(p, in.Adj, in.Alpha, rho, pg)
		}
		l2, err := linalg.SecondLargestEigenvalue(y)
		if err != nil || l2 >= 1 || l2 <= 0 {
			continue
		}
		tconv := tbar * math.Log(eps) / math.Log(l2)
		if best == nil || tconv < best.TConvergence {
			best = &Policy{P: p, Rho: rho, Lambda2: l2, TBar: tbar, TConvergence: tconv}
		}
	}
	if best == nil {
		return nil, ErrNoFeasiblePolicy
	}
	return best, nil
}

// Validate checks the structural feasibility of a policy matrix: rows sum to
// one, entries non-negative, zero where there is no edge.
func Validate(p [][]float64, adj [][]bool) error {
	for i := range p {
		sum := 0.0
		for j, v := range p[i] {
			if v < -1e-9 {
				return fmt.Errorf("policy: negative probability p[%d][%d]=%v", i, j, v)
			}
			if i != j && !adj[i][j] && v > 1e-9 {
				return fmt.Errorf("policy: probability on non-edge p[%d][%d]=%v", i, j, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			return fmt.Errorf("policy: row %d sums to %v", i, sum)
		}
	}
	return nil
}
