package policy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netmax/internal/linalg"
	"netmax/internal/simnet"
)

// hetTimes builds an iteration-time matrix with one fast and several slow
// links per node, like Fig. 2 of the paper.
func hetTimes(m int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	t := make([][]float64, m)
	for i := range t {
		t[i] = make([]float64, m)
	}
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			v := 1.0 + rng.Float64()*11 // 1..12s spread
			t[i][j] = v
			t[j][i] = v
		}
	}
	return t
}

func TestUniformPolicyRows(t *testing.T) {
	adj := simnet.FullyConnected(5)
	p := Uniform(adj)
	if err := Validate(p, adj); err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i][i] != 0 {
			t.Fatalf("uniform self prob = %v", p[i][i])
		}
		for j := range p[i] {
			if i != j && math.Abs(p[i][j]-0.25) > 1e-12 {
				t.Fatalf("uniform p[%d][%d] = %v, want 0.25", i, j, p[i][j])
			}
		}
	}
}

func TestUniformPolicyIsolatedNode(t *testing.T) {
	adj := make([][]bool, 2)
	adj[0] = make([]bool, 2)
	adj[1] = make([]bool, 2)
	p := Uniform(adj)
	if p[0][0] != 1 || p[1][1] != 1 {
		t.Fatal("isolated nodes should self-select")
	}
}

func TestAvgIterTimesEq2(t *testing.T) {
	adj := simnet.FullyConnected(3)
	times := [][]float64{{0, 1, 9}, {1, 0, 2}, {9, 2, 0}}
	p := [][]float64{{0, 0.9, 0.1}, {0, 0.5, 0.5}, {0.2, 0.8, 0}}
	got := AvgIterTimes(p, times, adj)
	want := []float64{0.9*1 + 0.1*9, 0.5 * 2, 0.2*9 + 0.8*2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("t[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGlobalStepProbsEq3(t *testing.T) {
	got := GlobalStepProbs([]float64{1, 2, 4})
	// 1/t = 1, 0.5, 0.25; sum = 1.75
	want := []float64{1 / 1.75, 0.5 / 1.75, 0.25 / 1.75}
	sum := 0.0
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("p[%d] = %v, want %v", i, got[i], want[i])
		}
		sum += got[i]
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("probs sum to %v", sum)
	}
}

func TestFeasibleRhoInterval(t *testing.T) {
	lo, hi := FeasibleRhoInterval(0.1)
	if lo != 0 || math.Abs(hi-5) > 1e-12 {
		t.Fatalf("interval = (%v, %v], want (0, 5]", lo, hi)
	}
}

func TestFeasibleTimeIntervalOrdering(t *testing.T) {
	times := hetTimes(4, 1)
	adj := simnet.FullyConnected(4)
	lo, hi, err := FeasibleTimeInterval(times, adj, 0.1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if lo <= 0 || hi <= lo {
		t.Fatalf("interval = [%v, %v]", lo, hi)
	}
}

func TestGenerateProducesFeasiblePolicy(t *testing.T) {
	m := 5
	times := hetTimes(m, 2)
	adj := simnet.FullyConnected(m)
	alpha := 0.1
	pol, err := Generate(Input{Times: times, Adj: adj, Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(pol.P, adj); err != nil {
		t.Fatal(err)
	}
	// Floors: p_im >= 2αρ on every edge (Eq. 11).
	floor := 2 * alpha * pol.Rho
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j && adj[i][j] && pol.P[i][j] < floor-1e-7 {
				t.Fatalf("p[%d][%d] = %v below floor %v", i, j, pol.P[i][j], floor)
			}
		}
	}
	// Eq. 10: every worker's average iteration time equals M·t̄.
	avg := AvgIterTimes(pol.P, times, adj)
	for i, a := range avg {
		if math.Abs(a-float64(m)*pol.TBar) > 1e-5 {
			t.Fatalf("t_%d = %v, want M·t̄ = %v", i, a, float64(m)*pol.TBar)
		}
	}
	if pol.Lambda2 <= 0 || pol.Lambda2 >= 1 {
		t.Fatalf("λ2 = %v, want in (0,1)", pol.Lambda2)
	}
	if pol.TConvergence <= 0 {
		t.Fatalf("TConvergence = %v", pol.TConvergence)
	}
}

func TestGenerateYIsDoublyStochastic(t *testing.T) {
	// Theorem 3 / Lemmas 1-2: for any feasible P, Y_P is doubly stochastic
	// with λ2 < 1.
	f := func(seed int64) bool {
		m := 4 + int(seed%3+3)%3 // 4..6
		times := hetTimes(m, seed)
		adj := simnet.FullyConnected(m)
		pol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1, OuterRounds: 5, InnerRounds: 5})
		if err != nil {
			return false
		}
		y := BuildY(pol.P, times, adj, 0.1, pol.Rho)
		if !y.IsDoublyStochastic(1e-6) {
			return false
		}
		l2, err := linalg.SecondLargestEigenvalue(y)
		return err == nil && l2 < 1-1e-9 && l2 > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

func TestGeneratePrefersFastLinks(t *testing.T) {
	// Node 0 has one fast neighbor (1) and two slow ones (2, 3); the policy
	// must give the fast neighbor the highest probability.
	m := 4
	times := make([][]float64, m)
	for i := range times {
		times[i] = make([]float64, m)
	}
	set := func(i, j int, v float64) { times[i][j] = v; times[j][i] = v }
	set(0, 1, 1)
	set(0, 2, 10)
	set(0, 3, 10)
	set(1, 2, 1)
	set(1, 3, 10)
	set(2, 3, 1)
	adj := simnet.FullyConnected(m)
	pol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if pol.P[0][1] <= pol.P[0][2] || pol.P[0][1] <= pol.P[0][3] {
		t.Fatalf("fast neighbor not preferred: row 0 = %v", pol.P[0])
	}
}

func TestGenerateBeatsUniformOnHeterogeneousNet(t *testing.T) {
	// The adaptive policy's predicted convergence time must beat the uniform
	// policy evaluated with the same spectral machinery.
	m := 6
	times := hetTimes(m, 9)
	adj := simnet.FullyConnected(m)
	alpha := 0.1
	pol, err := Generate(Input{Times: times, Adj: adj, Alpha: alpha})
	if err != nil {
		t.Fatal(err)
	}
	uni := Uniform(adj)
	rho := pol.Rho
	yu := BuildY(uni, times, adj, alpha, rho)
	eig, err := linalg.SymmetricEigenvalues(yu)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform on a heterogeneous net is generally not doubly stochastic,
	// so the relevant rate is λ1 (Section IV).
	lu := eig[0]
	if lu >= 1 {
		// λ1 >= 1 means the uniform bound gives no convergence guarantee at
		// all; adaptive trivially wins.
		return
	}
	tu := mean(AvgIterTimes(uni, times, adj)) / float64(m)
	tconvU := tu * math.Log(1e-2) / math.Log(lu)
	if pol.TConvergence > tconvU {
		t.Fatalf("adaptive TConv %v worse than uniform %v", pol.TConvergence, tconvU)
	}
}

func TestGenerateHomogeneousNearUniform(t *testing.T) {
	// On a homogeneous network the optimal policy approaches uniform
	// selection (Section V-D: "NetMax lets worker nodes choose their
	// neighbors randomly and uniformly to favor fast convergence").
	m := 4
	times := make([][]float64, m)
	for i := range times {
		times[i] = make([]float64, m)
		for j := range times[i] {
			if i != j {
				times[i][j] = 2.0
			}
		}
	}
	adj := simnet.FullyConnected(m)
	pol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			if math.Abs(pol.P[i][j]-1.0/3.0) > 0.15 {
				t.Fatalf("homogeneous policy row %d = %v, want near-uniform", i, pol.P[i])
			}
		}
	}
}

func TestGenerateRingTopology(t *testing.T) {
	m := 6
	times := hetTimes(m, 4)
	adj := simnet.Ring(m)
	pol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(pol.P, adj); err != nil {
		t.Fatal(err)
	}
	// No probability mass on non-ring edges.
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j && !adj[i][j] && pol.P[i][j] != 0 {
				t.Fatalf("mass on chord %d-%d", i, j)
			}
		}
	}
}

func TestValidateCatchesBadRows(t *testing.T) {
	adj := simnet.FullyConnected(2)
	if err := Validate([][]float64{{0.5, 0.4}, {0.5, 0.5}}, adj); err == nil {
		t.Fatal("row not summing to 1 accepted")
	}
	if err := Validate([][]float64{{-0.1, 1.1}, {0.5, 0.5}}, adj); err == nil {
		t.Fatal("negative entry accepted")
	}
}

func TestGenerateSizeMismatch(t *testing.T) {
	if _, err := Generate(Input{Times: hetTimes(3, 1), Adj: simnet.FullyConnected(4), Alpha: 0.1}); err == nil {
		t.Fatal("expected error on size mismatch")
	}
}

func TestBuildYUniformHomogeneousSpectrum(t *testing.T) {
	// Uniform policy on a homogeneous fully connected network: Y is doubly
	// stochastic (pg uniform by symmetry), so λ1 = 1 > λ2.
	m := 4
	times := make([][]float64, m)
	for i := range times {
		times[i] = make([]float64, m)
		for j := range times[i] {
			if i != j {
				times[i][j] = 1
			}
		}
	}
	adj := simnet.FullyConnected(m)
	y := BuildY(Uniform(adj), times, adj, 0.1, 1.0)
	if !y.IsDoublyStochastic(1e-9) {
		t.Fatal("Y not doubly stochastic in the symmetric case")
	}
	eig, err := linalg.SymmetricEigenvalues(y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-1) > 1e-9 {
		t.Fatalf("λ1 = %v, want 1", eig[0])
	}
	if eig[1] >= 1 {
		t.Fatalf("λ2 = %v, want < 1", eig[1])
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
