package policy

import (
	"math"
	"testing"

	"netmax/internal/simnet"
)

func TestLambda2LowerBound(t *testing.T) {
	if _, err := Lambda2LowerBound(3); err == nil {
		t.Fatal("m=3 should be rejected")
	}
	v, err := Lambda2LowerBound(5)
	if err != nil || math.Abs(v-0.5) > 1e-12 {
		t.Fatalf("bound = %v, %v; want 0.5", v, err)
	}
}

func TestLambda2UpperBound(t *testing.T) {
	v, err := Lambda2UpperBound(0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || v >= 1 {
		t.Fatalf("upper bound = %v, want in (0,1)", v)
	}
	if _, err := Lambda2UpperBound(0, 5); err == nil {
		t.Fatal("a=0 should be rejected")
	}
}

func TestApproximationRatioAtLeastOne(t *testing.T) {
	r, err := ApproximationRatio(1, 2, 6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r < 1 {
		t.Fatalf("approximation ratio %v < 1", r)
	}
}

func TestApproximationRatioRejectsBadInput(t *testing.T) {
	if _, err := ApproximationRatio(1, 2, 3, 0.05); err == nil {
		t.Fatal("m<=3 accepted")
	}
	if _, err := ApproximationRatio(2, 1, 6, 0.05); err == nil {
		t.Fatal("hi<lo accepted")
	}
	if _, err := ApproximationRatio(0, 1, 6, 0.05); err == nil {
		t.Fatal("lo=0 accepted")
	}
}

func TestGeneratedPolicySpectrumWithinAppendixBBounds(t *testing.T) {
	// Eq. 34: λ₂ of any feasible policy on a fully connected graph with
	// m>3 workers is at least (m-3)/(m-1); Eq. 35 gives the a-dependent
	// upper bound. Both must hold for Algorithm 3's output.
	for _, seed := range []int64{1, 5, 9} {
		m := 6
		times := hetTimes(m, seed)
		adj := simnet.FullyConnected(m)
		pol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1})
		if err != nil {
			t.Fatal(err)
		}
		low, err := Lambda2LowerBound(m)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Lambda2 < low-1e-9 {
			t.Fatalf("seed %d: λ2 = %v below Eq. 34 bound %v", seed, pol.Lambda2, low)
		}
		a := MinPositiveEntry(pol, times, adj, 0.1)
		if a <= 0 {
			t.Fatalf("seed %d: no positive entry in Y_P", seed)
		}
		up, err := Lambda2UpperBound(a, m)
		if err != nil {
			t.Fatal(err)
		}
		if pol.Lambda2 > up+1e-9 {
			t.Fatalf("seed %d: λ2 = %v above Eq. 35 bound %v (a=%v)", seed, pol.Lambda2, up, a)
		}
	}
}

func TestCertifyApproximation(t *testing.T) {
	m := 6
	times := hetTimes(m, 11)
	adj := simnet.FullyConnected(m)
	pol, err := Generate(Input{Times: times, Adj: adj, Alpha: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	obj, lower, ratio, err := CertifyApproximation(pol, times, adj, 0.1, 1e-2)
	if err != nil {
		t.Fatalf("certification failed: %v (obj=%v lower=%v ratio=%v)", err, obj, lower, ratio)
	}
	if obj <= 0 || lower <= 0 || ratio < 1 {
		t.Fatalf("degenerate certificate: obj=%v lower=%v ratio=%v", obj, lower, ratio)
	}
}
