package policy

import (
	"math/rand"
	"testing"

	"netmax/internal/simnet"
)

// TestSampleNeverReturnsZeroProbabilityIndex is the property test for the
// FP fall-through bugfix: over rows whose cumulative sum is perturbed just
// below 1, the sampler must never return self when self carries no mass,
// and never any other zero-probability index.
func TestSampleNeverReturnsZeroProbabilityIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		m := 2 + rng.Intn(6)
		self := rng.Intn(m)
		row := make([]float64, m)
		// Random positive mass on a random subset of non-self entries.
		mass := 0.0
		for j := range row {
			if j != self && rng.Float64() < 0.7 {
				row[j] = rng.Float64() + 1e-3
				mass += row[j]
			}
		}
		if mass == 0 {
			j := (self + 1) % m
			row[j] = 1
			mass = 1
		}
		for j := range row {
			row[j] /= mass
		}
		// Perturb the row so the cumulative sum falls short of 1 — the FP
		// regime where the old sampler leaked the residual mass to self.
		// The perturbation is scaled up from ulp size so the fall-through
		// branch is actually hit by random draws.
		for j := range row {
			row[j] -= 1e-3 * row[j]
		}
		for draw := 0; draw < 50; draw++ {
			j := Sample(row, self, rng)
			if row[j] <= 0 {
				t.Fatalf("trial %d: sampled zero-probability index %d (self=%d, row=%v)", trial, j, self, row)
			}
			if j == self {
				t.Fatalf("trial %d: sampled self with p[self]=0 (row=%v)", trial, row)
			}
		}
	}
	// Grossly under-normalized row: every draw in [0.5, 1) falls through,
	// and must land on the last positive entry, never on zero-mass self.
	short := []float64{0.25, 0, 0.25, 0}
	for i := 0; i < 400; i++ {
		if j := Sample(short, 3, rng); j != 0 && j != 2 {
			t.Fatalf("under-normalized row sampled %d, want 0 or 2", j)
		}
	}
}

func TestSampleSelfMassIsLegitimate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	row := []float64{0.5, 0.5} // self=1 carries real mass
	sawSelf := false
	for i := 0; i < 200; i++ {
		if Sample(row, 1, rng) == 1 {
			sawSelf = true
		}
	}
	if !sawSelf {
		t.Fatal("self with positive probability was never sampled")
	}
	// Empty row: self is the only sane answer.
	if j := Sample([]float64{0, 0, 0}, 2, rng); j != 2 {
		t.Fatalf("empty row sampled %d, want self", j)
	}
}

func TestSampleMaskedSkipsMaskedPeers(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	row := []float64{0, 0.5, 0.3, 0.2}
	masked := []bool{false, true, false, false}
	for i := 0; i < 500; i++ {
		j := SampleMasked(row, 0, masked, rng)
		if j == 1 {
			t.Fatal("sampled a masked peer")
		}
		if j == 0 {
			t.Fatal("sampled zero-probability self")
		}
	}
	// All peers masked: self is the only fallback.
	all := []bool{false, true, true, true}
	if j := SampleMasked(row, 0, all, rng); j != 0 {
		t.Fatalf("fully masked row sampled %d, want self", j)
	}
	// Nil mask must agree with Sample draw-for-draw.
	a := rand.New(rand.NewSource(11))
	b := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		if x, y := Sample(row, 0, a), SampleMasked(row, 0, nil, b); x != y {
			t.Fatalf("Sample and nil-mask SampleMasked diverged: %d vs %d", x, y)
		}
	}
}

func TestGenerateLiveRestrictsToLiveSubgraph(t *testing.T) {
	m := 4
	adj := simnet.FullyConnected(m)
	times := make([][]float64, m)
	for i := range times {
		times[i] = make([]float64, m)
		for j := range times[i] {
			if i != j {
				times[i][j] = 1
			}
		}
	}
	in := Input{Times: times, Adj: adj, Alpha: 0.1}
	alive := []bool{true, true, false, true}
	pol, err := GenerateLive(in, alive)
	if err != nil {
		t.Fatal(err)
	}
	if len(pol.P) != m {
		t.Fatalf("embedded policy has %d rows, want %d", len(pol.P), m)
	}
	// Dead row pinned to self; dead column zero.
	if pol.P[2][2] != 1 {
		t.Fatalf("dead row not pinned to self: %v", pol.P[2])
	}
	for i := 0; i < m; i++ {
		if i != 2 && pol.P[i][2] != 0 {
			t.Fatalf("live worker %d routes to dead worker: %v", i, pol.P[i])
		}
	}
	// Live rows are proper distributions over live neighbors.
	for _, i := range []int{0, 1, 3} {
		sum := 0.0
		for j, v := range pol.P[i] {
			if v < 0 {
				t.Fatalf("negative probability p[%d][%d]", i, j)
			}
			sum += v
		}
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("live row %d sums to %v", i, sum)
		}
	}
	// All-true and nil liveness behave like plain Generate.
	full, err := GenerateLive(in, []bool{true, true, true, true})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.P) != m || full.P[2][2] == 1 {
		t.Fatal("all-alive GenerateLive restricted the graph")
	}
	// One survivor: no policy.
	if _, err := GenerateLive(in, []bool{false, false, true, false}); err == nil {
		t.Fatal("single live worker must not admit a policy")
	}
}
