package data

import (
	"fmt"
	"math/rand"
)

// Partition assigns a shard of a dataset to each of M workers.
type Partition struct {
	Shards []*Dataset
	// Segments[i] is the relative data weight of worker i (1 except under
	// the non-uniform segment scheme of Section V-F, where batch size is
	// 64 x segments).
	Segments []int
}

// Uniform splits train evenly across m workers (Sections V-B..V-E).
func Uniform(train *Dataset, m int, seed int64) *Partition {
	idx := shuffledIndices(train.Len(), seed)
	shards := make([]*Dataset, m)
	segs := make([]int, m)
	per := train.Len() / m
	for i := 0; i < m; i++ {
		shards[i] = train.Slice(idx[i*per : (i+1)*per])
		segs[i] = 1
	}
	return &Partition{Shards: shards, Segments: segs}
}

// Segments implements the paper's non-uniform partitioning (Section V-F):
// the dataset is cut into sum(segments) equal segments and worker i receives
// segments[i] of them. The paper's 8-node setting uses
// (1,1,1,1,2,1,2,1); the 16-node ImageNet setting appends another
// (1,...,1,2,1,2,1,2,1,2,1).
func Segments(train *Dataset, segments []int, seed int64) *Partition {
	total := 0
	for _, s := range segments {
		if s <= 0 {
			panic(fmt.Sprintf("data: segment count must be positive, got %v", segments))
		}
		total += s
	}
	idx := shuffledIndices(train.Len(), seed)
	per := train.Len() / total
	shards := make([]*Dataset, len(segments))
	off := 0
	for i, s := range segments {
		n := s * per
		shards[i] = train.Slice(idx[off : off+n])
		off += n
	}
	return &Partition{Shards: shards, Segments: append([]int(nil), segments...)}
}

// PaperSegments8 is the 8-worker segment layout of Section V-F.
func PaperSegments8() []int { return []int{1, 1, 1, 1, 2, 1, 2, 1} }

// PaperSegments16 is the 16-worker ImageNet segment layout of Section V-F.
func PaperSegments16() []int {
	return []int{1, 1, 1, 1, 1, 1, 1, 1, 2, 1, 2, 1, 2, 1, 2, 1}
}

// LabelSkew removes the given labels from each worker's shard, reproducing
// the paper's extreme non-IID setting. lostLabels[i] lists the class labels
// worker i never sees. Remaining examples are split round-robin so each
// worker still gets a similar sample count.
func LabelSkew(train *Dataset, lostLabels [][]int, seed int64) *Partition {
	m := len(lostLabels)
	idx := shuffledIndices(train.Len(), seed)
	perWorker := make([][]int, m)
	next := 0
	for _, i := range idx {
		// Assign example i to the next worker (round-robin) that is allowed
		// to see its label.
		for tries := 0; tries < m; tries++ {
			w := (next + tries) % m
			if !contains(lostLabels[w], train.Labels[i]) {
				perWorker[w] = append(perWorker[w], i)
				next = (w + 1) % m
				break
			}
		}
	}
	shards := make([]*Dataset, m)
	segs := make([]int, m)
	for w := range shards {
		shards[w] = train.Slice(perWorker[w])
		segs[w] = 1
	}
	return &Partition{Shards: shards, Segments: segs}
}

// TableIVSkew returns the paper's Table IV MNIST label distribution for 8
// workers: w0..w3 on server 1 lose {0,1,2},{0,1,3},{0,1,4},{0,1,5}; w4..w7 on
// server 2 lose {5,6,7},{5,6,8},{5,6,9},{5,6,0}.
func TableIVSkew() [][]int {
	return [][]int{
		{0, 1, 2}, {0, 1, 3}, {0, 1, 4}, {0, 1, 5},
		{5, 6, 7}, {5, 6, 8}, {5, 6, 9}, {5, 6, 0},
	}
}

// TableVIISkew returns the paper's Table VII cross-region label distribution
// for 6 workers (US West, US East, Ireland, Mumbai, Singapore, Tokyo).
func TableVIISkew() [][]int {
	return [][]int{
		{0, 1, 2}, {1, 2, 3}, {2, 3, 4}, {4, 5, 6}, {5, 6, 7}, {6, 7, 8},
	}
}

func shuffledIndices(n int, seed int64) []int {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(n)
	return idx
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
