// Package data generates the synthetic classification datasets and the data
// partitionings used throughout the evaluation.
//
// The paper trains on MNIST, CIFAR10/100, Tiny-ImageNet and ImageNet. Those
// datasets are not available in this environment, so each is substituted by a
// deterministic synthetic Gaussian-cluster dataset with the same number of
// classes and a feature dimensionality scaled to keep single-CPU training
// tractable (see docs/ARCHITECTURE.md). The learning dynamics that matter for the
// evaluation — a non-trivial loss surface, stochastic gradients, sensitivity
// to data skew — are preserved.
package data

import (
	"fmt"
	"math"
	"math/rand"

	"netmax/internal/tensor"
)

// Dataset is an in-memory labeled dataset.
type Dataset struct {
	Name    string
	X       *tensor.Tensor // examples x features
	Labels  []int
	Classes int
}

// Len returns the number of examples.
func (d *Dataset) Len() int { return len(d.Labels) }

// Dim returns the feature dimensionality.
func (d *Dataset) Dim() int { return d.X.Cols() }

// Slice returns a view dataset containing the examples at the given indices
// (data is copied).
func (d *Dataset) Slice(idx []int) *Dataset {
	dim := d.Dim()
	x := tensor.New(len(idx), dim)
	labels := make([]int, len(idx))
	for r, i := range idx {
		copy(x.Data[r*dim:(r+1)*dim], d.X.Data[i*dim:(i+1)*dim])
		labels[r] = d.Labels[i]
	}
	return &Dataset{Name: d.Name, X: x, Labels: labels, Classes: d.Classes}
}

// Batch copies rows [start, start+size) wrapping around the dataset.
func (d *Dataset) Batch(start, size int) (*tensor.Tensor, []int) {
	dim := d.Dim()
	x := tensor.New(size, dim)
	labels := make([]int, size)
	n := d.Len()
	for r := 0; r < size; r++ {
		i := (start + r) % n
		copy(x.Data[r*dim:(r+1)*dim], d.X.Data[i*dim:(i+1)*dim])
		labels[r] = d.Labels[i]
	}
	return x, labels
}

// Spec describes a synthetic dataset family.
type Spec struct {
	Name       string
	Classes    int
	Dim        int
	TrainSize  int
	TestSize   int
	ClusterStd float64 // noise around each class center; larger = harder task
	// Sep scales the class-center spread: centers are drawn with
	// per-coordinate std Sep/sqrt(Dim), so the expected distance between two
	// class centers is ~Sep*sqrt(2) regardless of dimensionality. The
	// Sep/ClusterStd ratio is calibrated per dataset so trained test
	// accuracy lands near the paper's reported accuracy for that dataset
	// (Tables II/V/VI).
	Sep float64
}

// Specs mirroring the paper's five datasets. Sizes are scaled down ~100x to
// stay single-CPU tractable while keeping class-count structure.
var (
	// SynthMNIST substitutes MNIST: 10 classes, easy (~99% accuracy).
	SynthMNIST = Spec{Name: "MNIST", Classes: 10, Dim: 16, TrainSize: 2000, TestSize: 500, ClusterStd: 0.6, Sep: 4.0}
	// SynthCIFAR10 substitutes CIFAR10: 10 classes, harder (~90%).
	SynthCIFAR10 = Spec{Name: "CIFAR10", Classes: 10, Dim: 24, TrainSize: 2000, TestSize: 500, ClusterStd: 1.0, Sep: 3.3}
	// SynthCIFAR100 substitutes CIFAR100: 100 classes (~72% ResNet18).
	SynthCIFAR100 = Spec{Name: "CIFAR100", Classes: 100, Dim: 32, TrainSize: 4000, TestSize: 1000, ClusterStd: 0.9, Sep: 3.85}
	// SynthTinyImageNet substitutes Tiny-ImageNet: 200 classes, few samples
	// per class (~57%; the paper notes accuracy is limited by data scarcity).
	SynthTinyImageNet = Spec{Name: "TinyImageNet", Classes: 200, Dim: 32, TrainSize: 5000, TestSize: 1000, ClusterStd: 1.1, Sep: 4.25}
	// SynthImageNet substitutes ImageNet: 1000 classes (scaled to 100 here
	// with the name kept for experiment labeling; full 1000-way softmax on
	// one CPU is wasteful without changing any algorithmic behaviour). ~73%.
	SynthImageNet = Spec{Name: "ImageNet", Classes: 100, Dim: 40, TrainSize: 6000, TestSize: 1000, ClusterStd: 1.0, Sep: 3.9}
)

// AllSpecs lists the dataset zoo.
var AllSpecs = []Spec{SynthMNIST, SynthCIFAR10, SynthCIFAR100, SynthTinyImageNet, SynthImageNet}

// SpecByName returns the dataset spec with the given name.
func SpecByName(name string) (Spec, error) {
	for _, s := range AllSpecs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("data: unknown dataset spec %q", name)
}

// Generate materializes the train and test splits for a spec. Identical
// seeds yield identical data.
func (s Spec) Generate(seed int64) (train, test *Dataset) {
	rng := rand.New(rand.NewSource(seed))
	sep := s.Sep
	if sep <= 0 {
		sep = 4.0
	}
	centerStd := sep / math.Sqrt(float64(s.Dim))
	centers := make([][]float64, s.Classes)
	for c := range centers {
		center := make([]float64, s.Dim)
		for j := range center {
			center[j] = rng.NormFloat64() * centerStd
		}
		centers[c] = center
	}
	gen := func(n int) *Dataset {
		x := tensor.New(n, s.Dim)
		labels := make([]int, n)
		for i := 0; i < n; i++ {
			c := i % s.Classes
			labels[i] = c
			row := x.Data[i*s.Dim : (i+1)*s.Dim]
			for j := range row {
				row[j] = centers[c][j] + rng.NormFloat64()*s.ClusterStd
			}
		}
		// Shuffle so sequential batches are class-mixed.
		rng.Shuffle(n, func(a, b int) {
			labels[a], labels[b] = labels[b], labels[a]
			ra := x.Data[a*s.Dim : (a+1)*s.Dim]
			rb := x.Data[b*s.Dim : (b+1)*s.Dim]
			for j := range ra {
				ra[j], rb[j] = rb[j], ra[j]
			}
		})
		return &Dataset{Name: s.Name, X: x, Labels: labels, Classes: s.Classes}
	}
	return gen(s.TrainSize), gen(s.TestSize)
}
