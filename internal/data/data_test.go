package data

import (
	"testing"
	"testing/quick"
)

func TestGenerateDeterministic(t *testing.T) {
	a, _ := SynthMNIST.Generate(42)
	b, _ := SynthMNIST.Generate(42)
	if a.Len() != b.Len() {
		t.Fatal("sizes differ")
	}
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("data differs for equal seeds")
		}
	}
	c, _ := SynthMNIST.Generate(43)
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateShapes(t *testing.T) {
	for _, s := range AllSpecs {
		train, test := s.Generate(1)
		if train.Len() != s.TrainSize || test.Len() != s.TestSize {
			t.Errorf("%s: sizes %d/%d, want %d/%d", s.Name, train.Len(), test.Len(), s.TrainSize, s.TestSize)
		}
		if train.Dim() != s.Dim {
			t.Errorf("%s: dim %d, want %d", s.Name, train.Dim(), s.Dim)
		}
		for _, l := range train.Labels {
			if l < 0 || l >= s.Classes {
				t.Fatalf("%s: label %d out of range", s.Name, l)
			}
		}
	}
}

func TestAllClassesPresent(t *testing.T) {
	train, _ := SynthCIFAR100.Generate(2)
	seen := make(map[int]bool)
	for _, l := range train.Labels {
		seen[l] = true
	}
	if len(seen) != SynthCIFAR100.Classes {
		t.Fatalf("only %d of %d classes present", len(seen), SynthCIFAR100.Classes)
	}
}

func TestBatchWrapsAround(t *testing.T) {
	train, _ := SynthMNIST.Generate(3)
	n := train.Len()
	x, labels := train.Batch(n-2, 5)
	if x.Rows() != 5 || len(labels) != 5 {
		t.Fatalf("batch shape wrong: %v, %d labels", x.Shape, len(labels))
	}
	// Row 2 of the batch should equal dataset row 0.
	for j := 0; j < train.Dim(); j++ {
		if x.At(2, j) != train.X.At(0, j) {
			t.Fatal("wrap-around row mismatch")
		}
	}
}

func TestSliceCopies(t *testing.T) {
	train, _ := SynthMNIST.Generate(4)
	sub := train.Slice([]int{0, 1})
	sub.X.Data[0] = 12345
	if train.X.Data[0] == 12345 {
		t.Fatal("Slice shares storage with parent")
	}
}

func TestUniformPartition(t *testing.T) {
	train, _ := SynthMNIST.Generate(5)
	p := Uniform(train, 8, 1)
	if len(p.Shards) != 8 {
		t.Fatalf("shards = %d", len(p.Shards))
	}
	per := train.Len() / 8
	total := 0
	for i, s := range p.Shards {
		if s.Len() != per {
			t.Errorf("shard %d len = %d, want %d", i, s.Len(), per)
		}
		total += s.Len()
		if p.Segments[i] != 1 {
			t.Errorf("uniform segment weight = %d", p.Segments[i])
		}
	}
	if total > train.Len() {
		t.Fatal("shards overlap-count exceeds dataset")
	}
}

func TestUniformPartitionDisjoint(t *testing.T) {
	train, _ := SynthMNIST.Generate(6)
	p := Uniform(train, 4, 2)
	// Fingerprint each row; shards must not share rows.
	seen := make(map[[2]float64]int)
	for si, s := range p.Shards {
		for i := 0; i < s.Len(); i++ {
			key := [2]float64{s.X.At(i, 0), s.X.At(i, 1)}
			if prev, ok := seen[key]; ok && prev != si {
				t.Fatalf("row shared between shards %d and %d", prev, si)
			}
			seen[key] = si
		}
	}
}

func TestSegmentsProportions(t *testing.T) {
	train, _ := SynthCIFAR100.Generate(7)
	segs := PaperSegments8()
	p := Segments(train, segs, 1)
	per := train.Len() / 10 // total segments = 10
	for i, s := range p.Shards {
		if s.Len() != segs[i]*per {
			t.Errorf("shard %d len = %d, want %d", i, s.Len(), segs[i]*per)
		}
	}
}

func TestPaperSegmentLayouts(t *testing.T) {
	s8 := PaperSegments8()
	if len(s8) != 8 || sum(s8) != 10 {
		t.Fatalf("PaperSegments8 = %v", s8)
	}
	s16 := PaperSegments16()
	if len(s16) != 16 || sum(s16) != 20 {
		t.Fatalf("PaperSegments16 = %v", s16)
	}
}

func TestSegmentsPanicsOnNonPositive(t *testing.T) {
	train, _ := SynthMNIST.Generate(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Segments(train, []int{1, 0}, 1)
}

func TestLabelSkewExcludesLostLabels(t *testing.T) {
	train, _ := SynthMNIST.Generate(8)
	skew := TableIVSkew()
	p := LabelSkew(train, skew, 3)
	if len(p.Shards) != 8 {
		t.Fatalf("shards = %d", len(p.Shards))
	}
	for w, s := range p.Shards {
		for _, l := range s.Labels {
			for _, lost := range skew[w] {
				if l == lost {
					t.Fatalf("worker %d saw lost label %d", w, l)
				}
			}
		}
		if s.Len() == 0 {
			t.Fatalf("worker %d got no data", w)
		}
	}
}

func TestLabelSkewCoversAllExamplesItCan(t *testing.T) {
	train, _ := SynthMNIST.Generate(9)
	p := LabelSkew(train, TableIVSkew(), 4)
	total := 0
	for _, s := range p.Shards {
		total += s.Len()
	}
	// Every label is admissible on at least one worker, so all examples
	// should be assigned.
	if total != train.Len() {
		t.Fatalf("assigned %d of %d examples", total, train.Len())
	}
}

func TestTableSkewShapes(t *testing.T) {
	if len(TableIVSkew()) != 8 {
		t.Fatal("TableIVSkew should list 8 workers")
	}
	if len(TableVIISkew()) != 6 {
		t.Fatal("TableVIISkew should list 6 regions")
	}
	for _, row := range append(TableIVSkew(), TableVIISkew()...) {
		if len(row) != 3 {
			t.Fatalf("each worker loses exactly 3 labels, got %v", row)
		}
	}
}

func TestSpecByName(t *testing.T) {
	s, err := SpecByName("CIFAR10")
	if err != nil || s.Classes != 10 {
		t.Fatalf("SpecByName = %+v, %v", s, err)
	}
	if _, err := SpecByName("bogus"); err == nil {
		t.Fatal("expected error")
	}
}

func TestPartitionShardLabelDistributionProperty(t *testing.T) {
	// Property: uniform partitions of a label-balanced dataset keep every
	// class present on every worker (for small m and many samples).
	f := func(seed int64) bool {
		train, _ := SynthMNIST.Generate(seed)
		p := Uniform(train, 4, seed)
		for _, s := range p.Shards {
			seen := map[int]bool{}
			for _, l := range s.Labels {
				seen[l] = true
			}
			if len(seen) < 8 { // generous: at least 8 of 10 classes
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func sum(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}
