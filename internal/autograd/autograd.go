// Package autograd implements a minimal reverse-mode automatic
// differentiation engine on top of internal/tensor.
//
// The design is a dynamic tape: every operation on *Value records its parents
// and a backward closure; Backward performs a topological sort from the loss
// node and accumulates gradients. This is the same execution model the paper's
// PyTorch substrate provides, built from scratch because no deep-learning
// framework is available in the target environment (see docs/ARCHITECTURE.md).
//
// Allocation discipline: op outputs, non-leaf gradients and backward-pass
// temporaries are drawn from the tensor arena (tensor.GetPooled) and handed
// back once Backward finishes, so steady-state training reuses the same
// buffers every iteration instead of allocating per op. Two consequences for
// callers:
//
//   - A graph may be backpropagated at most once. After Backward the
//     intermediate nodes' Data and Grad buffers have been recycled (only the
//     root's Data and the leaves' Data/Grad survive); build a fresh graph
//     for another pass — leaf gradients still accumulate across graphs.
//   - Values must not be shared between graphs that are backpropagated
//     separately: the first Backward would recycle buffers the second still
//     needs. Leaves (parameters, constants) are exempt and freely shared.
package autograd

import (
	"fmt"
	"math"

	"netmax/internal/tensor"
)

// Value is a node in the computation graph: a tensor plus (after Backward)
// its gradient with respect to the final scalar output.
type Value struct {
	Data *tensor.Tensor
	Grad *tensor.Tensor

	requiresGrad bool
	pooled       bool // Data is arena-owned: recycle it after Backward
	parents      []*Value
	backward     func() // accumulates into parents' Grad using v.Grad
	label        string
}

// NewLeaf wraps t as a graph leaf. If requiresGrad, Backward will populate
// its Grad.
func NewLeaf(t *tensor.Tensor, requiresGrad bool) *Value {
	return &Value{Data: t, requiresGrad: requiresGrad, label: "leaf"}
}

// Constant wraps t as a leaf that does not require gradients.
func Constant(t *tensor.Tensor) *Value { return NewLeaf(t, false) }

// RequiresGrad reports whether gradients flow to this node.
func (v *Value) RequiresGrad() bool { return v.requiresGrad }

func newOp(label string, data *tensor.Tensor, parents ...*Value) *Value {
	rg := false
	for _, p := range parents {
		if p.requiresGrad {
			rg = true
			break
		}
	}
	return &Value{Data: data, requiresGrad: rg, parents: parents, label: label}
}

// newPooledOp is newOp for outputs drawn from the tensor arena; Backward
// recycles their Data once the sweep completes.
func newPooledOp(label string, data *tensor.Tensor, parents ...*Value) *Value {
	v := newOp(label, data, parents...)
	v.pooled = true
	return v
}

func (v *Value) ensureGrad() {
	if v.Grad == nil {
		if v.parents == nil {
			// Leaf gradients persist across iterations (the optimizer reads
			// them after Backward), so they are not arena-owned.
			v.Grad = tensor.New(v.Data.Shape...)
		} else {
			// Must be zero-filled: accumulate adds into it.
			v.Grad = tensor.GetPooled(v.Data.Shape...)
		}
	}
}

// accumulate adds g into p.Grad if p participates in the graph.
func accumulate(p *Value, g *tensor.Tensor) {
	if !p.requiresGrad {
		return
	}
	p.ensureGrad()
	p.Grad.AddInPlace(g)
}

// accumTemp accumulates an arena-owned temporary into p's gradient and
// immediately returns the buffer to the arena.
func accumTemp(p *Value, g *tensor.Tensor) {
	accumulate(p, g)
	tensor.Recycle(g)
}

// Add returns a + b.
func Add(a, b *Value) *Value {
	out := newPooledOp("add", tensor.AddInto(tensor.GetPooledDirty(a.Data.Shape...), a.Data, b.Data), a, b)
	out.backward = func() {
		accumulate(a, out.Grad)
		accumulate(b, out.Grad)
	}
	return out
}

// Sub returns a - b.
func Sub(a, b *Value) *Value {
	out := newPooledOp("sub", tensor.SubInto(tensor.GetPooledDirty(a.Data.Shape...), a.Data, b.Data), a, b)
	out.backward = func() {
		accumulate(a, out.Grad)
		if b.requiresGrad {
			accumTemp(b, tensor.ScaleInto(tensor.GetPooledDirty(out.Grad.Shape...), out.Grad, -1))
		}
	}
	return out
}

// Mul returns the elementwise product a*b.
func Mul(a, b *Value) *Value {
	out := newPooledOp("mul", tensor.MulInto(tensor.GetPooledDirty(a.Data.Shape...), a.Data, b.Data), a, b)
	out.backward = func() {
		if a.requiresGrad {
			accumTemp(a, tensor.MulInto(tensor.GetPooledDirty(out.Grad.Shape...), out.Grad, b.Data))
		}
		if b.requiresGrad {
			accumTemp(b, tensor.MulInto(tensor.GetPooledDirty(out.Grad.Shape...), out.Grad, a.Data))
		}
	}
	return out
}

// Scale returns a*s for scalar s.
func Scale(a *Value, s float64) *Value {
	out := newPooledOp("scale", tensor.ScaleInto(tensor.GetPooledDirty(a.Data.Shape...), a.Data, s), a)
	out.backward = func() {
		if a.requiresGrad {
			accumTemp(a, tensor.ScaleInto(tensor.GetPooledDirty(out.Grad.Shape...), out.Grad, s))
		}
	}
	return out
}

// MatMul returns a@b for rank-2 values.
func MatMul(a, b *Value) *Value {
	out := newPooledOp("matmul", tensor.MatMulInto(tensor.GetPooledDirty(a.Data.Shape[0], b.Data.Shape[1]), a.Data, b.Data), a, b)
	out.backward = func() {
		// dA = dOut @ B^T ; dB = A^T @ dOut
		if a.requiresGrad {
			bt := tensor.TransposeInto(tensor.GetPooledDirty(b.Data.Shape[1], b.Data.Shape[0]), b.Data)
			accumTemp(a, tensor.MatMulInto(tensor.GetPooledDirty(a.Data.Shape...), out.Grad, bt))
			tensor.Recycle(bt)
		}
		if b.requiresGrad {
			at := tensor.TransposeInto(tensor.GetPooledDirty(a.Data.Shape[1], a.Data.Shape[0]), a.Data)
			accumTemp(b, tensor.MatMulInto(tensor.GetPooledDirty(b.Data.Shape...), at, out.Grad))
			tensor.Recycle(at)
		}
	}
	return out
}

// AddRowVector adds a bias vector v to every row of rank-2 a.
func AddRowVector(a, v *Value) *Value {
	out := newPooledOp("addrow", tensor.AddRowVectorInto(tensor.GetPooledDirty(a.Data.Shape...), a.Data, v.Data), a, v)
	out.backward = func() {
		accumulate(a, out.Grad)
		if v.requiresGrad {
			accumTemp(v, tensor.SumRowsInto(tensor.GetPooledDirty(v.Data.Len()), out.Grad))
		}
	}
	return out
}

// ReLU returns max(x, 0) elementwise.
func ReLU(a *Value) *Value {
	out := newPooledOp("relu", tensor.ApplyInto(tensor.GetPooledDirty(a.Data.Shape...), a.Data, func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	}), a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		// Zero-filled: only the positive positions are written below.
		g := tensor.GetPooled(a.Data.Shape...)
		for i, x := range a.Data.Data {
			if x > 0 {
				g.Data[i] = out.Grad.Data[i]
			}
		}
		accumTemp(a, g)
	}
	return out
}

// Tanh returns tanh(x) elementwise.
func Tanh(a *Value) *Value {
	out := newPooledOp("tanh", tensor.ApplyInto(tensor.GetPooledDirty(a.Data.Shape...), a.Data, math.Tanh), a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := tensor.GetPooledDirty(a.Data.Shape...)
		for i, y := range out.Data.Data {
			g.Data[i] = out.Grad.Data[i] * (1 - y*y)
		}
		accumTemp(a, g)
	}
	return out
}

// Mean returns the scalar mean of all elements as a 1-element value.
func Mean(a *Value) *Value {
	data := tensor.GetPooledDirty(1)
	data.Data[0] = a.Data.Mean()
	out := newPooledOp("mean", data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		c := out.Grad.Data[0] / float64(a.Data.Len())
		g := tensor.GetPooledDirty(a.Data.Shape...)
		for i := range g.Data {
			g.Data[i] = c
		}
		accumTemp(a, g)
	}
	return out
}

// SumSquares returns the scalar sum of squared elements (for L2 terms).
func SumSquares(a *Value) *Value {
	data := tensor.GetPooledDirty(1)
	data.Data[0] = tensor.Dot(a.Data, a.Data)
	out := newPooledOp("sumsq", data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		accumTemp(a, tensor.ScaleInto(tensor.GetPooledDirty(a.Data.Shape...), a.Data, 2*out.Grad.Data[0]))
	}
	return out
}

// SoftmaxCrossEntropy computes the mean cross-entropy loss of rank-2 logits
// against integer class labels, with a numerically stable fused
// softmax+log+NLL. It returns a scalar value.
func SoftmaxCrossEntropy(logits *Value, labels []int) *Value {
	m, n := logits.Data.Shape[0], logits.Data.Shape[1]
	if len(labels) != m {
		panic(fmt.Sprintf("autograd: %d labels for %d rows", len(labels), m))
	}
	probs := tensor.GetPooledDirty(m, n)
	loss := 0.0
	for i := 0; i < m; i++ {
		row := logits.Data.Data[i*n : (i+1)*n]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		prow := probs.Data[i*n : (i+1)*n]
		for j, v := range row {
			e := math.Exp(v - maxv)
			prow[j] = e
			sum += e
		}
		for j := range prow {
			prow[j] /= sum
		}
		p := prow[labels[i]]
		if p < 1e-300 {
			p = 1e-300
		}
		loss -= math.Log(p)
	}
	loss /= float64(m)
	data := tensor.GetPooledDirty(1)
	data.Data[0] = loss
	out := newPooledOp("softmax-xent", data, logits)
	out.backward = func() {
		scale := out.Grad.Data[0] / float64(m)
		g := tensor.GetPooledDirty(m, n)
		for i := 0; i < m; i++ {
			prow := probs.Data[i*n : (i+1)*n]
			grow := g.Data[i*n : (i+1)*n]
			for j := range grow {
				grow[j] = prow[j] * scale
			}
			grow[labels[i]] -= scale
		}
		tensor.Recycle(probs)
		accumTemp(logits, g)
	}
	return out
}

// MSE returns mean squared error between prediction a and target t
// (target receives no gradient).
func MSE(a *Value, target *tensor.Tensor) *Value {
	diff := tensor.SubInto(tensor.GetPooledDirty(a.Data.Shape...), a.Data, target)
	data := tensor.GetPooledDirty(1)
	data.Data[0] = tensor.Dot(diff, diff) / float64(diff.Len())
	out := newPooledOp("mse", data, a)
	out.backward = func() {
		scale := 2 * out.Grad.Data[0] / float64(diff.Len())
		accumTemp(a, tensor.ScaleInto(tensor.GetPooledDirty(diff.Shape...), diff, scale))
		tensor.Recycle(diff)
	}
	return out
}

// Transpose2D returns the transpose of a rank-2 value.
func Transpose2D(a *Value) *Value {
	out := newPooledOp("transpose", tensor.TransposeInto(tensor.GetPooledDirty(a.Data.Shape[1], a.Data.Shape[0]), a.Data), a)
	out.backward = func() {
		if a.requiresGrad {
			accumTemp(a, tensor.TransposeInto(tensor.GetPooledDirty(a.Data.Shape...), out.Grad))
		}
	}
	return out
}

// Reshape reinterprets a value's data under a new shape with the same
// element count; gradients flow back under the original shape.
func Reshape(a *Value, shape ...int) *Value {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != a.Data.Len() {
		panic(fmt.Sprintf("autograd: Reshape %v to %v", a.Data.Shape, shape))
	}
	data := tensor.GetPooledDirty(shape...)
	copy(data.Data, a.Data.Data)
	out := newPooledOp("reshape", data, a)
	out.backward = func() {
		if !a.requiresGrad {
			return
		}
		g := tensor.GetPooledDirty(a.Data.Shape...)
		copy(g.Data, out.Grad.Data)
		accumTemp(a, g)
	}
	return out
}

// Custom creates a node with a user-supplied backward function: given the
// node's output gradient it must return one gradient tensor per parent (nil
// entries are skipped). This is the extension point used by layers whose
// backward pass is cheaper to write directly (im2col, pooling). Both data
// and the returned gradients remain caller-owned: the arena never recycles
// them.
func Custom(label string, data *tensor.Tensor, parents []*Value, back func(grad *tensor.Tensor, parents []*Value) []*tensor.Tensor) *Value {
	out := newOp(label, data, parents...)
	out.backward = func() {
		grads := back(out.Grad, parents)
		if len(grads) != len(parents) {
			panic(fmt.Sprintf("autograd: Custom %q returned %d gradients for %d parents", label, len(grads), len(parents)))
		}
		for i, g := range grads {
			if g != nil {
				accumulate(parents[i], g)
			}
		}
	}
	return out
}

// Item returns the scalar payload of a 1-element value.
func (v *Value) Item() float64 {
	if v.Data.Len() != 1 {
		panic("autograd: Item on non-scalar value")
	}
	return v.Data.Data[0]
}

// Backward runs reverse-mode autodiff from v, which must be scalar.
// Gradients accumulate into every reachable node with RequiresGrad.
//
// After the sweep the graph's intermediate buffers are returned to the
// tensor arena: every non-leaf node loses its Grad, and every pooled op
// output except v itself loses its Data. v's Data survives so the loss can
// still be read with Item; leaf Data and Grad are never touched. The graph
// must therefore not be backpropagated a second time.
func Backward(v *Value) {
	if v.Data.Len() != 1 {
		panic("autograd: Backward requires a scalar output")
	}
	// Topological order via iterative DFS.
	order := make([]*Value, 0, 64)
	visited := make(map[*Value]bool)
	type frame struct {
		node *Value
		idx  int
	}
	stack := []frame{{v, 0}}
	visited[v] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.idx < len(f.node.parents) {
			p := f.node.parents[f.idx]
			f.idx++
			if !visited[p] {
				visited[p] = true
				stack = append(stack, frame{p, 0})
			}
			continue
		}
		order = append(order, f.node)
		stack = stack[:len(stack)-1]
	}
	// order is children-after-parents; walk it in reverse.
	v.ensureGrad()
	v.Grad.Data[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		n := order[i]
		if n.backward != nil && n.requiresGrad && n.Grad != nil {
			n.backward()
		}
	}
	// Release the graph's intermediates back to the arena. The root keeps
	// its Data (callers read the loss after Backward); leaves keep both
	// Data and Grad (the optimizer reads leaf gradients).
	for _, n := range order {
		if n.parents == nil {
			continue
		}
		if n.Grad != nil {
			tensor.Recycle(n.Grad)
			n.Grad = nil
		}
		if n != v && n.pooled {
			tensor.Recycle(n.Data)
			n.Data = nil
		}
	}
}

// ZeroGrad clears the gradients of the given leaves.
func ZeroGrad(leaves ...*Value) {
	for _, l := range leaves {
		if l.Grad != nil {
			l.Grad.Zero()
		}
	}
}
