package autograd_test

import (
	"math/rand"
	"testing"

	"netmax/internal/autograd"
	"netmax/internal/nn"
	"netmax/internal/tensor"
)

// BenchmarkResNet18ForwardBackward measures one full training step's graph
// work — forward pass, reverse sweep and gradient accumulation — of the
// SimResNet18 MLP stand-in on a paper-sized batch. allocs/op is the headline
// number: the buffer-pooled autograd arena exists to drive it toward zero.
func BenchmarkResNet18ForwardBackward(b *testing.B) {
	const (
		batch   = 16
		dim     = 24 // SynthCIFAR10 feature dimensionality
		classes = 10
	)
	model := nn.SimResNet18.Build(1, dim, classes)
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 1, batch, dim)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.ZeroGrad()
		loss := model.Loss(x, labels)
		autograd.Backward(loss)
	}
}

// BenchmarkResNet18ForwardOnly isolates the inference path (no graph
// teardown, no gradient buffers) for comparison with the training step.
func BenchmarkResNet18ForwardOnly(b *testing.B) {
	const (
		batch   = 16
		dim     = 24
		classes = 10
	)
	model := nn.SimResNet18.Build(1, dim, classes)
	rng := rand.New(rand.NewSource(2))
	x := tensor.Randn(rng, 1, batch, dim)
	labels := make([]int, batch)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.Loss(x, labels)
	}
}
