package autograd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"netmax/internal/tensor"
)

// numericalGrad computes d(loss)/d(x[i]) by central differences.
func numericalGrad(f func() float64, x *tensor.Tensor, i int) float64 {
	const h = 1e-6
	orig := x.Data[i]
	x.Data[i] = orig + h
	fp := f()
	x.Data[i] = orig - h
	fm := f()
	x.Data[i] = orig
	return (fp - fm) / (2 * h)
}

func TestAddBackward(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float64{1, 2}, 2), true)
	b := NewLeaf(tensor.FromSlice([]float64{3, 4}, 2), true)
	out := Mean(Add(a, b))
	Backward(out)
	for i := 0; i < 2; i++ {
		if math.Abs(a.Grad.Data[i]-0.5) > 1e-12 {
			t.Fatalf("a.Grad[%d] = %v, want 0.5", i, a.Grad.Data[i])
		}
		if math.Abs(b.Grad.Data[i]-0.5) > 1e-12 {
			t.Fatalf("b.Grad[%d] = %v, want 0.5", i, b.Grad.Data[i])
		}
	}
}

func TestSubBackward(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float64{1, 2}, 2), true)
	b := NewLeaf(tensor.FromSlice([]float64{3, 4}, 2), true)
	Backward(Mean(Sub(a, b)))
	if b.Grad.Data[0] != -0.5 {
		t.Fatalf("b.Grad = %v, want -0.5", b.Grad.Data[0])
	}
}

func TestMulBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	at := tensor.Randn(rng, 1, 3)
	bt := tensor.Randn(rng, 1, 3)
	a := NewLeaf(at, true)
	b := NewLeaf(bt, true)
	loss := func() float64 {
		return tensor.Mul(at, bt).Mean()
	}
	Backward(Mean(Mul(a, b)))
	for i := 0; i < 3; i++ {
		want := numericalGrad(loss, at, i)
		if math.Abs(a.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("grad a[%d] = %v, numerical %v", i, a.Grad.Data[i], want)
		}
	}
}

func TestMatMulBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	at := tensor.Randn(rng, 1, 2, 3)
	bt := tensor.Randn(rng, 1, 3, 2)
	forward := func() float64 { return tensor.MatMul(at, bt).Mean() }

	a := NewLeaf(at, true)
	b := NewLeaf(bt, true)
	Backward(Mean(MatMul(a, b)))
	for i := range at.Data {
		want := numericalGrad(forward, at, i)
		if math.Abs(a.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("dA[%d] = %v, numerical %v", i, a.Grad.Data[i], want)
		}
	}
	for i := range bt.Data {
		want := numericalGrad(forward, bt, i)
		if math.Abs(b.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("dB[%d] = %v, numerical %v", i, b.Grad.Data[i], want)
		}
	}
}

func TestReLUBackward(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float64{-1, 2, 0, 3}, 4), true)
	Backward(Mean(ReLU(a)))
	want := []float64{0, 0.25, 0, 0.25}
	for i := range want {
		if a.Grad.Data[i] != want[i] {
			t.Fatalf("ReLU grad = %v, want %v", a.Grad.Data, want)
		}
	}
}

func TestTanhBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	at := tensor.Randn(rng, 1, 4)
	forward := func() float64 { return tensor.Apply(at, math.Tanh).Mean() }
	a := NewLeaf(at, true)
	Backward(Mean(Tanh(a)))
	for i := range at.Data {
		want := numericalGrad(forward, at, i)
		if math.Abs(a.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("tanh grad[%d] = %v, numerical %v", i, a.Grad.Data[i], want)
		}
	}
}

func TestAddRowVectorBackward(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float64{1, 2, 3, 4}, 2, 2), true)
	v := NewLeaf(tensor.FromSlice([]float64{10, 20}, 2), true)
	out := AddRowVector(a, v)
	Backward(Mean(out))
	// d mean / d v_j = (#rows)/(m*n) = 2/4 = 0.5
	for j := 0; j < 2; j++ {
		if math.Abs(v.Grad.Data[j]-0.5) > 1e-12 {
			t.Fatalf("bias grad = %v, want 0.5", v.Grad.Data)
		}
	}
}

func TestSoftmaxCrossEntropyMatchesManual(t *testing.T) {
	logits := tensor.FromSlice([]float64{2, 1, 0.1, 0, 0, 5}, 2, 3)
	labels := []int{0, 2}
	l := NewLeaf(logits, true)
	loss := SoftmaxCrossEntropy(l, labels)
	// manual computation
	manual := 0.0
	for i := 0; i < 2; i++ {
		row := logits.Data[i*3 : (i+1)*3]
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v)
		}
		manual -= math.Log(math.Exp(row[labels[i]]) / sum)
	}
	manual /= 2
	if math.Abs(loss.Item()-manual) > 1e-10 {
		t.Fatalf("loss = %v, manual = %v", loss.Item(), manual)
	}
}

func TestSoftmaxCrossEntropyGradNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	logits := tensor.Randn(rng, 1, 3, 4)
	labels := []int{1, 0, 3}
	forward := func() float64 {
		l := NewLeaf(logits, false)
		return SoftmaxCrossEntropy(l, labels).Item()
	}
	l := NewLeaf(logits, true)
	Backward(SoftmaxCrossEntropy(l, labels))
	for i := range logits.Data {
		want := numericalGrad(forward, logits, i)
		if math.Abs(l.Grad.Data[i]-want) > 1e-4 {
			t.Fatalf("xent grad[%d] = %v, numerical %v", i, l.Grad.Data[i], want)
		}
	}
}

func TestSoftmaxGradSumsToZeroPerRow(t *testing.T) {
	// Property: each row of the cross-entropy gradient sums to 0
	// (softmax probabilities sum to one).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 1+rng.Intn(4), 2+rng.Intn(5)
		logits := tensor.Randn(rng, 2, m, n)
		labels := make([]int, m)
		for i := range labels {
			labels[i] = rng.Intn(n)
		}
		l := NewLeaf(logits, true)
		Backward(SoftmaxCrossEntropy(l, labels))
		for i := 0; i < m; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += l.Grad.Data[i*n+j]
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMSEBackwardNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pred := tensor.Randn(rng, 1, 5)
	target := tensor.Randn(rng, 1, 5)
	forward := func() float64 {
		d := tensor.Sub(pred, target)
		return tensor.Dot(d, d) / 5
	}
	p := NewLeaf(pred, true)
	Backward(MSE(p, target))
	for i := range pred.Data {
		want := numericalGrad(forward, pred, i)
		if math.Abs(p.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("mse grad[%d] = %v, numerical %v", i, p.Grad.Data[i], want)
		}
	}
}

func TestSumSquaresBackward(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float64{1, -2}, 2), true)
	Backward(SumSquares(a))
	if a.Grad.Data[0] != 2 || a.Grad.Data[1] != -4 {
		t.Fatalf("sumsq grad = %v, want [2 -4]", a.Grad.Data)
	}
}

func TestGradAccumulationOnSharedNode(t *testing.T) {
	// y = a + a: grad should be 2 * d(mean)
	a := NewLeaf(tensor.FromSlice([]float64{1, 1}, 2), true)
	Backward(Mean(Add(a, a)))
	if math.Abs(a.Grad.Data[0]-1.0) > 1e-12 {
		t.Fatalf("shared node grad = %v, want 1.0", a.Grad.Data[0])
	}
}

func TestConstantGetsNoGrad(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float64{1, 2}, 2), true)
	c := Constant(tensor.FromSlice([]float64{3, 4}, 2))
	Backward(Mean(Mul(a, c)))
	if c.Grad != nil {
		t.Fatal("constant accumulated a gradient")
	}
	if a.Grad == nil {
		t.Fatal("leaf missing gradient")
	}
}

func TestZeroGrad(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float64{1, 2}, 2), true)
	Backward(Mean(a))
	ZeroGrad(a)
	if a.Grad.Sum() != 0 {
		t.Fatal("ZeroGrad did not clear gradients")
	}
}

func TestBackwardTwiceAccumulates(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float64{1, 2}, 2), true)
	out1 := Mean(a)
	Backward(out1)
	g1 := a.Grad.Clone()
	out2 := Mean(a)
	Backward(out2)
	for i := range g1.Data {
		if math.Abs(a.Grad.Data[i]-2*g1.Data[i]) > 1e-12 {
			t.Fatal("second Backward should accumulate")
		}
	}
}

func TestBackwardNonScalarPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a := NewLeaf(tensor.FromSlice([]float64{1, 2}, 2), true)
	Backward(a)
}

func TestScaleBackward(t *testing.T) {
	a := NewLeaf(tensor.FromSlice([]float64{1, 2}, 2), true)
	Backward(Mean(Scale(a, 10)))
	if math.Abs(a.Grad.Data[0]-5) > 1e-12 {
		t.Fatalf("scale grad = %v, want 5", a.Grad.Data[0])
	}
}

func TestDeepChainGradient(t *testing.T) {
	// f(x) = mean(relu(x W1 + b1) W2) — two-layer chain, check numerically.
	rng := rand.New(rand.NewSource(21))
	x := tensor.Randn(rng, 1, 2, 3)
	w1 := tensor.Randn(rng, 1, 3, 4)
	b1 := tensor.Randn(rng, 1, 4)
	w2 := tensor.Randn(rng, 1, 4, 2)
	forward := func() float64 {
		h := tensor.AddRowVector(tensor.MatMul(x, w1), b1)
		h = tensor.Apply(h, func(v float64) float64 {
			if v > 0 {
				return v
			}
			return 0
		})
		return tensor.MatMul(h, w2).Mean()
	}
	xv := NewLeaf(x, false)
	w1v := NewLeaf(w1, true)
	b1v := NewLeaf(b1, true)
	w2v := NewLeaf(w2, true)
	out := Mean(MatMul(ReLU(AddRowVector(MatMul(xv, w1v), b1v)), w2v))
	Backward(out)
	for i := range w1.Data {
		want := numericalGrad(forward, w1, i)
		if math.Abs(w1v.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("w1 grad[%d] = %v, numerical %v", i, w1v.Grad.Data[i], want)
		}
	}
	for i := range b1.Data {
		want := numericalGrad(forward, b1, i)
		if math.Abs(b1v.Grad.Data[i]-want) > 1e-5 {
			t.Fatalf("b1 grad[%d] = %v, numerical %v", i, b1v.Grad.Data[i], want)
		}
	}
}
