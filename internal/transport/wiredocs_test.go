package transport

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"

	"netmax/internal/codec"
)

// TestWireDocsInSync is the docs drift gate: the kind and codec-id tables
// in docs/WIRE.md are normative, so they must match the constants in
// wire.go and the registrations in internal/codec exactly — same names,
// same values, nothing missing, nothing extra. CI's docs job runs this
// test explicitly; renumbering a kind or adding a codec without updating
// the spec fails the build.
func TestWireDocsInSync(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "docs", "WIRE.md"))
	if err != nil {
		t.Fatalf("reading docs/WIRE.md: %v", err)
	}
	doc := string(raw)

	// The authoritative kind table, from wire.go.
	wantKinds := map[string]uint8{
		"pull":       msgPull,
		"pullResp":   msgPullResp,
		"report":     msgReport,
		"reportAck":  msgReportAck,
		"policy":     msgPolicy,
		"policyResp": msgPolicyResp,
	}
	// Documented rows look like: | `pull` | 1 | worker → worker | ... |
	kindRow := regexp.MustCompile("(?m)^\\| `(\\w+)` \\| (\\d+) \\|")
	gotKinds := map[string]uint8{}
	for _, m := range kindRow.FindAllStringSubmatch(doc, -1) {
		v, err := strconv.ParseUint(m[2], 10, 8)
		if err != nil {
			t.Fatalf("kind row %q: %v", m[0], err)
		}
		if _, dup := gotKinds[m[1]]; dup {
			t.Errorf("docs/WIRE.md documents kind %q twice", m[1])
		}
		gotKinds[m[1]] = uint8(v)
	}
	for name, val := range wantKinds {
		got, ok := gotKinds[name]
		if !ok {
			t.Errorf("docs/WIRE.md is missing message kind %q (= %d)", name, val)
			continue
		}
		if got != val {
			t.Errorf("docs/WIRE.md documents kind %q as %d, wire.go says %d", name, got, val)
		}
		delete(gotKinds, name)
	}
	for name, val := range gotKinds {
		t.Errorf("docs/WIRE.md documents unknown message kind %q (= %d)", name, val)
	}

	// The codec-id table must cover the registry exactly: every id that
	// resolves, under the name its codec reports, and no id beyond the
	// first unregistered one.
	codecRow := regexp.MustCompile("(?m)^\\| (\\d+) \\| `([\\w-]+)` \\|")
	gotCodecs := map[uint8]string{}
	for _, m := range codecRow.FindAllStringSubmatch(doc, -1) {
		v, err := strconv.ParseUint(m[1], 10, 8)
		if err != nil {
			t.Fatalf("codec row %q: %v", m[0], err)
		}
		if _, dup := gotCodecs[uint8(v)]; dup {
			t.Errorf("docs/WIRE.md documents codec id %d twice", v)
		}
		gotCodecs[uint8(v)] = m[2]
	}
	for id := 0; id < 256; id++ {
		c, err := codec.ByID(uint8(id))
		if err != nil {
			// First unregistered id ends the stable range; the doc must
			// not document ids beyond it.
			break
		}
		name, ok := gotCodecs[uint8(id)]
		if !ok {
			t.Errorf("docs/WIRE.md is missing codec id %d (%s)", id, c.Name())
			continue
		}
		if name != c.Name() {
			t.Errorf("docs/WIRE.md names codec id %d %q, the registry says %q", id, name, c.Name())
		}
		if c.ID() != uint8(id) {
			t.Errorf("codec.ByID(%d) returned a codec reporting ID %d", id, c.ID())
		}
		delete(gotCodecs, uint8(id))
	}
	for id, name := range gotCodecs {
		t.Errorf("docs/WIRE.md documents codec id %d (%q) that the registry does not know", id, name)
	}

	// Every registered codec's flag-facing name must appear in the doc's
	// table (codec.Names is what the manifest schema and -codec flags
	// accept).
	for _, name := range codec.Names() {
		if !regexp.MustCompile("`" + regexp.QuoteMeta(name) + "`").MatchString(doc) {
			t.Errorf("docs/WIRE.md never mentions registered codec %q", name)
		}
	}

	// The documented frame-body cap must match the constant.
	if want := fmt.Sprintf("%d GiB", maxFrameBody>>30); !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(doc) {
		t.Errorf("docs/WIRE.md does not state the %s frame-body cap (maxFrameBody)", want)
	}
}
