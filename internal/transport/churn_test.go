package transport

import (
	"errors"
	"net"
	"testing"
	"time"
)

// TestTCPPeerDeadlineOnHungServer is the regression test for the
// blocked-forever bug: a peer that accepts connections but never answers
// (hung, not closed) must fail the pull with ErrPeerDown within the
// configured deadline instead of blocking the worker indefinitely.
func TestTCPPeerDeadlineOnHungServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Accept and go silent: read the request, answer nothing.
			defer conn.Close()
		}
	}()
	p := &TCPPeer{From: 0, Addr: ln.Addr().String(), Timeout: 300 * time.Millisecond}
	start := time.Now()
	_, err = p.PullModel()
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("pull from hung server succeeded")
	}
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("error not classified as ErrPeerDown: %v", err)
	}
	// A deadline expiry must NOT be retried (the peer is hung, not
	// restarted): the total cost is one deadline, not two. The bound sits
	// between 1x and 2x the deadline with slack for scheduling noise.
	if elapsed >= 550*time.Millisecond {
		t.Fatalf("pull blocked %v — a hung peer must cost one 300ms deadline, not two", elapsed)
	}
}

// TestTCPPeerDownClassified verifies that a dead endpoint (nothing
// listening) maps to ErrPeerDown.
func TestTCPPeerDownClassified(t *testing.T) {
	p := &TCPPeer{From: 0, Addr: "127.0.0.1:1", Timeout: 200 * time.Millisecond}
	if _, err := p.PullModel(); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("dead endpoint error = %v, want ErrPeerDown", err)
	}
}

// TestTCPWorkerServerSetDown verifies crash injection and recovery on the
// server side: pulls fail fast while down, succeed again after recovery.
func TestTCPWorkerServerSetDown(t *testing.T) {
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return []float64{1, 2} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	p := &TCPPeer{From: 0, Addr: srv.Addr(), Timeout: time.Second}
	if _, err := p.PullModel(); err != nil {
		t.Fatalf("pull before crash: %v", err)
	}
	srv.SetDown(true)
	if _, err := p.PullModel(); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("pull from down server = %v, want ErrPeerDown", err)
	}
	srv.SetDown(false)
	pulled, err := p.PullModel()
	if err != nil {
		t.Fatalf("pull after recovery: %v", err)
	}
	vec, err := pulled.Decode(nil)
	if err != nil || len(vec) != 2 || vec[1] != 2 {
		t.Fatalf("recovered pull decoded %v (%v)", vec, err)
	}
}

// TestTCPHubWorkerDownAndTimeouts drives the same scenario through the hub
// surface used by the live runtime.
func TestTCPHubWorkerDownAndTimeouts(t *testing.T) {
	hub, err := NewTCPHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	hub.Register(0, func() []float64 { return []float64{1} })
	hub.Register(1, func() []float64 { return []float64{2} })
	hub.SetPullTimeout(500 * time.Millisecond)
	if _, err := hub.Peer(0, 1).PullModel(); err != nil {
		t.Fatalf("pull before crash: %v", err)
	}
	hub.SetWorkerDown(1, true)
	if _, err := hub.Peer(0, 1).PullModel(); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("pull from down worker = %v, want ErrPeerDown", err)
	}
	hub.SetWorkerDown(1, false)
	if _, err := hub.Peer(0, 1).PullModel(); err != nil {
		t.Fatalf("pull after recovery: %v", err)
	}
	hub.SetWorkerDown(7, true) // unknown id: no-op, no panic
}

// TestLocalNetWorkerDownAndHang verifies the in-process crash/hang
// injection used by examples and the live tests.
func TestLocalNetWorkerDownAndHang(t *testing.T) {
	hub := NewLocalNet()
	hub.Register(1, func() []float64 { return []float64{1} })
	hub.SetWorkerDown(1, true)
	if _, err := hub.Peer(0, 1).PullModel(); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("pull from down worker = %v, want ErrPeerDown", err)
	}
	hub.SetWorkerDown(1, false)
	if _, err := hub.Peer(0, 1).PullModel(); err != nil {
		t.Fatalf("pull after recovery: %v", err)
	}
	// Hung peer: latency beyond the deadline fails after the deadline.
	hub.SetPullTimeout(50 * time.Millisecond)
	hub.Latency = func(i, j int, _ time.Time) time.Duration { return time.Hour }
	start := time.Now()
	_, err := hub.Peer(0, 1).PullModel()
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("hung pull = %v, want ErrPeerDown", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("hung pull blocked %v despite 50ms deadline", elapsed)
	}
	// Unregistered workers classify as down too.
	if _, err := hub.Peer(0, 9).PullModel(); !errors.Is(err, ErrPeerDown) {
		t.Fatalf("unknown peer = %v, want ErrPeerDown", err)
	}
}
