package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"netmax/internal/codec"
)

// The binary wire protocol. Every message is one length-prefixed frame:
//
//	offset size  field
//	0      4     uint32 N — byte length of the remainder (kind + codec + body)
//	4      1     message kind (msg* below)
//	5      1     codec id (codec.ID* — meaningful for pullResp, 0 elsewhere)
//	6      N-2   body
//
// All integers are big-endian. Frames flow over persistent connections:
// a client dials once, then exchanges request/response frames until it (or
// the server) closes. Body encodings per kind:
//
//	msgPull        uint32 from
//	msgPullResp    uint32 dim, then the codec payload for a dim-length vector
//	msgReport      uint32 from, uint32 to, float64 secs, uint64 wire bytes
//	msgReportAck   empty
//	msgPolicy      empty
//	msgPolicyResp  uint64 version, float64 rho, uint32 m, then m·m float64
//	               (row-major P; m = 0 means no policy published yet)
const (
	msgPull uint8 = iota + 1
	msgPullResp
	msgReport
	msgReportAck
	msgPolicy
	msgPolicyResp
)

// maxFrameBody caps a frame body; anything larger indicates a corrupt or
// hostile stream (a VGG19-sized raw pull is ~1.1 GB of float64, so the cap
// sits above every model in the zoo).
const maxFrameBody = 2 << 30

// frameHeaderLen is the fixed prefix: length, kind, codec id.
const frameHeaderLen = 6

// writeFrame emits one frame and flushes the writer.
func writeFrame(w *bufio.Writer, kind, codecID uint8, body []byte) error {
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+2))
	hdr[4] = kind
	hdr[5] = codecID
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame reads one complete frame, growing and reusing *buf for the body
// (the returned body aliases *buf and is valid until the next call).
func readFrame(r io.Reader, buf *[]byte) (kind, codecID uint8, body []byte, err error) {
	var hdr [frameHeaderLen]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n < 2 {
		return 0, 0, nil, fmt.Errorf("transport: frame length %d below header size", n)
	}
	if n-2 > maxFrameBody {
		return 0, 0, nil, fmt.Errorf("transport: frame body %d bytes exceeds cap", n-2)
	}
	need := int(n - 2)
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	body = (*buf)[:need]
	if _, err = io.ReadFull(r, body); err != nil {
		return 0, 0, nil, err
	}
	return hdr[4], hdr[5], body, nil
}

// --- body encodings ---

func appendPullReq(dst []byte, from int) []byte {
	return binary.BigEndian.AppendUint32(dst, uint32(from))
}

func parsePullReq(body []byte) (from int, err error) {
	if len(body) != 4 {
		return 0, fmt.Errorf("transport: pull request body %d bytes, want 4", len(body))
	}
	return int(binary.BigEndian.Uint32(body)), nil
}

func appendReport(dst []byte, from, to int, secs float64, bytes int64) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(from))
	dst = binary.BigEndian.AppendUint32(dst, uint32(to))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(secs))
	dst = binary.BigEndian.AppendUint64(dst, uint64(bytes))
	return dst
}

func parseReport(body []byte) (from, to int, secs float64, bytes int64, err error) {
	if len(body) != 24 {
		return 0, 0, 0, 0, fmt.Errorf("transport: report body %d bytes, want 24", len(body))
	}
	from = int(binary.BigEndian.Uint32(body[0:]))
	to = int(binary.BigEndian.Uint32(body[4:]))
	secs = math.Float64frombits(binary.BigEndian.Uint64(body[8:]))
	bytes = int64(binary.BigEndian.Uint64(body[16:]))
	return from, to, secs, bytes, nil
}

func appendPolicyResp(dst []byte, p [][]float64, rho float64, version int) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(version))
	dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(rho))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(p)))
	for _, row := range p {
		for _, v := range row {
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
		}
	}
	return dst
}

func parsePolicyResp(body []byte) (p [][]float64, rho float64, version int, err error) {
	if len(body) < 20 {
		return nil, 0, 0, fmt.Errorf("transport: policy body %d bytes, want >= 20", len(body))
	}
	version = int(binary.BigEndian.Uint64(body[0:]))
	rho = math.Float64frombits(binary.BigEndian.Uint64(body[8:]))
	m := int(binary.BigEndian.Uint32(body[16:]))
	// Bound m before squaring: a wire-supplied m near 2^32 overflows the
	// expected-length arithmetic and would drive an unbounded allocation.
	if maxM := 1 << 15; m > maxM {
		return nil, 0, 0, fmt.Errorf("transport: policy worker count %d exceeds cap %d", m, maxM)
	}
	if want := 20 + 8*m*m; len(body) != want {
		return nil, 0, 0, fmt.Errorf("transport: policy body %d bytes, want %d for m=%d", len(body), want, m)
	}
	if m == 0 {
		return nil, rho, version, nil
	}
	p = make([][]float64, m)
	off := 20
	for i := range p {
		p[i] = make([]float64, m)
		for j := range p[i] {
			p[i][j] = math.Float64frombits(binary.BigEndian.Uint64(body[off:]))
			off += 8
		}
	}
	return p, rho, version, nil
}

// maxVectorDim caps the vector dimension a pull response may advertise:
// the largest dense float64 vector a frame could carry. Sparse payloads
// are small regardless of dim, so without this bound a corrupt 8-byte
// top-k frame could claim dim=2^32-1 and force a ~34 GB allocation in the
// decoder; with it, a hostile dim buys at most what a legitimate dense
// frame could anyway.
const maxVectorDim = maxFrameBody / 8

// appendPullResp frames a model vector: dim header plus the codec payload
// (whose length, len(result)-len(dst)-4, is the bytes-on-wire figure —
// clients measure it on receive).
func appendPullResp(dst []byte, vec []float64, c codec.Codec) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(vec)))
	return c.AppendEncode(dst, vec)
}

func parsePullRespHeader(body []byte) (dim int, payload []byte, err error) {
	if len(body) < 4 {
		return 0, nil, fmt.Errorf("transport: pull response body %d bytes, want >= 4", len(body))
	}
	dim = int(binary.BigEndian.Uint32(body))
	if dim > maxVectorDim {
		return 0, nil, fmt.Errorf("transport: pull response dim %d exceeds cap %d", dim, maxVectorDim)
	}
	return dim, body[4:], nil
}
