package transport

import (
	"bufio"
	"bytes"
	"io"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"netmax/internal/codec"
)

// chunkReader returns at most one byte per Read call, forcing readFrame to
// reassemble frames from many short reads — the same situation a large
// vector split across TCP segments produces.
type chunkReader struct{ r io.Reader }

func (c chunkReader) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return c.r.Read(p)
}

func TestFrameRoundTripAcrossShortReads(t *testing.T) {
	var raw bytes.Buffer
	w := bufio.NewWriter(&raw)
	body := appendReport(nil, 3, 7, 1.25, 4096)
	if err := writeFrame(w, msgReport, 0, body); err != nil {
		t.Fatal(err)
	}
	kind, codecID, got, err := readFrame(chunkReader{&raw}, new([]byte))
	if err != nil {
		t.Fatal(err)
	}
	if kind != msgReport || codecID != 0 {
		t.Fatalf("kind=%d codec=%d", kind, codecID)
	}
	from, to, secs, wire, err := parseReport(got)
	if err != nil || from != 3 || to != 7 || secs != 1.25 || wire != 4096 {
		t.Fatalf("report = %d %d %v %d (%v)", from, to, secs, wire, err)
	}
}

func TestFrameRejectsCorruptHeaders(t *testing.T) {
	// Length below the kind+codec minimum.
	short := []byte{0, 0, 0, 1, 0, 0}
	if _, _, _, err := readFrame(bytes.NewReader(short), new([]byte)); err == nil {
		t.Fatal("accepted undersized frame length")
	}
	// Length far beyond the body cap.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0}
	if _, _, _, err := readFrame(bytes.NewReader(huge), new([]byte)); err == nil {
		t.Fatal("accepted oversized frame length")
	}
	// Truncated body.
	trunc := []byte{0, 0, 0, 10, msgPull, 0, 1, 2}
	if _, _, _, err := readFrame(bytes.NewReader(trunc), new([]byte)); err == nil {
		t.Fatal("accepted truncated frame")
	}
}

// TestTCPLargeVectorPull moves a multi-megabyte model through the wire
// protocol, guaranteeing the frame spans many TCP segments and loopback
// socket buffers.
func TestTCPLargeVectorPull(t *testing.T) {
	const dim = 400_000 // 3.2 MB raw payload
	rng := rand.New(rand.NewSource(11))
	vec := make([]float64, dim)
	for i := range vec {
		vec[i] = rng.NormFloat64()
	}
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return vec })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer := &TCPPeer{Addr: srv.Addr()}
	defer peer.Close()
	got, wire, err := pull(peer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if wire != 8*dim {
		t.Fatalf("wire bytes = %d, want %d", wire, 8*dim)
	}
	for i := range vec {
		if got[i] != vec[i] {
			t.Fatalf("coord %d: %v != %v", i, got[i], vec[i])
		}
	}
}

// TestTCPCodecNegotiation checks that the codec id in the response frame is
// authoritative: the client decodes with whatever codec the server used,
// including after a mid-run codec switch.
func TestTCPCodecNegotiation(t *testing.T) {
	vec := []float64{4, -8, 0.5, 1}
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return vec })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer := &TCPPeer{Addr: srv.Addr()}
	defer peer.Close()

	got, wire, err := pull(peer, nil)
	if err != nil || wire != 32 {
		t.Fatalf("raw pull: %v wire=%d", err, wire)
	}
	if got[1] != -8 {
		t.Fatalf("raw pull decoded %v", got)
	}

	srv.SetCodec(codec.NewTopK(0.5))
	prior := []float64{10, 10, 10, 10}
	got, wire, err = pull(peer, prior)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, -8, 10, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topk pull decoded %v, want %v", got, want)
		}
	}
	if wire != 4+2*8 {
		t.Fatalf("topk wire bytes = %d", wire)
	}

	srv.SetCodec(codec.Float32{})
	_, wire, err = pull(peer, nil)
	if err != nil || wire != 16 {
		t.Fatalf("float32 pull: %v wire=%d", err, wire)
	}
}

// waitForGoroutines polls until the live goroutine count drops back to the
// baseline (transport teardown is asynchronous only up to scheduler delay).
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTCPHubCloseLeaksNoGoroutines is the shutdown gate: after heavy use of
// persistent connections, Close must unblock every accept loop and
// connection handler and leave no transport goroutines behind.
func TestTCPHubCloseLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	hub, err := NewTCPHub()
	if err != nil {
		t.Fatal(err)
	}
	hub.SetCodec(codec.Float32{})
	for id := 0; id < 3; id++ {
		v := []float64{float64(id), float64(id + 1)}
		hub.Register(id, func() []float64 { return v })
	}
	hub.OnReport(func(int, int, float64, int64) {})
	mon := hub.Monitor()
	for from := 0; from < 3; from++ {
		for to := 0; to < 3; to++ {
			if from == to {
				continue
			}
			if _, _, err := pull(hub.Peer(from, to), nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := mon.ReportTime(0, 1, 0.5, 16); err != nil {
		t.Fatal(err)
	}
	hub.SetPolicy([][]float64{{0, 1, 0}, {1, 0, 0}, {0, 0, 1}}, 0.3)
	if _, _, v, err := mon.FetchPolicy(); err != nil || v != 1 {
		t.Fatalf("policy fetch: v=%d err=%v", v, err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}
	waitForGoroutines(t, baseline)
}

// TestTCPServerCloseUnblocksIdleConnection pins the listener-shutdown fix:
// a handler blocked reading an idle persistent connection must be torn down
// by Close rather than keeping the server alive.
func TestTCPServerCloseUnblocksIdleConnection(t *testing.T) {
	baseline := runtime.NumGoroutine()
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return []float64{1} })
	if err != nil {
		t.Fatal(err)
	}
	peer := &TCPPeer{Addr: srv.Addr()}
	defer peer.Close()
	if _, _, err := pull(peer, nil); err != nil {
		t.Fatal(err)
	}
	// The connection now sits idle; the server handler is blocked in a
	// frame read. Close must return promptly anyway.
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an idle persistent connection")
	}
	peer.Close()
	waitForGoroutines(t, baseline)
}

func TestPullRespHeaderRejectsOversizedDim(t *testing.T) {
	// A sparse payload is tiny regardless of the advertised dim, so a
	// corrupt header must not drive a huge decoder allocation.
	body := make([]byte, 4+8) // dim header + topk k=1 entry
	body[0], body[1], body[2], body[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := parsePullRespHeader(body); err == nil {
		t.Fatal("accepted dim beyond the dense-frame cap")
	}
	// A legitimate dense-scale dim still parses.
	ok := appendPullResp(nil, []float64{1, 2}, codec.Raw{})
	if dim, payload, err := parsePullRespHeader(ok); err != nil || dim != 2 || len(payload) != 16 {
		t.Fatalf("round trip: dim=%d payload=%d err=%v", dim, len(payload), err)
	}
}

func TestPolicyRespRejectsOversizedWorkerCount(t *testing.T) {
	// m near 2^32 overflows the naive expected-length arithmetic; the
	// parser must reject it before allocating.
	body := appendPolicyResp(nil, nil, 0.5, 1)
	body[16], body[17], body[18], body[19] = 0x80, 0x00, 0x00, 0x00
	if _, _, _, err := parsePolicyResp(body); err == nil {
		t.Fatal("accepted absurd policy worker count")
	}
}
