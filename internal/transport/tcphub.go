package transport

import (
	"fmt"
	"sync"
)

// TCPHub wires a whole NetMax process group over loopback TCP: one
// TCPWorkerServer per registered worker plus one TCPMonitorServer. It
// implements the same surface as LocalNet, so internal/live can run
// unchanged over real sockets (cmd/netmax-live -tcp).
type TCPHub struct {
	mu      sync.RWMutex
	workers map[int]*TCPWorkerServer
	addrs   map[int]string
	mon     *TCPMonitorServer
	monAddr string

	reportMu sync.RWMutex
	report   func(from, to int, secs float64)
}

// NewTCPHub starts the monitor endpoint and returns an empty hub. Close
// must be called to release listeners.
func NewTCPHub() (*TCPHub, error) {
	h := &TCPHub{workers: make(map[int]*TCPWorkerServer), addrs: make(map[int]string)}
	mon, err := ServeMonitor("127.0.0.1:0", func(from, to int, secs float64) {
		h.reportMu.RLock()
		f := h.report
		h.reportMu.RUnlock()
		if f != nil {
			f(from, to, secs)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("transport: start monitor: %w", err)
	}
	h.mon = mon
	h.monAddr = mon.Addr()
	return h, nil
}

// Register starts a TCP server answering pulls for worker id.
func (h *TCPHub) Register(id int, src ModelSource) {
	srv, err := ServeWorker("127.0.0.1:0", src)
	if err != nil {
		// Registration failures surface on the first pull; a hub on
		// loopback with ephemeral ports only fails under fd exhaustion.
		return
	}
	h.mu.Lock()
	h.workers[id] = srv
	h.addrs[id] = srv.Addr()
	h.mu.Unlock()
}

// Peer returns a TCP pull handle from worker `from` to worker `to`.
func (h *TCPHub) Peer(from, to int) Peer {
	h.mu.RLock()
	addr := h.addrs[to]
	h.mu.RUnlock()
	return &TCPPeer{From: from, Addr: addr}
}

// Monitor returns the worker-side monitor client.
func (h *TCPHub) Monitor() MonitorClient {
	return &TCPMonitorClient{Addr: h.monAddr}
}

// SetPolicy publishes a policy through the monitor endpoint.
func (h *TCPHub) SetPolicy(p [][]float64, rho float64) {
	h.mon.SetPolicy(p, rho)
}

// OnReport installs the monitor-side sink for time reports.
func (h *TCPHub) OnReport(f func(from, to int, secs float64)) {
	h.reportMu.Lock()
	h.report = f
	h.reportMu.Unlock()
}

// Close stops every listener.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var first error
	for _, srv := range h.workers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := h.mon.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
