package transport

import (
	"fmt"
	"sync"
	"time"

	"netmax/internal/codec"
)

// TCPHub wires a whole NetMax process group over loopback TCP: one
// TCPWorkerServer per registered worker plus one TCPMonitorServer. It
// implements the same surface as LocalNet, so internal/live can run
// unchanged over real sockets (cmd/netmax-live -tcp). Peer and monitor
// handles are cached, so every (from, to) pair reuses one persistent
// connection for the life of the hub.
type TCPHub struct {
	mu          sync.RWMutex
	workers     map[int]*TCPWorkerServer
	addrs       map[int]string
	peers       map[[2]int]*TCPPeer
	clients     []*TCPMonitorClient
	codec       codec.Codec
	pullTimeout time.Duration
	mon         *TCPMonitorServer
	monAddr     string

	reportMu sync.RWMutex
	report   func(from, to int, secs float64, bytes int64)
}

// NewTCPHub starts the monitor endpoint and returns an empty hub. Close
// must be called to release listeners and connections.
func NewTCPHub() (*TCPHub, error) {
	h := &TCPHub{
		workers: make(map[int]*TCPWorkerServer),
		addrs:   make(map[int]string),
		peers:   make(map[[2]int]*TCPPeer),
		codec:   codec.Raw{},
	}
	mon, err := ServeMonitor("127.0.0.1:0", func(from, to int, secs float64, bytes int64) {
		h.reportMu.RLock()
		f := h.report
		h.reportMu.RUnlock()
		if f != nil {
			f(from, to, secs, bytes)
		}
	})
	if err != nil {
		return nil, fmt.Errorf("transport: start monitor: %w", err)
	}
	h.mon = mon
	h.monAddr = mon.Addr()
	return h, nil
}

// Register starts a TCP server answering pulls for worker id, encoding
// responses with the hub's current codec.
func (h *TCPHub) Register(id int, src ModelSource) {
	srv, err := ServeWorker("127.0.0.1:0", src)
	if err != nil {
		// Registration failures surface on the first pull; a hub on
		// loopback with ephemeral ports only fails under fd exhaustion.
		return
	}
	h.mu.Lock()
	srv.SetCodec(h.codec)
	h.workers[id] = srv
	h.addrs[id] = srv.Addr()
	h.mu.Unlock()
}

// SetCodec switches the codec on every registered worker server (and on
// workers registered afterwards).
func (h *TCPHub) SetCodec(c codec.Codec) {
	if c == nil {
		c = codec.Raw{}
	}
	h.mu.Lock()
	h.codec = c
	for _, srv := range h.workers {
		srv.SetCodec(c)
	}
	h.mu.Unlock()
}

// SetPullTimeout installs the per-call deadline on every cached peer and
// monitor handle and on handles created afterwards. Zero disables
// deadlines.
func (h *TCPHub) SetPullTimeout(d time.Duration) {
	h.mu.Lock()
	h.pullTimeout = d
	for _, p := range h.peers {
		p.SetTimeout(d)
	}
	for _, c := range h.clients {
		c.SetTimeout(d)
	}
	h.mu.Unlock()
}

// SetWorkerDown injects a crash (or recovery) for worker id's endpoint:
// while down, its server tears down live connections and drops incoming
// pulls, so peers fail fast with ErrPeerDown. Unknown ids are ignored.
func (h *TCPHub) SetWorkerDown(id int, down bool) {
	h.mu.RLock()
	srv := h.workers[id]
	h.mu.RUnlock()
	if srv != nil {
		srv.SetDown(down)
	}
}

// Peer returns the persistent TCP pull handle from worker `from` to worker
// `to`, creating it on first use. Before `to` registers, the returned
// handle has no address (pulls fail) and is not cached, so a later call
// picks up the registered address.
func (h *TCPHub) Peer(from, to int) Peer {
	key := [2]int{from, to}
	h.mu.RLock()
	p, ok := h.peers[key]
	h.mu.RUnlock()
	if ok {
		return p
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if p, ok := h.peers[key]; ok {
		return p
	}
	addr, registered := h.addrs[to]
	p = &TCPPeer{From: from, Addr: addr, Timeout: h.pullTimeout}
	if registered {
		h.peers[key] = p
	}
	return p
}

// Monitor returns a worker-side monitor client on its own persistent
// connection; the hub closes it on Close.
func (h *TCPHub) Monitor() MonitorClient {
	h.mu.Lock()
	c := &TCPMonitorClient{Addr: h.monAddr, Timeout: h.pullTimeout}
	h.clients = append(h.clients, c)
	h.mu.Unlock()
	return c
}

// SetPolicy publishes a policy through the monitor endpoint.
func (h *TCPHub) SetPolicy(p [][]float64, rho float64) {
	h.mon.SetPolicy(p, rho)
}

// OnReport installs the monitor-side sink for time reports.
func (h *TCPHub) OnReport(f func(from, to int, secs float64, bytes int64)) {
	h.reportMu.Lock()
	h.report = f
	h.reportMu.Unlock()
}

// Close stops every listener and tears down every cached client
// connection, waiting for all server goroutines to exit.
func (h *TCPHub) Close() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var first error
	for _, p := range h.peers {
		if err := p.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, c := range h.clients {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, srv := range h.workers {
		if err := srv.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := h.mon.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
