package transport

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"netmax/internal/codec"
)

// The TCP transport speaks the persistent binary wire protocol of wire.go:
// clients dial once and exchange length-prefixed frames (message kind +
// codec id + payload) over the same connection for the life of the run,
// instead of the seed's gob-encoded dial-per-call scheme. Model payloads go
// through a pluggable codec (internal/codec), and every pull reports its
// encoded byte size so the monitor and the caller can account for real
// bytes-on-wire.

// listenerGroup is the shared server chassis: it owns the listener, tracks
// live connections so Close can unblock handler reads, and waits for every
// goroutine on shutdown.
type listenerGroup struct {
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
}

func newListenerGroup(ln net.Listener) *listenerGroup {
	return &listenerGroup{ln: ln, conns: make(map[net.Conn]struct{})}
}

// serve runs the accept loop, invoking handle for each connection in its
// own goroutine. It returns when the listener is closed.
func (g *listenerGroup) serve(handle func(net.Conn)) {
	defer g.wg.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			// Accept fails permanently once the listener closes (and
			// transiently under fd exhaustion); either way, stop if Close
			// ran, otherwise back off briefly and keep accepting — a bare
			// retry would spin a core exactly when fds are scarce.
			g.mu.Lock()
			closed := g.closed
			g.mu.Unlock()
			if closed {
				return
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		if !g.track(conn) {
			conn.Close() // lost the race with Close
			continue
		}
		g.wg.Add(1)
		go func(c net.Conn) {
			defer g.wg.Done()
			defer g.untrack(c)
			defer c.Close()
			handle(c)
		}(conn)
	}
}

func (g *listenerGroup) track(c net.Conn) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.closed {
		return false
	}
	g.conns[c] = struct{}{}
	return true
}

func (g *listenerGroup) untrack(c net.Conn) {
	g.mu.Lock()
	delete(g.conns, c)
	g.mu.Unlock()
}

// dropConns force-closes every live connection without touching the
// listener: existing peers see their exchanges fail as if the process
// died, while new connections are still accepted (and can be rejected at
// the protocol layer). Used for crash injection.
func (g *listenerGroup) dropConns() {
	g.mu.Lock()
	for c := range g.conns {
		c.Close()
	}
	g.mu.Unlock()
}

// close shuts the listener, force-closes every live connection (unblocking
// handler reads), and waits for the accept loop and all handlers to return.
func (g *listenerGroup) close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.wg.Wait()
		return nil
	}
	g.closed = true
	err := g.ln.Close()
	for c := range g.conns {
		c.Close()
	}
	g.mu.Unlock()
	g.wg.Wait()
	return err
}

// --- worker server ---

// TCPWorkerServer answers model pulls for one worker over persistent
// connections, encoding responses with its configured codec (raw until
// SetCodec is called).
type TCPWorkerServer struct {
	grp *listenerGroup
	src ModelSource

	codecMu sync.RWMutex
	codec   codec.Codec
	down    bool
}

// ServeWorker starts answering pulls on addr (e.g. "127.0.0.1:0") and
// returns the server; its Addr method reports the bound address.
func ServeWorker(addr string, src ModelSource) (*TCPWorkerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPWorkerServer{grp: newListenerGroup(ln), src: src, codec: codec.Raw{}}
	s.grp.wg.Add(1)
	go s.grp.serve(s.handle)
	return s, nil
}

// SetCodec switches the codec used for subsequent pull responses.
func (s *TCPWorkerServer) SetCodec(c codec.Codec) {
	if c == nil {
		c = codec.Raw{}
	}
	s.codecMu.Lock()
	s.codec = c
	s.codecMu.Unlock()
}

// SetDown injects a crash (or recovery) for this worker's endpoint: while
// down, live connections are torn down and incoming pulls are dropped
// without a response, so clients fail fast with ErrPeerDown. The listener
// stays open — recovery is just SetDown(false), like a process restart on
// the same port.
func (s *TCPWorkerServer) SetDown(down bool) {
	s.codecMu.Lock()
	s.down = down
	s.codecMu.Unlock()
	if down {
		s.grp.dropConns()
	}
}

// Addr returns the listener's address.
func (s *TCPWorkerServer) Addr() string { return s.grp.ln.Addr().String() }

// Close stops the server: it unblocks the accept loop, tears down live
// connections, and waits for every handler goroutine to exit.
func (s *TCPWorkerServer) Close() error { return s.grp.close() }

// handle serves one persistent connection: pull frames in, model frames out,
// until the peer hangs up or Close tears the connection down.
func (s *TCPWorkerServer) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var rbuf, wbuf []byte
	for {
		kind, _, body, err := readFrame(r, &rbuf)
		if err != nil {
			return
		}
		if kind != msgPull {
			return // protocol violation; drop the connection
		}
		if _, err := parsePullReq(body); err != nil {
			return
		}
		s.codecMu.RLock()
		c := s.codec
		down := s.down
		s.codecMu.RUnlock()
		if down {
			return // crashed: drop the connection without answering
		}
		wbuf = appendPullResp(wbuf[:0], s.src(), c)
		if err := writeFrame(w, msgPullResp, c.ID(), wbuf); err != nil {
			return
		}
	}
}

// --- persistent client connection ---

// persistentConn is the shared client chassis: one lazily dialed
// connection plus the frame request/response exchange with its retry
// policy. Owners serialize access with their own mutex.
type persistentConn struct {
	conn  net.Conn
	r     *bufio.Reader
	w     *bufio.Writer
	rbuf  []byte
	armed bool // a deadline is currently set on conn
}

// roundTrip sends one request frame to addr and reads the response. A dead
// connection is redialed and the request retried once — but only when
// retrying cannot duplicate a side effect: a non-idempotent request whose
// write already succeeded (the failure was on the response read) may have
// been processed by the server, so it is not re-sent. A positive timeout
// bounds every step — dial, write, response read — so a hung (not closed)
// peer costs at most one deadline instead of blocking the caller forever.
// The returned body aliases the connection's read buffer and is valid
// until the next call.
func (pc *persistentConn) roundTrip(addr string, timeout time.Duration, reqKind uint8, reqBody []byte, wantKind uint8, idempotent bool) ([]byte, uint8, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if err := pc.ensure(addr, timeout); err != nil {
			return nil, 0, err
		}
		if timeout > 0 {
			pc.conn.SetDeadline(time.Now().Add(timeout))
			pc.armed = true
		} else if pc.armed {
			// The timeout was disabled after a deadline was armed on this
			// connection; a stale expired deadline would fail a healthy
			// peer.
			pc.conn.SetDeadline(time.Time{})
			pc.armed = false
		}
		if err := writeFrame(pc.w, reqKind, 0, reqBody); err != nil {
			pc.drop()
			lastErr = err
			if isTimeout(err) {
				// Deadline expired: the peer is hung, not restarted. A
				// retry would redial the still-listening socket and wait
				// out a second full deadline — doubling the documented
				// one-deadline cost of a hung peer.
				return nil, 0, fmt.Errorf("transport: %s: %w", addr, err)
			}
			continue
		}
		kind, codecID, body, err := readFrame(pc.r, &pc.rbuf)
		if err != nil {
			pc.drop()
			lastErr = err
			if !idempotent {
				return nil, 0, fmt.Errorf("transport: %s: response lost after delivered request (not retried): %w", addr, err)
			}
			if isTimeout(err) {
				return nil, 0, fmt.Errorf("transport: %s: %w", addr, err)
			}
			continue
		}
		if kind != wantKind {
			pc.drop()
			return nil, 0, fmt.Errorf("%w: unexpected frame kind %d, want %d", errProtocol, kind, wantKind)
		}
		return body, codecID, nil
	}
	return nil, 0, fmt.Errorf("transport: %s: %w", addr, lastErr)
}

func (pc *persistentConn) ensure(addr string, timeout time.Duration) error {
	if pc.conn != nil {
		return nil
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	pc.conn = conn
	pc.r = bufio.NewReader(conn)
	pc.w = bufio.NewWriter(conn)
	return nil
}

// isTimeout reports whether err is (or wraps) a network deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// errProtocol marks wire-protocol violations (wrong frame kind, corrupt
// payloads): evidence of version skew or a framing bug, not of a dead
// peer. Pull failures carrying it must NOT classify as ErrPeerDown —
// masking a healthy peer would turn a hard bug into silent degradation.
var errProtocol = errors.New("transport: protocol violation")

func (pc *persistentConn) drop() error {
	if pc.conn == nil {
		return nil
	}
	err := pc.conn.Close()
	pc.conn, pc.r, pc.w = nil, nil, nil
	pc.armed = false
	return err
}

// --- worker client ---

// TCPPeer pulls models from a remote worker address over one persistent
// connection, redialing transparently if the connection drops. The zero
// value with Addr set is ready to use; it is safe for concurrent use.
// A positive Timeout bounds every pull (dial + request + response): a
// hung or dead peer then fails with an error wrapping ErrPeerDown instead
// of blocking the worker forever.
type TCPPeer struct {
	From    int
	Addr    string
	Timeout time.Duration

	mu   sync.Mutex
	pc   persistentConn
	wbuf []byte
}

// SetTimeout changes the per-call deadline for subsequent pulls.
func (p *TCPPeer) SetTimeout(d time.Duration) {
	p.mu.Lock()
	p.Timeout = d
	p.mu.Unlock()
}

// PullModel requests the peer's freshest parameter vector, returned
// undecoded (the caller decodes at blend time with its current vector).
// Transport-level failures — refused or dropped connections, deadline
// expiry — classify as ErrPeerDown: the peer is gone or unresponsive, and
// the caller should mask it until the monitor reacts.
func (p *TCPPeer) PullModel() (*Pull, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.wbuf = appendPullReq(p.wbuf[:0], p.From)
	// Pulls are read-only on the server, so lost responses retry safely.
	body, codecID, err := p.pc.roundTrip(p.Addr, p.Timeout, msgPull, p.wbuf, msgPullResp, true)
	if err != nil {
		if errors.Is(err, errProtocol) {
			return nil, err // version skew / framing bug — peer is not down
		}
		return nil, fmt.Errorf("%w: %w", ErrPeerDown, err)
	}
	dim, payload, err := parsePullRespHeader(body)
	if err != nil {
		p.pc.drop()
		return nil, err
	}
	c, err := codec.ByID(codecID)
	if err != nil {
		p.pc.drop()
		return nil, err
	}
	// The body aliases the connection's read buffer; the Pull outlives
	// this call, so it takes a private copy.
	owned := make([]byte, len(payload))
	copy(owned, payload)
	return NewPull(c, dim, owned), nil
}

// priorFor returns prior only when it matches the advertised dimension;
// a stale prior (e.g. after a model resize) must not poison sparse decodes.
func priorFor(prior []float64, dim int) []float64 {
	if len(prior) == dim {
		return prior
	}
	return nil
}

// Close tears down the persistent connection, if any.
func (p *TCPPeer) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.pc.drop()
}

// --- monitor server ---

// TCPMonitorServer hosts the Network Monitor endpoint over persistent
// connections.
type TCPMonitorServer struct {
	grp    *listenerGroup
	report func(from, to int, secs float64, bytes int64)

	policyMu sync.RWMutex
	p        [][]float64
	rho      float64
	version  int
}

// ServeMonitor starts the monitor endpoint on addr; onReport receives every
// time report together with the reported transfer's encoded byte size.
func ServeMonitor(addr string, onReport func(from, to int, secs float64, bytes int64)) (*TCPMonitorServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPMonitorServer{grp: newListenerGroup(ln), report: onReport}
	s.grp.wg.Add(1)
	go s.grp.serve(s.handle)
	return s, nil
}

// Addr returns the listener's address.
func (s *TCPMonitorServer) Addr() string { return s.grp.ln.Addr().String() }

// SetPolicy publishes a new policy to pollers.
func (s *TCPMonitorServer) SetPolicy(p [][]float64, rho float64) {
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	s.p = p
	s.rho = rho
	s.version++
}

// Close stops the endpoint, tearing down live connections and waiting for
// every handler goroutine.
func (s *TCPMonitorServer) Close() error { return s.grp.close() }

func (s *TCPMonitorServer) handle(conn net.Conn) {
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var rbuf, wbuf []byte
	for {
		kind, _, body, err := readFrame(r, &rbuf)
		if err != nil {
			return
		}
		switch kind {
		case msgReport:
			from, to, secs, bytes, err := parseReport(body)
			if err != nil {
				return
			}
			if s.report != nil {
				s.report(from, to, secs, bytes)
			}
			if err := writeFrame(w, msgReportAck, 0, nil); err != nil {
				return
			}
		case msgPolicy:
			s.policyMu.RLock()
			wbuf = appendPolicyResp(wbuf[:0], s.p, s.rho, s.version)
			s.policyMu.RUnlock()
			if err := writeFrame(w, msgPolicyResp, 0, wbuf); err != nil {
				return
			}
		default:
			return // protocol violation; drop the connection
		}
	}
}

// --- monitor client ---

// TCPMonitorClient is a worker's persistent-connection client to the
// monitor. The zero value with Addr set is ready to use; it is safe for
// concurrent use (calls serialize on one connection). A positive Timeout
// bounds each call the same way TCPPeer.Timeout bounds pulls.
type TCPMonitorClient struct {
	Addr    string
	Timeout time.Duration

	mu   sync.Mutex
	pc   persistentConn
	wbuf []byte
}

// SetTimeout changes the per-call deadline for subsequent monitor calls.
func (c *TCPMonitorClient) SetTimeout(d time.Duration) {
	c.mu.Lock()
	c.Timeout = d
	c.mu.Unlock()
}

// ReportTime sends one iteration-time observation along with the encoded
// byte size of the transfer it measured. Reports are not idempotent (the
// monitor accumulates byte totals), so a report whose ack is lost returns
// an error rather than risking a duplicate; callers treat reports as
// best-effort and simply carry the next observation.
func (c *TCPMonitorClient) ReportTime(from, to int, secs float64, bytes int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wbuf = appendReport(c.wbuf[:0], from, to, secs, bytes)
	body, _, err := c.pc.roundTrip(c.Addr, c.Timeout, msgReport, c.wbuf, msgReportAck, false)
	if err != nil {
		return err
	}
	if len(body) != 0 {
		return fmt.Errorf("transport: report ack carried %d unexpected bytes", len(body))
	}
	return nil
}

// FetchPolicy retrieves the latest policy.
func (c *TCPMonitorClient) FetchPolicy() ([][]float64, float64, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	body, _, err := c.pc.roundTrip(c.Addr, c.Timeout, msgPolicy, c.wbuf[:0], msgPolicyResp, true)
	if err != nil {
		return nil, 0, 0, err
	}
	return parsePolicyResp(body)
}

// Close tears down the persistent connection, if any.
func (c *TCPMonitorClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pc.drop()
}
