package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// The TCP transport frames gob-encoded request/response pairs over
// short-lived connections: simple, dependency-free, and adequate for the
// model sizes of the live demo. Message kinds:
//
//	pullReq/pullResp      worker -> worker   model pull
//	reportReq/ack         worker -> monitor  iteration-time report
//	policyReq/policyResp  worker -> monitor  policy fetch

type pullReq struct{ From int }

type pullResp struct{ Vector []float64 }

type reportReq struct {
	From, To int
	Secs     float64
}

type ack struct{}

type policyReq struct{}

type policyResp struct {
	P       [][]float64
	Rho     float64
	Version int
}

// TCPWorkerServer answers model pulls for one worker.
type TCPWorkerServer struct {
	ln     net.Listener
	src    ModelSource
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
}

// ServeWorker starts answering pulls on addr (e.g. "127.0.0.1:0") and
// returns the server; its Addr method reports the bound address.
func ServeWorker(addr string, src ModelSource) (*TCPWorkerServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPWorkerServer{ln: ln, src: src}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the listener's address.
func (s *TCPWorkerServer) Addr() string { return s.ln.Addr().String() }

// Close stops the server and waits for the accept loop.
func (s *TCPWorkerServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPWorkerServer) loop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		go func(c net.Conn) {
			defer c.Close()
			dec := gob.NewDecoder(c)
			enc := gob.NewEncoder(c)
			var req pullReq
			if err := dec.Decode(&req); err != nil {
				return
			}
			_ = enc.Encode(pullResp{Vector: s.src()})
		}(conn)
	}
}

// TCPPeer pulls models from a remote worker address.
type TCPPeer struct {
	From int
	Addr string
}

// PullModel dials the peer, sends a pull request and returns the vector.
func (p *TCPPeer) PullModel() ([]float64, error) {
	conn, err := net.Dial("tcp", p.Addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", p.Addr, err)
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode(pullReq{From: p.From}); err != nil {
		return nil, err
	}
	var resp pullResp
	if err := dec.Decode(&resp); err != nil {
		return nil, err
	}
	return resp.Vector, nil
}

// TCPMonitorServer hosts the Network Monitor endpoint.
type TCPMonitorServer struct {
	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool

	report func(from, to int, secs float64)

	policyMu sync.RWMutex
	p        [][]float64
	rho      float64
	version  int
}

// ServeMonitor starts the monitor endpoint on addr; onReport receives every
// time report.
func ServeMonitor(addr string, onReport func(from, to int, secs float64)) (*TCPMonitorServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &TCPMonitorServer{ln: ln, report: onReport}
	s.wg.Add(1)
	go s.loop()
	return s, nil
}

// Addr returns the listener's address.
func (s *TCPMonitorServer) Addr() string { return s.ln.Addr().String() }

// SetPolicy publishes a new policy to pollers.
func (s *TCPMonitorServer) SetPolicy(p [][]float64, rho float64) {
	s.policyMu.Lock()
	defer s.policyMu.Unlock()
	s.p = p
	s.rho = rho
	s.version++
}

// Close stops the endpoint.
func (s *TCPMonitorServer) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *TCPMonitorServer) loop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			continue
		}
		go s.handle(conn)
	}
}

func (s *TCPMonitorServer) handle(c net.Conn) {
	defer c.Close()
	dec := gob.NewDecoder(c)
	enc := gob.NewEncoder(c)
	var kind string
	if err := dec.Decode(&kind); err != nil {
		return
	}
	switch kind {
	case "report":
		var req reportReq
		if err := dec.Decode(&req); err != nil {
			return
		}
		if s.report != nil {
			s.report(req.From, req.To, req.Secs)
		}
		_ = enc.Encode(ack{})
	case "policy":
		var req policyReq
		if err := dec.Decode(&req); err != nil {
			return
		}
		s.policyMu.RLock()
		resp := policyResp{P: s.p, Rho: s.rho, Version: s.version}
		s.policyMu.RUnlock()
		_ = enc.Encode(resp)
	}
}

// TCPMonitorClient is a worker's dial-per-call client to the monitor.
type TCPMonitorClient struct {
	Addr string
}

// ReportTime sends one iteration-time observation.
func (c *TCPMonitorClient) ReportTime(from, to int, secs float64) error {
	conn, err := net.Dial("tcp", c.Addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode("report"); err != nil {
		return err
	}
	if err := enc.Encode(reportReq{From: from, To: to, Secs: secs}); err != nil {
		return err
	}
	var a ack
	return dec.Decode(&a)
}

// FetchPolicy retrieves the latest policy.
func (c *TCPMonitorClient) FetchPolicy() ([][]float64, float64, int, error) {
	conn, err := net.Dial("tcp", c.Addr)
	if err != nil {
		return nil, 0, 0, err
	}
	defer conn.Close()
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	if err := enc.Encode("policy"); err != nil {
		return nil, 0, 0, err
	}
	if err := enc.Encode(policyReq{}); err != nil {
		return nil, 0, 0, err
	}
	var resp policyResp
	if err := dec.Decode(&resp); err != nil {
		return nil, 0, 0, err
	}
	return resp.P, resp.Rho, resp.Version, nil
}
