// Package transport carries NetMax's two message kinds between live worker
// processes: model pulls (worker -> worker) and monitor exchanges
// (iteration-time reports up, policy broadcasts down).
//
// Two implementations are provided: an in-process channel/shared-memory
// transport with injectable artificial latency (used by the examples to
// demonstrate heterogeneity on one machine), and a TCP transport speaking a
// persistent length-prefixed binary frame protocol (used by cmd/netmax-live
// to run a real process group). Both push model payloads through a
// pluggable compression codec (internal/codec) and report encoded
// bytes-on-wire, so compression-aware experiments run identically over
// shared memory and sockets. The discrete-event simulator does not use this
// package; this is the "system" half of the reproduction.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"netmax/internal/codec"
)

// ErrPeerDown is the typed classification of a dead or unresponsive peer:
// pull and monitor calls that fail because the remote end is gone
// (connection refused, torn down mid-exchange) or silent past the
// configured per-call deadline wrap this sentinel. Callers use
// errors.Is(err, ErrPeerDown) to mask the peer locally until the Network
// Monitor reacts, instead of treating the failure as fatal — churn is an
// expected operating condition, not an exception.
var ErrPeerDown = errors.New("transport: peer down")

// ModelSource provides the current model vector of a worker; the transport
// server calls it on every pull. Implementations must be safe for
// concurrent use.
type ModelSource func() []float64

// Peer is a remote worker that models can be pulled from.
type Peer interface {
	// PullModel fetches the peer's freshest parameter vector, returning it
	// undecoded. Callers decode at blend time with their then-current
	// vector (Pull.Decode), so sparse codecs substitute the receiver's
	// live values — not a stale snapshot — on untransmitted coordinates.
	PullModel() (*Pull, error)
}

// Pull is one fetched model before decoding: the wire payload plus the
// codec that produced it.
type Pull struct {
	codec   codec.Codec
	dim     int
	payload []byte
	vec     []float64 // pre-decoded shortcut (lossless in-process pulls)
	wire    int64
}

// NewPull wraps an encoded payload; the Pull takes ownership of it.
func NewPull(c codec.Codec, dim int, payload []byte) *Pull {
	return &Pull{codec: c, dim: dim, payload: payload, wire: int64(len(payload))}
}

// NewDecodedPull wraps an already-decoded vector (the in-process raw fast
// path: lossless, so encode/decode would be pure overhead) with the wire
// size the encoding would have had. The Pull takes ownership of vec.
func NewDecodedPull(vec []float64, wire int64) *Pull {
	return &Pull{vec: vec, dim: len(vec), wire: wire}
}

// WireBytes is the encoded payload size — the bytes-on-wire figure.
func (p *Pull) WireBytes() int64 { return p.wire }

// NeedsPrior reports whether Decode will consult a prior vector: only
// payload-backed sparse codecs do, so dense and pre-decoded pulls spare
// the receiver the cost of materializing one.
func (p *Pull) NeedsPrior() bool { return p.vec == nil && p.codec.Sparse() }

// Decode reconstructs the pulled vector. prior, when non-nil, supplies the
// receiver's current values for coordinates a sparse codec did not
// transmit (a mismatched length is ignored as stale). The returned slice
// may alias the Pull's internal storage; a Pull is decoded once.
func (p *Pull) Decode(prior []float64) ([]float64, error) {
	if p.vec != nil {
		return p.vec, nil
	}
	return p.codec.Decode(p.payload, p.dim, priorFor(prior, p.dim))
}

// MonitorClient is a worker's view of the Network Monitor.
type MonitorClient interface {
	// ReportTime delivers one smoothed iteration-time observation together
	// with the encoded byte size of the transfer it measured.
	ReportTime(from, to int, secs float64, bytes int64) error
	// FetchPolicy returns the latest (P, rho) and its version; workers
	// poll and apply when the version advances.
	FetchPolicy() (p [][]float64, rho float64, version int, err error)
}

// --- in-process transport ---

// LocalNet is an in-process transport hub: workers register model sources
// and pull from each other with injected latency, emulating a heterogeneous
// network inside one OS process. Pulls round-trip through the configured
// codec, so compression loss and bytes-on-wire match the TCP transport.
type LocalNet struct {
	mu      sync.RWMutex
	sources map[int]ModelSource
	codec   codec.Codec
	down    map[int]bool
	timeout time.Duration
	// Latency returns the artificial one-way delay for a pull from j by i
	// at wall time t. Nil means no delay. A latency at or beyond the pull
	// timeout emulates a hung peer: the pull waits out the deadline and
	// fails with ErrPeerDown.
	Latency func(i, j int, t time.Time) time.Duration

	policyMu sync.RWMutex
	p        [][]float64
	rho      float64
	version  int
	reports  func(from, to int, secs float64, bytes int64)
}

// NewLocalNet creates an empty hub using the raw codec.
func NewLocalNet() *LocalNet {
	return &LocalNet{
		sources: make(map[int]ModelSource),
		codec:   codec.Raw{},
		down:    make(map[int]bool),
	}
}

// SetWorkerDown injects a crash (or recovery) for worker id: while down,
// pulls from it fail immediately with ErrPeerDown — the in-process
// equivalent of a connection refused.
func (l *LocalNet) SetWorkerDown(id int, down bool) {
	l.mu.Lock()
	l.down[id] = down
	l.mu.Unlock()
}

// SetPullTimeout installs the per-call pull deadline: a pull whose
// injected latency reaches the deadline fails with ErrPeerDown after
// waiting it out, emulating a hung (not closed) peer. Zero disables the
// deadline.
func (l *LocalNet) SetPullTimeout(d time.Duration) {
	l.mu.Lock()
	l.timeout = d
	l.mu.Unlock()
}

// Register installs worker id's model source.
func (l *LocalNet) Register(id int, src ModelSource) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sources[id] = src
}

// SetCodec switches the codec applied to subsequent pulls.
func (l *LocalNet) SetCodec(c codec.Codec) {
	if c == nil {
		c = codec.Raw{}
	}
	l.mu.Lock()
	l.codec = c
	l.mu.Unlock()
}

// Peer returns a handle through which worker `from` pulls from worker `to`.
func (l *LocalNet) Peer(from, to int) Peer {
	return &localPeer{net: l, from: from, to: to}
}

type localPeer struct {
	net      *LocalNet
	from, to int
}

func (p *localPeer) PullModel() (*Pull, error) {
	p.net.mu.RLock()
	src, ok := p.net.sources[p.to]
	c := p.net.codec
	down := p.net.down[p.to]
	timeout := p.net.timeout
	p.net.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: no worker %d registered: %w", p.to, ErrPeerDown)
	}
	if down {
		// Crashed process: the connection attempt is refused immediately.
		return nil, fmt.Errorf("transport: worker %d: %w", p.to, ErrPeerDown)
	}
	if p.net.Latency != nil {
		if d := p.net.Latency(p.from, p.to, time.Now()); d > 0 {
			if timeout > 0 && d >= timeout {
				// Hung peer: the pull blocks for the full deadline before
				// the caller gives up.
				time.Sleep(timeout)
				return nil, fmt.Errorf("transport: pull from %d timed out after %v: %w", p.to, timeout, ErrPeerDown)
			}
			time.Sleep(d)
		}
	}
	v := src()
	// Raw is lossless, so the default codec-less hot path keeps the plain
	// copy instead of paying two byte-swapping passes per pull.
	if _, ok := c.(codec.Raw); ok {
		out := make([]float64, len(v))
		copy(out, v)
		return NewDecodedPull(out, c.WireBytes(len(v))), nil
	}
	// Encode through the codec: decoding happens at the caller's blend
	// step, carrying exactly the loss a socket transfer would.
	return NewPull(c, len(v), c.AppendEncode(nil, v)), nil
}

// SetPolicy publishes a new communication policy to all workers.
func (l *LocalNet) SetPolicy(p [][]float64, rho float64) {
	l.policyMu.Lock()
	defer l.policyMu.Unlock()
	l.p = p
	l.rho = rho
	l.version++
}

// OnReport installs the monitor-side sink for time reports.
func (l *LocalNet) OnReport(f func(from, to int, secs float64, bytes int64)) {
	l.policyMu.Lock()
	defer l.policyMu.Unlock()
	l.reports = f
}

// Monitor returns the worker-side monitor client.
func (l *LocalNet) Monitor() MonitorClient { return (*localMonitor)(l) }

type localMonitor LocalNet

func (m *localMonitor) ReportTime(from, to int, secs float64, bytes int64) error {
	m.policyMu.RLock()
	f := m.reports
	m.policyMu.RUnlock()
	if f != nil {
		f(from, to, secs, bytes)
	}
	return nil
}

func (m *localMonitor) FetchPolicy() ([][]float64, float64, int, error) {
	m.policyMu.RLock()
	defer m.policyMu.RUnlock()
	return m.p, m.rho, m.version, nil
}
