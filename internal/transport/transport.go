// Package transport carries NetMax's two message kinds between live worker
// processes: model pulls (worker -> worker) and monitor exchanges
// (iteration-time reports up, policy broadcasts down).
//
// Two implementations are provided: an in-process channel/shared-memory
// transport with injectable artificial latency (used by the examples to
// demonstrate heterogeneity on one machine), and a TCP transport using
// encoding/gob framing (used by cmd/netmax-live to run a real process
// group). The discrete-event simulator does not use this package; this is
// the "system" half of the reproduction.
package transport

import (
	"fmt"
	"sync"
	"time"
)

// ModelSource provides the current model vector of a worker; the transport
// server calls it on every pull. Implementations must be safe for
// concurrent use.
type ModelSource func() []float64

// Peer is a remote worker that models can be pulled from.
type Peer interface {
	// PullModel returns the peer's freshest parameter vector.
	PullModel() ([]float64, error)
}

// MonitorClient is a worker's view of the Network Monitor.
type MonitorClient interface {
	// ReportTime delivers one smoothed iteration-time observation.
	ReportTime(from, to int, secs float64) error
	// FetchPolicy returns the latest (P, rho) and its version; workers
	// poll and apply when the version advances.
	FetchPolicy() (p [][]float64, rho float64, version int, err error)
}

// --- in-process transport ---

// LocalNet is an in-process transport hub: workers register model sources
// and pull from each other with injected latency, emulating a heterogeneous
// network inside one OS process.
type LocalNet struct {
	mu      sync.RWMutex
	sources map[int]ModelSource
	// Latency returns the artificial one-way delay for a pull from j by i
	// at wall time t. Nil means no delay.
	Latency func(i, j int, t time.Time) time.Duration

	policyMu sync.RWMutex
	p        [][]float64
	rho      float64
	version  int
	reports  func(from, to int, secs float64)
}

// NewLocalNet creates an empty hub.
func NewLocalNet() *LocalNet {
	return &LocalNet{sources: make(map[int]ModelSource)}
}

// Register installs worker id's model source.
func (l *LocalNet) Register(id int, src ModelSource) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sources[id] = src
}

// Peer returns a handle through which worker `from` pulls from worker `to`.
func (l *LocalNet) Peer(from, to int) Peer {
	return &localPeer{net: l, from: from, to: to}
}

type localPeer struct {
	net      *LocalNet
	from, to int
}

func (p *localPeer) PullModel() ([]float64, error) {
	p.net.mu.RLock()
	src, ok := p.net.sources[p.to]
	p.net.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: no worker %d registered", p.to)
	}
	if p.net.Latency != nil {
		if d := p.net.Latency(p.from, p.to, time.Now()); d > 0 {
			time.Sleep(d)
		}
	}
	v := src()
	out := make([]float64, len(v))
	copy(out, v)
	return out, nil
}

// SetPolicy publishes a new communication policy to all workers.
func (l *LocalNet) SetPolicy(p [][]float64, rho float64) {
	l.policyMu.Lock()
	defer l.policyMu.Unlock()
	l.p = p
	l.rho = rho
	l.version++
}

// OnReport installs the monitor-side sink for time reports.
func (l *LocalNet) OnReport(f func(from, to int, secs float64)) {
	l.policyMu.Lock()
	defer l.policyMu.Unlock()
	l.reports = f
}

// Monitor returns the worker-side monitor client.
func (l *LocalNet) Monitor() MonitorClient { return (*localMonitor)(l) }

type localMonitor LocalNet

func (m *localMonitor) ReportTime(from, to int, secs float64) error {
	m.policyMu.RLock()
	f := m.reports
	m.policyMu.RUnlock()
	if f != nil {
		f(from, to, secs)
	}
	return nil
}

func (m *localMonitor) FetchPolicy() ([][]float64, float64, int, error) {
	m.policyMu.RLock()
	defer m.policyMu.RUnlock()
	return m.p, m.rho, m.version, nil
}
