package transport

import (
	"sync"
	"testing"
	"time"
)

func TestLocalNetPull(t *testing.T) {
	hub := NewLocalNet()
	hub.Register(1, func() []float64 { return []float64{1, 2, 3} })
	got, err := hub.Peer(0, 1).PullModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("pulled %v", got)
	}
}

func TestLocalNetPullCopies(t *testing.T) {
	backing := []float64{1, 2}
	hub := NewLocalNet()
	hub.Register(0, func() []float64 { return backing })
	got, _ := hub.Peer(1, 0).PullModel()
	got[0] = 99
	if backing[0] != 1 {
		t.Fatal("pull aliases source storage")
	}
}

func TestLocalNetUnknownPeer(t *testing.T) {
	hub := NewLocalNet()
	if _, err := hub.Peer(0, 5).PullModel(); err == nil {
		t.Fatal("expected error for unknown peer")
	}
}

func TestLocalNetLatencyInjected(t *testing.T) {
	hub := NewLocalNet()
	hub.Register(1, func() []float64 { return []float64{1} })
	hub.Latency = func(i, j int, _ time.Time) time.Duration { return 30 * time.Millisecond }
	start := time.Now()
	if _, err := hub.Peer(0, 1).PullModel(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency not injected: %v", d)
	}
}

func TestLocalNetPolicyVersioning(t *testing.T) {
	hub := NewLocalNet()
	mc := hub.Monitor()
	_, _, v0, _ := mc.FetchPolicy()
	hub.SetPolicy([][]float64{{0, 1}, {1, 0}}, 0.4)
	p, rho, v1, err := mc.FetchPolicy()
	if err != nil || v1 != v0+1 || rho != 0.4 || p[0][1] != 1 {
		t.Fatalf("policy fetch wrong: %v %v %v %v", p, rho, v1, err)
	}
}

func TestLocalNetReports(t *testing.T) {
	hub := NewLocalNet()
	var mu sync.Mutex
	var got []float64
	hub.OnReport(func(from, to int, secs float64) {
		mu.Lock()
		got = append(got, secs)
		mu.Unlock()
	})
	if err := hub.Monitor().ReportTime(0, 1, 2.5); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != 2.5 {
		t.Fatalf("reports = %v", got)
	}
}

func TestTCPWorkerPull(t *testing.T) {
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return []float64{4, 5} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer := &TCPPeer{From: 0, Addr: srv.Addr()}
	got, err := peer.PullModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != 5 {
		t.Fatalf("pulled %v", got)
	}
}

func TestTCPWorkerConcurrentPulls(t *testing.T) {
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return []float64{7} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			peer := &TCPPeer{Addr: srv.Addr()}
			if _, err := peer.PullModel(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPMonitorRoundTrip(t *testing.T) {
	var mu sync.Mutex
	reports := 0
	srv, err := ServeMonitor("127.0.0.1:0", func(from, to int, secs float64) {
		mu.Lock()
		reports++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &TCPMonitorClient{Addr: srv.Addr()}
	if err := client.ReportTime(0, 1, 1.5); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if reports != 1 {
		t.Fatalf("reports = %d", reports)
	}
	mu.Unlock()

	srv.SetPolicy([][]float64{{0, 1}, {1, 0}}, 0.7)
	p, rho, v, err := client.FetchPolicy()
	if err != nil || v != 1 || rho != 0.7 || p[1][0] != 1 {
		t.Fatalf("policy = %v %v %v %v", p, rho, v, err)
	}
}

func TestTCPPeerDialError(t *testing.T) {
	peer := &TCPPeer{Addr: "127.0.0.1:1"} // reserved port, nothing listening
	if _, err := peer.PullModel(); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestTCPServerCloseIdempotentAccept(t *testing.T) {
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// After close, pulls must fail rather than hang.
	peer := &TCPPeer{Addr: srv.Addr()}
	if _, err := peer.PullModel(); err == nil {
		t.Fatal("pull succeeded after close")
	}
}
