package transport

import (
	"sync"
	"testing"
	"time"

	"netmax/internal/codec"
)

func TestLocalNetPull(t *testing.T) {
	hub := NewLocalNet()
	hub.Register(1, func() []float64 { return []float64{1, 2, 3} })
	got, wire, err := pull(hub.Peer(0, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("pulled %v", got)
	}
	if wire != 24 { // raw codec: 3 coords x 8 bytes
		t.Fatalf("wire bytes = %d, want 24", wire)
	}
}

func TestLocalNetPullCopies(t *testing.T) {
	backing := []float64{1, 2}
	hub := NewLocalNet()
	hub.Register(0, func() []float64 { return backing })
	got, _, _ := pull(hub.Peer(1, 0), nil)
	got[0] = 99
	if backing[0] != 1 {
		t.Fatal("pull aliases source storage")
	}
}

func TestLocalNetUnknownPeer(t *testing.T) {
	hub := NewLocalNet()
	if _, _, err := pull(hub.Peer(0, 5), nil); err == nil {
		t.Fatal("expected error for unknown peer")
	}
}

func TestLocalNetLatencyInjected(t *testing.T) {
	hub := NewLocalNet()
	hub.Register(1, func() []float64 { return []float64{1} })
	hub.Latency = func(i, j int, _ time.Time) time.Duration { return 30 * time.Millisecond }
	start := time.Now()
	if _, _, err := pull(hub.Peer(0, 1), nil); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency not injected: %v", d)
	}
}

func TestLocalNetCodecApplied(t *testing.T) {
	hub := NewLocalNet()
	hub.Register(1, func() []float64 { return []float64{4, -8, 0.5, 1} })
	hub.SetCodec(codec.NewTopK(0.5)) // k = 2: coords 1 (-8) and 0 (4)
	prior := []float64{10, 10, 10, 10}
	got, wire, err := pull(hub.Peer(0, 1), prior)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{4, -8, 10, 10}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	if wire != 4+2*8 { // count header + 2 (index, value) pairs
		t.Fatalf("wire bytes = %d", wire)
	}
}

func TestLocalNetPolicyVersioning(t *testing.T) {
	hub := NewLocalNet()
	mc := hub.Monitor()
	_, _, v0, _ := mc.FetchPolicy()
	hub.SetPolicy([][]float64{{0, 1}, {1, 0}}, 0.4)
	p, rho, v1, err := mc.FetchPolicy()
	if err != nil || v1 != v0+1 || rho != 0.4 || p[0][1] != 1 {
		t.Fatalf("policy fetch wrong: %v %v %v %v", p, rho, v1, err)
	}
}

func TestLocalNetReports(t *testing.T) {
	hub := NewLocalNet()
	var mu sync.Mutex
	var got []float64
	var gotBytes []int64
	hub.OnReport(func(from, to int, secs float64, bytes int64) {
		mu.Lock()
		got = append(got, secs)
		gotBytes = append(gotBytes, bytes)
		mu.Unlock()
	})
	if err := hub.Monitor().ReportTime(0, 1, 2.5, 640); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0] != 2.5 || gotBytes[0] != 640 {
		t.Fatalf("reports = %v bytes %v", got, gotBytes)
	}
}

func TestTCPWorkerPull(t *testing.T) {
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return []float64{4, 5} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	peer := &TCPPeer{From: 0, Addr: srv.Addr()}
	defer peer.Close()
	got, wire, err := pull(peer, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != 5 {
		t.Fatalf("pulled %v", got)
	}
	if wire != 16 {
		t.Fatalf("wire bytes = %d, want 16", wire)
	}
}

func TestTCPWorkerConcurrentPulls(t *testing.T) {
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return []float64{7} })
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			peer := &TCPPeer{Addr: srv.Addr()}
			defer peer.Close()
			// Several pulls per peer exercise connection reuse under load.
			for n := 0; n < 4; n++ {
				if _, _, err := pull(peer, nil); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestTCPMonitorRoundTrip(t *testing.T) {
	var mu sync.Mutex
	reports := 0
	var reportedBytes int64
	srv, err := ServeMonitor("127.0.0.1:0", func(from, to int, secs float64, bytes int64) {
		mu.Lock()
		reports++
		reportedBytes = bytes
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &TCPMonitorClient{Addr: srv.Addr()}
	defer client.Close()
	if err := client.ReportTime(0, 1, 1.5, 1024); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if reports != 1 || reportedBytes != 1024 {
		t.Fatalf("reports = %d bytes %d", reports, reportedBytes)
	}
	mu.Unlock()

	srv.SetPolicy([][]float64{{0, 1}, {1, 0}}, 0.7)
	p, rho, v, err := client.FetchPolicy()
	if err != nil || v != 1 || rho != 0.7 || p[1][0] != 1 {
		t.Fatalf("policy = %v %v %v %v", p, rho, v, err)
	}
}

func TestTCPMonitorEmptyPolicy(t *testing.T) {
	srv, err := ServeMonitor("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client := &TCPMonitorClient{Addr: srv.Addr()}
	defer client.Close()
	p, _, v, err := client.FetchPolicy()
	if err != nil || p != nil || v != 0 {
		t.Fatalf("expected empty policy, got %v v=%d err=%v", p, v, err)
	}
}

func TestTCPPeerDialError(t *testing.T) {
	peer := &TCPPeer{Addr: "127.0.0.1:1"} // reserved port, nothing listening
	if _, _, err := pull(peer, nil); err == nil {
		t.Fatal("expected dial error")
	}
}

func TestTCPServerCloseIdempotentAccept(t *testing.T) {
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// After close, pulls must fail rather than hang.
	peer := &TCPPeer{Addr: srv.Addr()}
	if _, _, err := pull(peer, nil); err == nil {
		t.Fatal("pull succeeded after close")
	}
}

// TestTCPPeerSurvivesServerRestart exercises the transparent redial: a
// persistent connection dies with its server, and the next pull must
// re-establish against the replacement listener on the same address.
func TestTCPPeerSurvivesServerRestart(t *testing.T) {
	srv, err := ServeWorker("127.0.0.1:0", func() []float64 { return []float64{1} })
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	peer := &TCPPeer{Addr: addr}
	defer peer.Close()
	if _, _, err := pull(peer, nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, err := ServeWorker(addr, func() []float64 { return []float64{2} })
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer srv2.Close()
	got, _, err := pull(peer, nil)
	if err != nil {
		t.Fatalf("pull after restart: %v", err)
	}
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("pulled %v from restarted server", got)
	}
}

func TestTCPHubPeerBeforeRegisterRecovers(t *testing.T) {
	hub, err := NewTCPHub()
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	// A peer handle fetched before the target registers must fail, not
	// poison the cache for the post-registration lookup.
	if _, _, err := pull(hub.Peer(0, 1), nil); err == nil {
		t.Fatal("pull succeeded before registration")
	}
	hub.Register(1, func() []float64 { return []float64{6} })
	got, _, err := pull(hub.Peer(0, 1), nil)
	if err != nil {
		t.Fatalf("pull after registration: %v", err)
	}
	if len(got) != 1 || got[0] != 6 {
		t.Fatalf("pulled %v", got)
	}
}

// pull fetches and decodes in one step — the common case in these tests.
func pull(p Peer, prior []float64) ([]float64, int64, error) {
	pl, err := p.PullModel()
	if err != nil {
		return nil, 0, err
	}
	vec, err := pl.Decode(prior)
	if err != nil {
		return nil, 0, err
	}
	return vec, pl.WireBytes(), nil
}
