package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"netmax/internal/stats"
)

// Suite is a declarative description of N related runs: a paper comparison
// (NetMax vs. baseline arms), a codec sweep, or a multi-seed replication —
// one JSON file instead of N separate manifests and a hand-built table.
//
// A suite names its members one of two ways:
//
//   - an explicit run list ("runs"): member manifests inline or by path
//     relative to the suite file;
//   - a base manifest plus an expansion grid ("base" + "grid"): the grid's
//     algorithm arms, codec arms and replicate block are expanded into the
//     cross product of member runs. Replication seeds come from
//     stats.ReplicaSeed, the same derivation internal/stats.Replicate uses.
//
// Resolve turns either form into the explicit run list with every member
// fully resolved; like Manifest.Resolved, the result is a marshal/parse
// fixed point, so the resolved-suite.json a run emits reproduces the whole
// suite — per-run numbers and the joint table — bitwise.
type Suite struct {
	// Name identifies the suite; it becomes the output directory name, so
	// it must be non-empty and contain no path separators.
	Name string `json:"name"`
	// Description is free-form documentation shown by `netmax-scenario list`.
	Description string `json:"description,omitempty"`
	// Runs lists the member scenarios explicitly. Mutually exclusive with
	// Base/Grid.
	Runs []SuiteMember `json:"runs,omitempty"`
	// Base is the manifest the Grid expands (inline or by path). Requires
	// Grid.
	Base *SuiteMember `json:"base,omitempty"`
	// Grid is the expansion over the base: algorithm arms x codec arms x
	// replication seeds. Requires Base.
	Grid *GridSpec `json:"grid,omitempty"`
	// Output tunes the joint table.
	Output *SuiteOutputSpec `json:"output,omitempty"`

	// dir anchors relative member paths (set by LoadSuite; empty for
	// ParseSuite, which resolves paths against the working directory).
	dir string
}

// SuiteMember names one member scenario: exactly one of Path (a manifest
// file relative to the suite file) and Manifest (inline) must be set.
type SuiteMember struct {
	// Path locates a member manifest file, relative to the suite file.
	Path string `json:"path,omitempty"`
	// Manifest is the inline member manifest.
	Manifest *Manifest `json:"manifest,omitempty"`
	// Arm is the joint-table grouping key; members sharing an arm are
	// summarized together (mean +/- stddev). Empty defaults to the member
	// manifest's name — one arm per member.
	Arm string `json:"arm,omitempty"`
}

// GridSpec expands a base manifest into member runs. Every listed dimension
// multiplies: len(algorithms) x len(codecs) x replicate.n runs. Dimensions
// left empty keep the base's value.
type GridSpec struct {
	// Algorithms lists the algorithm arms. Base blocks an arm cannot carry
	// are dropped during expansion: the netmax block for monitor-free
	// algorithms, hop_staleness for non-hop ones, fixed_blend under
	// adpsgd-monitor (which implies it).
	Algorithms []string `json:"algorithms,omitempty"`
	// Codecs lists the codec arms; an entry with name "" means "no codec"
	// (the uncompressed bandwidth model).
	Codecs []CodecSpec `json:"codecs,omitempty"`
	// Replicate expands each arm into n seeds via stats.ReplicaSeed.
	Replicate *ReplicateSpec `json:"replicate,omitempty"`
}

// ReplicateSpec is the multi-seed replication block, wired to
// internal/stats: seed i is stats.ReplicaSeed(base_seed, i).
type ReplicateSpec struct {
	// N is the replica count per arm.
	N int `json:"n"`
	// BaseSeed anchors the seed sequence; 0 uses the base manifest's
	// (resolved) seed.
	BaseSeed int64 `json:"base_seed,omitempty"`
}

// SuiteOutputSpec tunes the suite's joint table.
type SuiteOutputSpec struct {
	// TargetLoss, when positive, adds a time-to-loss column: the virtual
	// time at which each run's loss curve first reaches the target
	// (engine-runtime members only).
	TargetLoss float64 `json:"target_loss,omitempty"`
}

// IsSuite reports whether raw looks like a suite document rather than a
// single-run manifest: suites carry a top-level "runs", "base" or "grid"
// key, which no Manifest has.
func IsSuite(raw []byte) bool {
	var top map[string]json.RawMessage
	if err := json.Unmarshal(raw, &top); err != nil {
		return false
	}
	for _, k := range []string{"runs", "base", "grid"} {
		if _, ok := top[k]; ok {
			return true
		}
	}
	return false
}

// decodeSuite decodes a suite document, rejecting unknown fields and
// trailing data; validation is the caller's job (it needs dir set first).
func decodeSuite(raw []byte) (*Suite, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var s Suite
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse suite: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse suite: trailing data after suite object")
	}
	return &s, nil
}

// ParseSuite decodes a suite from JSON, rejecting unknown fields, and
// validates it (expanding the grid and loading path members to check every
// resulting run). Relative member paths resolve against the working
// directory; use LoadSuite for file-anchored paths.
func ParseSuite(raw []byte) (*Suite, error) {
	s, err := decodeSuite(raw)
	if err != nil {
		return nil, err
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadSuiteBytes finishes loading an already-read suite file: anchor
// member paths to the file's directory and validate.
func loadSuiteBytes(raw []byte, path string) (*Suite, error) {
	s, err := decodeSuite(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	s.dir = filepath.Dir(path)
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return s, nil
}

// LoadSuite reads, parses and validates a suite file; member paths resolve
// relative to the suite file's directory.
func LoadSuite(path string) (*Suite, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return loadSuiteBytes(raw, path)
}

// LoadAny loads either a single-run manifest or a suite, detected by
// content (suites carry "runs"/"base"/"grid"). Exactly one of the returns
// is non-nil on success.
func LoadAny(path string) (*Manifest, *Suite, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}
	if IsSuite(raw) {
		s, err := loadSuiteBytes(raw, path)
		return nil, s, err
	}
	m, err := Parse(raw)
	if err != nil {
		return nil, nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil, nil
}

// Validate checks the suite structurally and then expands it both ways
// (full scale and with quick overrides applied), so a suite is valid
// exactly when every run it describes is runnable and uniquely named —
// the same rigor single manifests get.
func (s *Suite) Validate() error {
	if err := s.validateShape(); err != nil {
		return err
	}
	if _, err := s.Resolve(false); err != nil {
		return err
	}
	if _, err := s.Resolve(true); err != nil {
		return fmt.Errorf("%w (with quick overrides applied)", err)
	}
	return nil
}

// validateShape performs the suite-level structural checks (Resolve runs
// them too, so a programmatically built suite cannot skip them by going
// straight to RunSuite).
func (s *Suite) validateShape() error {
	e := &errorList{name: s.Name}
	if s.Name == "" {
		e.addf("name must be non-empty")
	}
	if strings.ContainsAny(s.Name, "/\\") {
		e.addf("name must not contain path separators")
	}
	switch {
	case len(s.Runs) > 0 && (s.Base != nil || s.Grid != nil):
		e.addf("runs and base/grid are mutually exclusive")
	case len(s.Runs) == 0 && s.Base == nil && s.Grid == nil:
		e.addf("a suite needs members: set runs, or base plus grid")
	case s.Base != nil && s.Grid == nil:
		e.addf("base without grid: a single-run suite is just a manifest; set grid")
	case s.Grid != nil && s.Base == nil:
		e.addf("grid requires a base manifest to expand")
	}
	if g := s.Grid; g != nil {
		if len(g.Algorithms) == 0 && len(g.Codecs) == 0 && g.Replicate == nil {
			e.addf("grid expands nothing: set algorithms, codecs or replicate")
		}
		for i, a := range g.Algorithms {
			if !knownEngineAlgorithm(a) {
				e.addf("grid algorithm %d: unknown algorithm %q (want one of %s)", i, a, strings.Join(engineAlgorithms, ", "))
			}
		}
		if r := g.Replicate; r != nil {
			if r.N < 1 {
				e.addf("grid.replicate.n must be >= 1, got %d", r.N)
			}
			if r.BaseSeed < 0 {
				e.addf("grid.replicate.base_seed must be >= 0, got %d", r.BaseSeed)
			}
		}
	}
	if o := s.Output; o != nil && o.TargetLoss < 0 {
		e.addf("output.target_loss must be >= 0, got %g", o.TargetLoss)
	}
	for i, mem := range s.Runs {
		if (mem.Path == "") == (mem.Manifest == nil) {
			e.addf("run %d: exactly one of path and manifest must be set", i)
		}
	}
	if b := s.Base; b != nil && (b.Path == "") == (b.Manifest == nil) {
		e.addf("base: exactly one of path and manifest must be set")
	}
	if b := s.Base; b != nil && b.Arm != "" {
		e.addf("base takes no arm (arms come from the grid)")
	}
	return e.err()
}

// loadMember materializes a member's manifest: inline members are
// deep-copied (expansion must not mutate the suite), path members loaded
// relative to the suite's directory.
func (s *Suite) loadMember(mem *SuiteMember) (*Manifest, error) {
	if mem.Manifest != nil {
		if err := mem.Manifest.Validate(); err != nil {
			return nil, err
		}
		return mem.Manifest.clone(), nil
	}
	path := mem.Path
	if !filepath.IsAbs(path) && s.dir != "" {
		path = filepath.Join(s.dir, path)
	}
	return Load(path)
}

// Resolve expands the suite into its explicit run list: the grid (if any)
// is multiplied out, path members are inlined, quick overrides are applied
// when quick is set, and every member is fully resolved. The result is a
// marshal/parse fixed point — Resolve of a resolved suite returns it
// unchanged — and is what RunSuite executes and emits as
// resolved-suite.json.
func (s *Suite) Resolve(quick bool) (*Suite, error) {
	if err := s.validateShape(); err != nil {
		return nil, err
	}
	out := &Suite{Name: s.Name, Description: s.Description}
	if s.Output != nil {
		cp := *s.Output
		out.Output = &cp
	}
	var members []SuiteMember
	var err error
	if s.Grid != nil {
		members, err = s.expandGrid(quick)
	} else {
		members, err = s.explicitMembers(quick)
	}
	if err != nil {
		return nil, err
	}
	seen := make(map[string]int, len(members))
	for i, mem := range members {
		name := mem.Manifest.Name
		if j, dup := seen[name]; dup {
			return nil, fmt.Errorf("suite %q: runs %d and %d share the name %q (member names become output directories and must be unique)", s.Name, j, i, name)
		}
		seen[name] = i
	}
	out.Runs = members
	return out, nil
}

// explicitMembers inlines and resolves an explicit run list.
func (s *Suite) explicitMembers(quick bool) ([]SuiteMember, error) {
	members := make([]SuiteMember, 0, len(s.Runs))
	for i, mem := range s.Runs {
		m, err := s.loadMember(&mem)
		if err != nil {
			return nil, fmt.Errorf("suite %q: run %d: %w", s.Name, i, err)
		}
		if quick {
			m = m.ApplyQuick()
		}
		if err := m.Validate(); err != nil {
			return nil, fmt.Errorf("suite %q: run %d: %w", s.Name, i, err)
		}
		r := m.Resolved()
		arm := mem.Arm
		if arm == "" {
			arm = r.Name
		}
		members = append(members, SuiteMember{Manifest: r, Arm: arm})
	}
	return members, nil
}

// expandGrid multiplies the base manifest by the grid's dimensions. Arm
// labels concatenate the varying dimensions (algorithm, then codec);
// member names append the arm and the seed to the suite name.
func (s *Suite) expandGrid(quick bool) ([]SuiteMember, error) {
	base, err := s.loadMember(s.Base)
	if err != nil {
		return nil, fmt.Errorf("suite %q: base: %w", s.Name, err)
	}
	if quick {
		base = base.ApplyQuick()
	}
	g := s.Grid

	algos := g.Algorithms
	if len(algos) == 0 {
		algos = []string{base.Resolved().Algorithm}
	}
	// A nil entry in codecs means "keep the base's codec block".
	codecs := []*CodecSpec{nil}
	if len(g.Codecs) > 0 {
		codecs = make([]*CodecSpec, len(g.Codecs))
		for i := range g.Codecs {
			cp := g.Codecs[i]
			codecs[i] = &cp
		}
	}
	seeds := []int64{base.Resolved().Seed}
	if r := g.Replicate; r != nil {
		baseSeed := r.BaseSeed
		if baseSeed == 0 {
			baseSeed = base.Resolved().Seed
		}
		seeds = make([]int64, r.N)
		for i := range seeds {
			seeds[i] = stats.ReplicaSeed(baseSeed, i)
		}
	}

	var members []SuiteMember
	for _, algo := range algos {
		for _, cdc := range codecs {
			arm := armLabel(g, algo, cdc)
			for _, seed := range seeds {
				m := base.clone()
				m.Algorithm = algo
				m.Seed = seed
				if cdc != nil {
					if cdc.Name == "" {
						m.Codec = nil
					} else {
						cp := *cdc
						m.Codec = &cp
					}
				}
				// Drop base blocks this arm cannot carry (rather than
				// failing validation on a block the base legitimately
				// needs for its own algorithm).
				if !usesMonitor(m.Algorithm) {
					m.NetMax = nil
				}
				if m.Algorithm != "hop" {
					m.HopStaleness = 0
				}
				if m.Algorithm == "adpsgd-monitor" && m.NetMax != nil {
					m.NetMax.FixedBlend = false
				}
				m.Name = fmt.Sprintf("%s-%s-s%d", s.Name, arm, seed)
				m.Description = ""
				if err := m.Validate(); err != nil {
					return nil, fmt.Errorf("suite %q: arm %q seed %d: %w", s.Name, arm, seed, err)
				}
				members = append(members, SuiteMember{Manifest: m.Resolved(), Arm: arm})
			}
		}
	}
	return members, nil
}

// armLabel names one grid cell from its varying dimensions: the algorithm
// when algorithms vary, plus a codec tag when codecs vary.
func armLabel(g *GridSpec, algo string, cdc *CodecSpec) string {
	var parts []string
	if len(g.Algorithms) > 0 {
		parts = append(parts, algo)
	}
	if cdc != nil {
		parts = append(parts, codecLabel(cdc))
	}
	// Replicate-only grids still need a label: the (single) algorithm.
	if len(parts) == 0 {
		parts = append(parts, algo)
	}
	return strings.Join(parts, "-")
}

// codecLabel renders a codec arm compactly: "raw", "float32", "topk0.25"
// (fraction kept), or "nocodec" for the drop-the-codec entry.
func codecLabel(c *CodecSpec) string {
	switch {
	case c.Name == "":
		return "nocodec"
	case c.Name == "topk" && c.TopKFrac > 0:
		return fmt.Sprintf("topk%g", c.TopKFrac)
	default:
		return c.Name
	}
}
