package scenario

import (
	"encoding/json"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"netmax/internal/engine"
	"netmax/internal/stats"
)

// tinySuite is a small two-arm, two-seed grid suite over an inline base:
// 4 quick engine runs.
func tinySuite() *Suite {
	return &Suite{
		Name: "t-suite",
		Base: &SuiteMember{Manifest: &Manifest{
			Name: "t-base", Model: "MobileNet", Dataset: "MNIST",
			Workers: 4, Epochs: 1,
			Network: &NetworkSpec{Kind: "static"},
		}},
		Grid: &GridSpec{
			Algorithms: []string{"netmax", "adpsgd"},
			Replicate:  &ReplicateSpec{N: 2},
		},
		Output: &SuiteOutputSpec{TargetLoss: 2.0},
	}
}

// TestSuiteResolveFixedPoint checks that a resolved suite survives a
// marshal/parse/resolve round trip unchanged, for both the grid and the
// explicit-run-list forms.
func TestSuiteResolveFixedPoint(t *testing.T) {
	explicit := &Suite{
		Name: "t-explicit",
		Runs: []SuiteMember{
			{Manifest: minimal(), Arm: "a"},
			{Manifest: &Manifest{
				Name: "t-minimal-2", Model: "MobileNet", Dataset: "MNIST",
				Workers: 4, Epochs: 2, Seed: 7,
				Network: &NetworkSpec{Kind: "static"},
			}},
		},
	}
	for _, s := range []*Suite{tinySuite(), explicit} {
		t.Run(s.Name, func(t *testing.T) {
			if err := s.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			r, err := s.Resolve(false)
			if err != nil {
				t.Fatalf("Resolve: %v", err)
			}
			again, err := r.Resolve(false)
			if err != nil {
				t.Fatalf("re-Resolve: %v", err)
			}
			if !reflect.DeepEqual(r, again) {
				t.Fatalf("Resolve not idempotent:\n%+v\nvs\n%+v", r, again)
			}
			raw, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			back, err := ParseSuite(raw)
			if err != nil {
				t.Fatalf("ParseSuite(Resolve): %v", err)
			}
			resolved, err := back.Resolve(false)
			if err != nil {
				t.Fatalf("Resolve(parse back): %v", err)
			}
			if !reflect.DeepEqual(r, resolved) {
				t.Fatalf("resolved suite is not a marshal/parse fixed point:\n%s", raw)
			}
		})
	}
}

// TestSuiteGridExpansion checks the grid semantics: the algorithm x codec x
// seed cross product, seeds derived exactly as stats.ReplicaSeed derives
// them, arm labels, member naming, and the dropping of base blocks an arm
// cannot carry.
func TestSuiteGridExpansion(t *testing.T) {
	s := &Suite{
		Name: "t-grid",
		Base: &SuiteMember{Manifest: &Manifest{
			Name: "t-base", Model: "MobileNet", Dataset: "MNIST",
			Workers: 4, Epochs: 1, Seed: 3,
			Network: &NetworkSpec{Kind: "static"},
			NetMax:  &NetMaxSpec{StalePeriods: 2},
		}},
		Grid: &GridSpec{
			Algorithms: []string{"netmax", "adpsgd"},
			Codecs:     []CodecSpec{{Name: "raw"}, {Name: "topk", TopKFrac: 0.25}},
			Replicate:  &ReplicateSpec{N: 3},
		},
	}
	r, err := s.Resolve(false)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	if len(r.Runs) != 2*2*3 {
		t.Fatalf("expected 12 runs, got %d", len(r.Runs))
	}
	// Seeds follow stats.ReplicaSeed off the base's seed, repeating per arm.
	for i, mem := range r.Runs {
		want := stats.ReplicaSeed(3, i%3)
		if mem.Manifest.Seed != want {
			t.Errorf("run %d: seed %d, want %d (stats.ReplicaSeed)", i, mem.Manifest.Seed, want)
		}
	}
	first := r.Runs[0]
	if first.Arm != "netmax-raw" {
		t.Errorf("arm = %q, want netmax-raw", first.Arm)
	}
	if first.Manifest.Name != "t-grid-netmax-raw-s3" {
		t.Errorf("member name = %q", first.Manifest.Name)
	}
	if first.Manifest.NetMax == nil || first.Manifest.NetMax.StalePeriods != 2 {
		t.Errorf("netmax arm lost the base's netmax block: %+v", first.Manifest.NetMax)
	}
	// The adpsgd arms must have dropped the monitor block, and the topk
	// arms must carry the grid's codec.
	var sawADPSGDTopK bool
	for _, mem := range r.Runs {
		m := mem.Manifest
		if m.Algorithm == "adpsgd" && m.NetMax != nil {
			t.Errorf("adpsgd arm %q kept the netmax block", m.Name)
		}
		if mem.Arm == "adpsgd-topk0.25" {
			sawADPSGDTopK = true
			if m.Codec == nil || m.Codec.Name != "topk" || m.Codec.TopKFrac != 0.25 {
				t.Errorf("topk arm %q has codec %+v", m.Name, m.Codec)
			}
		}
	}
	if !sawADPSGDTopK {
		arms := make([]string, 0, len(r.Runs))
		for _, mem := range r.Runs {
			arms = append(arms, mem.Arm)
		}
		t.Fatalf("no adpsgd-topk0.25 arm among %v", arms)
	}
}

// TestSuitePathMembers checks file-anchored member resolution: paths
// resolve relative to the suite file, and quick resolution applies the
// member's own quick overrides.
func TestSuitePathMembers(t *testing.T) {
	dir := t.TempDir()
	member := []byte(`{
	  "name": "member-a", "model": "MobileNet", "dataset": "MNIST",
	  "workers": 4, "epochs": 4,
	  "network": {"kind": "static"},
	  "quick": {"workers": 2, "epochs": 1}
	}`)
	if err := os.WriteFile(filepath.Join(dir, "member-a.json"), member, 0o644); err != nil {
		t.Fatal(err)
	}
	suite := []byte(`{
	  "name": "t-paths",
	  "runs": [{"path": "member-a.json", "arm": "a"}],
	  "base": null
	}`)
	path := filepath.Join(dir, "t-paths.json")
	if err := os.WriteFile(path, suite, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSuite(path)
	if err != nil {
		t.Fatalf("LoadSuite: %v", err)
	}
	full, err := s.Resolve(false)
	if err != nil {
		t.Fatalf("Resolve(full): %v", err)
	}
	if got := full.Runs[0].Manifest; got.Workers != 4 || got.Epochs != 4 {
		t.Errorf("full-scale member resolved to workers=%d epochs=%d", got.Workers, got.Epochs)
	}
	quick, err := s.Resolve(true)
	if err != nil {
		t.Fatalf("Resolve(quick): %v", err)
	}
	if got := quick.Runs[0].Manifest; got.Workers != 2 || got.Epochs != 1 {
		t.Errorf("quick member resolved to workers=%d epochs=%d, want 2/1", got.Workers, got.Epochs)
	}
	if quick.Runs[0].Manifest.Quick != nil {
		t.Errorf("quick block survived suite resolution")
	}
}

// TestSuiteValidateRejectsMalformed is the malformed-suite table.
func TestSuiteValidateRejectsMalformed(t *testing.T) {
	valid := `{"name": "m", "model": "MobileNet", "dataset": "MNIST", "workers": 4, "epochs": 1, "network": {"kind": "static"}}`
	cases := []struct {
		name     string
		raw      string
		fragment string
	}{
		{"unknown field", `{"name": "x", "runz": []}`, "runz"},
		{"trailing data", `{"name": "x", "runs": [{"manifest": ` + valid + `}]} {}`, "trailing data"},
		{"empty name", `{"runs": [{"manifest": ` + valid + `}]}`, "name must be non-empty"},
		{"separator in name", `{"name": "a/b", "runs": [{"manifest": ` + valid + `}]}`, "path separators"},
		{"no members", `{"name": "x"}`, "needs members"},
		{"runs and grid", `{"name": "x", "runs": [{"manifest": ` + valid + `}], "grid": {"replicate": {"n": 2}}}`, "mutually exclusive"},
		{"base without grid", `{"name": "x", "base": {"manifest": ` + valid + `}}`, "set grid"},
		{"grid without base", `{"name": "x", "grid": {"replicate": {"n": 2}}}`, "requires a base"},
		{"empty grid", `{"name": "x", "base": {"manifest": ` + valid + `}, "grid": {}}`, "expands nothing"},
		{"bad grid algorithm", `{"name": "x", "base": {"manifest": ` + valid + `}, "grid": {"algorithms": ["sgd"]}}`, "unknown algorithm"},
		{"replicate n", `{"name": "x", "base": {"manifest": ` + valid + `}, "grid": {"replicate": {"n": 0}}}`, "replicate.n"},
		{"negative base seed", `{"name": "x", "base": {"manifest": ` + valid + `}, "grid": {"replicate": {"n": 2, "base_seed": -1}}}`, "base_seed"},
		{"negative target loss", `{"name": "x", "runs": [{"manifest": ` + valid + `}], "output": {"target_loss": -1}}`, "target_loss"},
		{"member path and manifest", `{"name": "x", "runs": [{"path": "a.json", "manifest": ` + valid + `}]}`, "exactly one of path and manifest"},
		{"member neither", `{"name": "x", "runs": [{"arm": "a"}]}`, "exactly one of path and manifest"},
		{"base with arm", `{"name": "x", "base": {"manifest": ` + valid + `, "arm": "a"}, "grid": {"replicate": {"n": 2}}}`, "base takes no arm"},
		{"duplicate member names", `{"name": "x", "runs": [{"manifest": ` + valid + `}, {"manifest": ` + valid + `}]}`, "share the name"},
		{"invalid member", `{"name": "x", "runs": [{"manifest": {"name": "m", "model": "ResNet34"}}]}`, "unknown model"},
		{"bad codec arm", `{"name": "x", "base": {"manifest": ` + valid + `}, "grid": {"codecs": [{"name": "zstd"}]}}`, "unknown codec"},
		{"missing member file", `{"name": "x", "runs": [{"path": "no-such-file.json"}]}`, "no-such-file.json"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ParseSuite([]byte(c.raw))
			if err == nil {
				t.Fatalf("ParseSuite accepted malformed suite %s", c.raw)
			}
			if !strings.Contains(err.Error(), c.fragment) {
				t.Fatalf("error %q does not mention %q", err, c.fragment)
			}
		})
	}
}

// TestIsSuite checks the content-based detection LoadAny relies on.
func TestIsSuite(t *testing.T) {
	if IsSuite([]byte(`{"name": "x", "workers": 4}`)) {
		t.Errorf("single manifest detected as suite")
	}
	for _, raw := range []string{
		`{"name": "x", "runs": []}`,
		`{"name": "x", "base": {}, "grid": {}}`,
	} {
		if !IsSuite([]byte(raw)) {
			t.Errorf("suite document not detected: %s", raw)
		}
	}
}

// readTree returns path -> contents for every file under dir, with paths
// relative to dir.
func readTree(t *testing.T, dir string) map[string]string {
	t.Helper()
	out := map[string]string{}
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		out[rel] = string(raw)
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	return out
}

// requireSameTree asserts two output trees are byte-identical.
func requireSameTree(t *testing.T, name string, a, b map[string]string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: tree sizes differ: %d vs %d files", name, len(a), len(b))
	}
	for rel, body := range a {
		other, ok := b[rel]
		if !ok {
			t.Fatalf("%s: %s missing from second tree", name, rel)
		}
		if body != other {
			t.Fatalf("%s: %s differs between trees", name, rel)
		}
	}
}

// TestRunSuiteEmitsOutputs runs a tiny suite with an output directory and
// checks the reproducibility contract: resolved-suite.json, suite.json and
// the per-run outputs are written, and re-running the emitted resolved run
// list reproduces the entire tree bitwise.
func TestRunSuiteEmitsOutputs(t *testing.T) {
	out := t.TempDir()
	rep, err := RunSuite(tinySuite(), SuiteRunOptions{OutDir: out})
	if err != nil {
		t.Fatalf("RunSuite: %v", err)
	}
	dir := filepath.Join(out, "t-suite")
	if rep.Dir != dir {
		t.Fatalf("SuiteReport.Dir = %q, want %q", rep.Dir, dir)
	}
	for _, f := range []string{"resolved-suite.json", "suite.json"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("expected suite output %s: %v", f, err)
		}
	}
	if len(rep.Reports) != 4 {
		t.Fatalf("expected 4 member reports, got %d", len(rep.Reports))
	}
	for _, mem := range rep.Suite.Runs {
		for _, f := range []string{"resolved.json", "result.json"} {
			if _, err := os.Stat(filepath.Join(dir, mem.Manifest.Name, f)); err != nil {
				t.Fatalf("expected member output %s/%s: %v", mem.Manifest.Name, f, err)
			}
		}
	}
	if got := len(rep.Table.Arms); got != 2 {
		t.Fatalf("expected 2 arms in the joint table, got %d", got)
	}
	for _, arm := range rep.Table.Arms {
		if arm.N != 2 {
			t.Errorf("arm %s has n=%d, want 2", arm.Arm, arm.N)
		}
		if arm.BytesOnWire.Mean <= 0 {
			t.Errorf("arm %s reports no traffic", arm.Arm)
		}
	}
	// The emitted resolved run list reproduces everything bitwise.
	back, err := LoadSuite(filepath.Join(dir, "resolved-suite.json"))
	if err != nil {
		t.Fatalf("emitted resolved suite does not reload: %v", err)
	}
	out2 := t.TempDir()
	if _, err := RunSuite(back, SuiteRunOptions{OutDir: out2}); err != nil {
		t.Fatalf("re-running resolved suite: %v", err)
	}
	requireSameTree(t, "rerun", readTree(t, dir), readTree(t, filepath.Join(out2, "t-suite")))
}

// TestSuiteRunParallelismBitwise is the suite-level determinism gate (run
// in CI's race/determinism job): a suite executed serially and under the
// concurrent driver produces byte-identical per-run outputs and an
// identical joint table.
func TestSuiteRunParallelismBitwise(t *testing.T) {
	trees := map[int]map[string]string{}
	for _, par := range []int{1, 4} {
		out := t.TempDir()
		rep, err := RunSuite(tinySuite(), SuiteRunOptions{OutDir: out, Par: par})
		if err != nil {
			t.Fatalf("RunSuite(par=%d): %v", par, err)
		}
		trees[par] = readTree(t, rep.Dir)
	}
	requireSameTree(t, "par1-vs-par4", trees[1], trees[4])
}

// TestRunSuiteValidatesShape checks that programmatically built suites
// cannot bypass the suite-level structural checks by going straight to
// RunSuite — a path-separator name must never become an output path.
func TestRunSuiteValidatesShape(t *testing.T) {
	s := tinySuite()
	s.Name = "../escape"
	out := t.TempDir()
	if _, err := RunSuite(s, SuiteRunOptions{OutDir: out}); err == nil {
		t.Fatalf("RunSuite accepted a suite name with path separators")
	} else if !strings.Contains(err.Error(), "path separators") {
		t.Fatalf("error %q does not mention path separators", err)
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(out), "escape")); !os.IsNotExist(err) {
		t.Fatalf("suite outputs escaped the output directory")
	}
}

// TestRunSuiteMemberError checks that a failing member aborts the suite
// with a named error instead of a partial table.
func TestRunSuiteMemberError(t *testing.T) {
	s := tinySuite()
	s.Grid.Algorithms = []string{"netmax"}
	r, err := s.Resolve(false)
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	// Sabotage a resolved member past validation: Run re-validates and
	// must surface the member name in the error.
	r.Runs[0].Manifest.Model = "NoSuchModel"
	name := r.Runs[0].Manifest.Name
	if _, err := RunSuite(r, SuiteRunOptions{}); err == nil {
		t.Fatalf("RunSuite accepted a broken member")
	} else if !strings.Contains(err.Error(), name) {
		t.Fatalf("error %q does not name the failing run %q", err, name)
	}
}

// TestSuiteTableTimeToLoss pins the time-to-loss semantics: the first
// curve sample at or below the target, missing for runs that never reach
// it.
func TestSuiteTableTimeToLoss(t *testing.T) {
	s := &Suite{Name: "t", Output: &SuiteOutputSpec{TargetLoss: 0.5}}
	s.Runs = []SuiteMember{
		{Arm: "a", Manifest: &Manifest{Name: "r1"}},
		{Arm: "a", Manifest: &Manifest{Name: "r2"}},
	}
	reports := []*Report{
		{Engine: &engine.Result{
			FinalLoss: 0.2, TotalTime: 6,
			Curve: []engine.Point{{Epoch: 1, Time: 2, Value: 0.9}, {Epoch: 2, Time: 4, Value: 0.5}, {Epoch: 3, Time: 6, Value: 0.2}},
		}},
		{Engine: &engine.Result{
			FinalLoss: 0.8, TotalTime: 4,
			Curve: []engine.Point{{Epoch: 1, Time: 2, Value: 0.9}, {Epoch: 2, Time: 4, Value: 0.8}},
		}},
	}
	table := s.buildTable(reports)
	if len(table.Arms) != 1 {
		t.Fatalf("expected one arm, got %d", len(table.Arms))
	}
	a := table.Arms[0]
	if a.Reached != 1 {
		t.Fatalf("reached = %d, want 1", a.Reached)
	}
	if a.TimeToLoss == nil || a.TimeToLoss.Mean != 4 {
		t.Fatalf("time-to-loss = %+v, want mean 4 (first sample at the target)", a.TimeToLoss)
	}
}
