package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// minimal returns the smallest interesting engine manifest: quick to run,
// exercising the default path.
func minimal() *Manifest {
	return &Manifest{
		Name:    "t-minimal",
		Model:   "MobileNet",
		Dataset: "MNIST",
		Workers: 4,
		Epochs:  2,
		Network: &NetworkSpec{Kind: "static"},
	}
}

// TestResolvedFixedPoint checks that resolving is idempotent and that a
// resolved manifest survives a marshal/parse round trip unchanged:
// Load(Resolved(m)) is a fixed point.
func TestResolvedFixedPoint(t *testing.T) {
	cases := []*Manifest{
		minimal(),
		{Name: "t-defaults"},
		{
			Name: "t-full", Algorithm: "adpsgd-monitor", Model: "VGG19", Dataset: "CIFAR100",
			Workers: 8, Epochs: 3, Batch: 8, LR: 0.05, LRDecayEpoch: 2, Seed: 9,
			Topology: &TopologySpec{Kind: "cluster", NodesPerMachine: []int{4, 4}},
			Network:  &NetworkSpec{Kind: "shuffled", PeriodSecs: 3},
			Compute:  &ComputeSpec{Kind: "straggler", Worker: 3, Factor: 5},
			Codec:    &CodecSpec{Name: "topk"},
			Failures: &FailureSpec{Events: []FailureEvent{{Kind: "crash", Worker: 1, At: 5, Rejoin: 9}}},
			NetMax:   &NetMaxSpec{StalePeriods: 2},
			Output:   &OutputSpec{Curves: true},
		},
		{
			Name: "t-preset", Dataset: "MNIST",
			Partition: &PartitionSpec{Preset: "paper-8"},
		},
		{
			Name: "t-live", Runtime: "live", Model: "MobileNet", Dataset: "MNIST",
			Live: &LiveSpec{Iterations: 10, Latency: &LatencySpec{Colocated: 2, IntraMillis: 1, InterMillis: 6}},
		},
		{
			Name: "t-churn", Workers: 4, Network: &NetworkSpec{Kind: "homogeneous"},
			Failures: &FailureSpec{RandomChurn: &RandomChurnSpec{HorizonSecs: 100, CrashesPerWorker: 2, MeanDownSecs: 5}},
		},
	}
	for _, m := range cases {
		t.Run(m.Name, func(t *testing.T) {
			if err := m.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			r := m.Resolved()
			if !reflect.DeepEqual(r, r.Resolved()) {
				t.Fatalf("Resolved not idempotent:\n%+v\nvs\n%+v", r, r.Resolved())
			}
			raw, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			back, err := Parse(raw)
			if err != nil {
				t.Fatalf("Parse(Resolved(m)): %v", err)
			}
			if !reflect.DeepEqual(r, back.Resolved()) {
				t.Fatalf("Load(Resolved(m)) is not a fixed point:\n%s\nresolved to\n%+v\nwant\n%+v", raw, back.Resolved(), r)
			}
			if !reflect.DeepEqual(back, back.Resolved()) {
				t.Fatalf("parsed resolved manifest re-resolves differently")
			}
		})
	}
}

// TestValidateRejectsMalformed is the malformed-manifest table: every entry
// must fail Parse with a message containing the fragment.
func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name     string
		raw      string
		fragment string
	}{
		{"unknown field", `{"name": "x", "wrkers": 4}`, "wrkers"},
		{"trailing data", `{"name": "x"} {"name": "y"}`, "trailing data"},
		{"empty name", `{}`, "name must be non-empty"},
		{"bad runtime", `{"name": "x", "runtime": "simulated"}`, "unknown runtime"},
		{"bad algorithm", `{"name": "x", "algorithm": "sgd"}`, "unknown algorithm"},
		{"bad model", `{"name": "x", "model": "ResNet34"}`, "unknown model"},
		{"bad dataset", `{"name": "x", "dataset": "SVHN"}`, "unknown dataset"},
		{"one worker", `{"name": "x", "workers": 1}`, "workers must be >= 2"},
		{"bad topology kind", `{"name": "x", "topology": {"kind": "torus"}}`, "unknown topology kind"},
		{"cluster sum mismatch", `{"name": "x", "workers": 8, "topology": {"kind": "cluster", "nodes_per_machine": [4, 3]}}`, "sums to 7"},
		{"crash after rejoin", `{"name": "x", "failures": {"events": [{"kind": "crash", "worker": 1, "at": 9, "rejoin": 5}]}}`, "must come after the crash"},
		{"hang without until", `{"name": "x", "failures": {"events": [{"kind": "hang", "worker": 1, "at": 9}]}}`, "must come after at"},
		{"blackout self-loop", `{"name": "x", "failures": {"events": [{"kind": "blackout", "a": 2, "b": 2, "at": 1, "until": 2}]}}`, "endpoints must differ"},
		{"failure worker range", `{"name": "x", "workers": 4, "failures": {"events": [{"kind": "leave", "worker": 7, "at": 1}]}}`, "outside [0, 4)"},
		{"unknown codec", `{"name": "x", "codec": {"name": "zstd"}}`, "unknown codec"},
		{"topk frac range", `{"name": "x", "codec": {"name": "topk", "topk_frac": 1.5}}`, "topk_frac"},
		{"topk frac on raw", `{"name": "x", "codec": {"name": "raw", "topk_frac": 0.5}}`, "only valid with the topk codec"},
		{"segments mismatch", `{"name": "x", "workers": 4, "partition": {"kind": "segments", "segments": [1, 2]}}`, "want one per worker"},
		{"bad preset", `{"name": "x", "partition": {"preset": "paper-32"}}`, "unknown partition preset"},
		{"skew class range", `{"name": "x", "workers": 2, "dataset": "MNIST", "partition": {"kind": "label-skew", "lost_labels": [[11], []]}}`, "outside MNIST's 10 classes"},
		{"cross-region workers", `{"name": "x", "workers": 8, "network": {"kind": "cross-region"}}`, "fixes workers to 6"},
		{"static with dynamics", `{"name": "x", "network": {"kind": "static", "period_secs": 5}}`, "no dynamics"},
		{"hop staleness misuse", `{"name": "x", "hop_staleness": 4}`, "only valid with algorithm"},
		{"netmax block misuse", `{"name": "x", "algorithm": "adpsgd", "netmax": {"ts_secs": 1}}`, "netmax block is only valid"},
		{"compute scale mismatch", `{"name": "x", "workers": 4, "compute": {"kind": "explicit", "scale": [1, 2]}}`, "want one per worker"},
		{"straggler range", `{"name": "x", "workers": 4, "compute": {"kind": "straggler", "worker": 6, "factor": 5}}`, "outside [0, 4)"},
		{"live without bound", `{"name": "x", "runtime": "live", "live": {}}`, "need a bound"},
		{"live with engine block", `{"name": "x", "runtime": "live", "epochs": 4, "live": {"iterations": 5}}`, "engine-only"},
		{"engine with live block", `{"name": "x", "live": {"iterations": 5}}`, "only valid with runtime"},
		{"live bad transport", `{"name": "x", "runtime": "live", "live": {"iterations": 5, "transport": "udp"}}`, "unknown live transport"},
		{"live segments", `{"name": "x", "runtime": "live", "workers": 2, "partition": {"kind": "segments", "segments": [1, 2]}, "live": {"iterations": 5}}`, "engine-only"},
		{"quick breaks cluster", `{"name": "x", "workers": 8, "topology": {"kind": "cluster", "nodes_per_machine": [4, 4]}, "quick": {"workers": 4}}`, "quick overrides"},
		{"bad quick", `{"name": "x", "quick": {"epochs": -1}}`, "epochs"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse([]byte(c.raw))
			if err == nil {
				t.Fatalf("Parse accepted malformed manifest %s", c.raw)
			}
			if !strings.Contains(err.Error(), c.fragment) {
				t.Fatalf("error %q does not mention %q", err, c.fragment)
			}
		})
	}
}

// TestScenarioLibraryValidates loads every checked-in manifest and suite
// under scenarios/, validates it, checks its name matches its filename, and
// verifies the resolved round-trip fixed point on real files.
func TestScenarioLibraryValidates(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading %s: %v", dir, err)
	}
	manifests, suites := 0, 0
	for _, ent := range entries {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".json") {
			continue
		}
		path := filepath.Join(dir, ent.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading %s: %v", path, err)
		}
		if IsSuite(raw) {
			suites++
		} else {
			manifests++
		}
		t.Run(ent.Name(), func(t *testing.T) {
			m, s, err := LoadAny(path)
			if err != nil {
				t.Fatalf("LoadAny: %v", err)
			}
			want := strings.TrimSuffix(ent.Name(), ".json")
			if s != nil {
				if s.Name != want {
					t.Errorf("suite name %q does not match filename %q", s.Name, want)
				}
				if s.Description == "" {
					t.Errorf("suite %s has no description", ent.Name())
				}
				r, err := s.Resolve(false)
				if err != nil {
					t.Fatalf("Resolve: %v", err)
				}
				raw, _ := json.MarshalIndent(r, "", "  ")
				back, err := ParseSuite(raw)
				if err != nil {
					t.Fatalf("ParseSuite(Resolve): %v", err)
				}
				again, err := back.Resolve(false)
				if err != nil {
					t.Fatalf("re-Resolve: %v", err)
				}
				if !reflect.DeepEqual(r, again) {
					t.Fatalf("resolved suite round trip differs for %s", ent.Name())
				}
				return
			}
			if m.Name != want {
				t.Errorf("manifest name %q does not match filename %q", m.Name, want)
			}
			if m.Description == "" {
				t.Errorf("manifest %s has no description", ent.Name())
			}
			r := m.Resolved()
			raw, _ := json.MarshalIndent(r, "", "  ")
			back, err := Parse(raw)
			if err != nil {
				t.Fatalf("Parse(Resolved): %v", err)
			}
			if !reflect.DeepEqual(r, back.Resolved()) {
				t.Fatalf("resolved round trip differs for %s", ent.Name())
			}
		})
	}
	if manifests < 10 {
		t.Fatalf("scenario library has only %d manifests; the checked-in set should cover the paper's figures plus the churn/compression/cross-region matrices", manifests)
	}
	if suites < 3 {
		t.Fatalf("scenario library has only %d suites; the checked-in set should cover the paper comparison, the codec sweep and the multi-seed replication", suites)
	}
}

// TestApplyQuick checks override application and clearing.
func TestApplyQuick(t *testing.T) {
	m := minimal()
	m.Quick = &QuickSpec{Workers: 2, Epochs: 1}
	q := m.ApplyQuick()
	if q.Workers != 2 || q.Epochs != 1 {
		t.Fatalf("quick overrides not applied: %+v", q)
	}
	if q.Quick != nil {
		t.Fatalf("quick block survived ApplyQuick")
	}
	if m.Workers != 4 || m.Epochs != 2 {
		t.Fatalf("ApplyQuick mutated the original")
	}
	if again := q.ApplyQuick(); !reflect.DeepEqual(q, again) {
		// Second application is the identity (no Quick block left).
		t.Fatalf("ApplyQuick not idempotent after clearing: %+v vs %+v", q, again)
	}
}

// TestRunEmitsResolvedManifest runs a tiny scenario with an output
// directory and checks the reproducibility contract: resolved.json +
// result.json are written, the resolved manifest re-loads cleanly, and
// re-running it reproduces the numbers bitwise.
func TestRunEmitsResolvedManifest(t *testing.T) {
	m := minimal()
	m.Output = &OutputSpec{Curves: true}
	out := t.TempDir()
	rep, err := Run(m, RunOptions{OutDir: out})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Engine == nil {
		t.Fatalf("engine scenario returned no engine result")
	}
	dir := filepath.Join(out, m.Name)
	if rep.Dir != dir {
		t.Fatalf("Report.Dir = %q, want %q", rep.Dir, dir)
	}
	for _, f := range []string{"resolved.json", "result.json", "curve.csv"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("expected output %s: %v", f, err)
		}
	}
	back, err := Load(filepath.Join(dir, "resolved.json"))
	if err != nil {
		t.Fatalf("emitted resolved manifest does not reload: %v", err)
	}
	rep2, err := Run(back, RunOptions{})
	if err != nil {
		t.Fatalf("re-running resolved manifest: %v", err)
	}
	a, b := rep.Engine, rep2.Engine
	if a.FinalLoss != b.FinalLoss || a.FinalAccuracy != b.FinalAccuracy ||
		a.TotalTime != b.TotalTime || a.GlobalSteps != b.GlobalSteps || a.BytesSent != b.BytesSent {
		t.Fatalf("resolved manifest does not reproduce the run: %+v vs %+v", a, b)
	}
}

// TestRunLive exercises the live runtime end to end on the in-process
// transport.
func TestRunLive(t *testing.T) {
	m := &Manifest{
		Name: "t-live-run", Runtime: "live", Model: "MobileNet", Dataset: "MNIST",
		Workers: 2,
		Live:    &LiveSpec{Iterations: 5, TsMillis: 50},
	}
	rep, err := Run(m, RunOptions{})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rep.Live == nil {
		t.Fatalf("live scenario returned no live stats")
	}
	total := 0
	for _, n := range rep.Live.IterationsPerWorker {
		total += n
	}
	if total != 10 {
		t.Fatalf("expected 2 workers x 5 iterations, got %v", rep.Live.IterationsPerWorker)
	}
}
