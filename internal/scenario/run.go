package scenario

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"netmax/internal/engine"
	"netmax/internal/live"
	"netmax/internal/trace"
)

// RunOptions tunes one scenario execution.
type RunOptions struct {
	// Quick applies the manifest's quick overrides before running.
	Quick bool
	// OutDir, when non-empty, is the directory the run writes its outputs
	// into: <OutDir>/<name>/resolved.json (the fully-defaulted manifest
	// that produced the numbers), result.json, and curve.csv when the
	// manifest's output block asks for curves. Empty skips all file output.
	OutDir string
}

// Report is the outcome of one scenario run. Exactly one of Engine and Live
// is non-nil, matching the manifest's runtime.
type Report struct {
	// Manifest is the resolved (and, under Quick, quick-applied) manifest
	// that actually ran — the reproducibility record.
	Manifest *Manifest
	// Engine holds the discrete-event result for engine-runtime scenarios.
	Engine *engine.Result
	// Live holds the process-group stats for live-runtime scenarios.
	Live *live.Stats
	// Dir is where outputs were written ("" when RunOptions.OutDir was
	// empty).
	Dir string
}

// Run executes a manifest end to end: apply quick overrides, validate,
// build, run, and emit the resolved manifest next to the results so every
// reported number is reproducible from one file.
func Run(m *Manifest, opt RunOptions) (*Report, error) {
	run := m
	if opt.Quick {
		run = m.ApplyQuick()
	}
	if err := run.Validate(); err != nil {
		return nil, err
	}
	resolved := run.Resolved()
	rep := &Report{Manifest: resolved}
	if resolved.Runtime == "live" {
		cfg, hub, closeHub, err := run.BuildLive()
		if err != nil {
			return nil, err
		}
		rep.Live = live.Run(context.Background(), cfg, hub)
		if err := closeHub(); err != nil {
			return nil, fmt.Errorf("scenario %q: closing hub: %w", resolved.Name, err)
		}
	} else {
		cfg, runner, err := run.BuildEngine()
		if err != nil {
			return nil, err
		}
		rep.Engine = runner(cfg)
	}
	if opt.OutDir != "" {
		dir, err := rep.write(opt.OutDir)
		if err != nil {
			return nil, err
		}
		rep.Dir = dir
	}
	return rep, nil
}

// write emits resolved.json, result.json and (when requested) curve.csv
// under out/<name>/ and returns that directory.
func (rep *Report) write(out string) (string, error) {
	dir := filepath.Join(out, rep.Manifest.Name)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("scenario: %w", err)
	}
	raw, err := json.MarshalIndent(rep.Manifest, "", "  ")
	if err != nil {
		return "", fmt.Errorf("scenario: marshal resolved manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "resolved.json"), append(raw, '\n'), 0o644); err != nil {
		return "", fmt.Errorf("scenario: %w", err)
	}
	resPath := filepath.Join(dir, "result.json")
	f, err := os.Create(resPath)
	if err != nil {
		return "", fmt.Errorf("scenario: %w", err)
	}
	if rep.Engine != nil {
		err = trace.WriteResultJSON(f, rep.Engine)
	} else {
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		err = enc.Encode(rep.Live)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return "", fmt.Errorf("scenario: write %s: %w", resPath, err)
	}
	if rep.Engine != nil && rep.Manifest.Output != nil && rep.Manifest.Output.Curves {
		cf, err := os.Create(filepath.Join(dir, "curve.csv"))
		if err != nil {
			return "", fmt.Errorf("scenario: %w", err)
		}
		err = trace.WriteCurveCSV(cf, rep.Engine.Curve)
		if cerr := cf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return "", fmt.Errorf("scenario: write curve: %w", err)
		}
	}
	return dir, nil
}

// Summary returns a one-line human-readable digest of the run.
func (rep *Report) Summary() string {
	m := rep.Manifest
	if rep.Live != nil {
		s := rep.Live
		total := 0
		for _, n := range s.IterationsPerWorker {
			total += n
		}
		return fmt.Sprintf("%s [live/%s %s x%d]: acc %.2f%%, %d iterations, %d pulls, %d bytes on wire, %.1fs",
			m.Name, m.Algorithm, m.Model, m.Workers,
			100*s.FinalAccuracy, total, s.Pulls, s.BytesOnWire, s.Elapsed.Seconds())
	}
	r := rep.Engine
	return fmt.Sprintf("%s [engine/%s %s x%d]: acc %.2f%%, loss %.4f, %.1f virtual secs, %d steps, %d bytes",
		m.Name, m.Algorithm, m.Model, m.Workers,
		100*r.FinalAccuracy, r.FinalLoss, r.TotalTime, r.GlobalSteps, r.BytesSent)
}
