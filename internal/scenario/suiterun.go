package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"netmax/internal/engine"
	"netmax/internal/stats"
)

// SuiteRunOptions tunes one suite execution.
type SuiteRunOptions struct {
	// Quick applies each member's quick overrides before running.
	Quick bool
	// OutDir, when non-empty, roots the suite's output tree:
	// <OutDir>/<suite-name>/resolved-suite.json (the explicit run list that
	// reproduces everything), suite.json (the joint table), and one
	// <member-name>/ directory per run with the usual resolved.json /
	// result.json / curve.csv. Empty skips all file output.
	OutDir string
	// Par bounds how many member runs execute concurrently: 0 means the
	// process default (engine.DefaultParallelism, then GOMAXPROCS), 1
	// serial. The driver draws from the same process-wide GOMAXPROCS slot
	// budget as every other level (engine worker stepping, netmax-bench
	// -all), so nesting never multiplies concurrency — and per-run results
	// and the joint table are byte-identical at any setting.
	Par int
}

// SuiteReport is the outcome of one suite run.
type SuiteReport struct {
	// Suite is the resolved suite (explicit run list) that actually ran.
	Suite *Suite
	// Reports holds the member reports, in run-list order.
	Reports []*Report
	// Table is the joint per-arm summary.
	Table *SuiteTable
	// Dir is where suite outputs were written ("" when OutDir was empty).
	Dir string
}

// SuiteTable is the joint comparison table of a suite run: one row per arm,
// each metric summarized as mean +/- sample stddev over the arm's runs.
// This is the schema of suite.json.
type SuiteTable struct {
	Suite string `json:"suite"`
	// TargetLoss echoes output.target_loss when set; the TimeToLoss
	// columns exist only then.
	TargetLoss float64      `json:"target_loss,omitempty"`
	Arms       []ArmSummary `json:"arms"`
}

// ArmSummary aggregates the runs of one arm.
type ArmSummary struct {
	Arm string `json:"arm"`
	// N is the number of runs in the arm.
	N int `json:"n"`
	// Runs lists the member run names, in run-list order.
	Runs []string `json:"runs"`
	// TimeToLoss summarizes, over the runs that reached the target loss,
	// the virtual time of first reaching it (engine members with a target
	// configured; nil otherwise).
	TimeToLoss *Dist `json:"time_to_loss,omitempty"`
	// Reached counts runs whose loss curve reached the target (only
	// meaningful when a target is configured).
	Reached int `json:"reached,omitempty"`
	// TotalTime summarizes run duration: virtual seconds for engine
	// members, wall-clock seconds for live ones.
	TotalTime Dist `json:"total_time"`
	// FinalLoss summarizes the final loss.
	FinalLoss Dist `json:"final_loss"`
	// BytesOnWire summarizes the traffic the run put on the (virtual or
	// real) network.
	BytesOnWire Dist `json:"bytes_on_wire"`
}

// Dist is a mean +/- sample standard deviation pair.
type Dist struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
}

func distOf(xs []float64) Dist {
	s := stats.Summarize(xs)
	return Dist{Mean: s.Mean, Std: s.Std}
}

// RunSuite executes a suite end to end: resolve to the explicit run list,
// run every member under the bounded-parallel driver, build the joint
// table, and (when OutDir is set) emit resolved-suite.json and suite.json
// next to the per-run outputs so the whole comparison is reproducible from
// one file.
func RunSuite(s *Suite, opt SuiteRunOptions) (*SuiteReport, error) {
	resolved, err := s.Resolve(opt.Quick)
	if err != nil {
		return nil, err
	}
	rep := &SuiteReport{Suite: resolved, Reports: make([]*Report, len(resolved.Runs))}
	memberOut := ""
	if opt.OutDir != "" {
		memberOut = filepath.Join(opt.OutDir, resolved.Name)
	}
	// Members are independent (disjoint seeds, resolved configs) and each
	// engine run is bitwise deterministic, so they execute concurrently and
	// land in run-list order; results are identical at any Par.
	errs := make([]error, len(resolved.Runs))
	engine.Concurrently(len(resolved.Runs), engine.ResolveParallelism(opt.Par), func(k int) {
		rep.Reports[k], errs[k] = Run(resolved.Runs[k].Manifest, RunOptions{OutDir: memberOut})
	})
	for k, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("suite %q: run %q: %w", resolved.Name, resolved.Runs[k].Manifest.Name, err)
		}
	}
	rep.Table = resolved.buildTable(rep.Reports)
	if opt.OutDir != "" {
		if err := rep.write(memberOut); err != nil {
			return nil, err
		}
		rep.Dir = memberOut
	}
	return rep, nil
}

// buildTable groups the member reports by arm (in first-appearance order)
// and summarizes each metric.
func (s *Suite) buildTable(reports []*Report) *SuiteTable {
	target := 0.0
	if s.Output != nil {
		target = s.Output.TargetLoss
	}
	table := &SuiteTable{Suite: s.Name, TargetLoss: target}
	type armAcc struct {
		runs                 []string
		times, losses, bytes []float64
		timeToLoss           []float64
		reached              int
	}
	var order []string
	acc := make(map[string]*armAcc)
	for k, mem := range s.Runs {
		a, ok := acc[mem.Arm]
		if !ok {
			a = &armAcc{}
			acc[mem.Arm] = a
			order = append(order, mem.Arm)
		}
		r := reports[k]
		a.runs = append(a.runs, mem.Manifest.Name)
		if r.Engine != nil {
			a.times = append(a.times, r.Engine.TotalTime)
			a.losses = append(a.losses, r.Engine.FinalLoss)
			a.bytes = append(a.bytes, float64(r.Engine.BytesSent))
			if target > 0 {
				if t, ok := timeToLoss(r.Engine.Curve, target); ok {
					a.timeToLoss = append(a.timeToLoss, t)
					a.reached++
				}
			}
		} else {
			a.times = append(a.times, r.Live.Elapsed.Seconds())
			a.losses = append(a.losses, r.Live.FinalLoss)
			a.bytes = append(a.bytes, float64(r.Live.BytesOnWire))
		}
	}
	for _, arm := range order {
		a := acc[arm]
		row := ArmSummary{
			Arm:         arm,
			N:           len(a.runs),
			Runs:        a.runs,
			TotalTime:   distOf(a.times),
			FinalLoss:   distOf(a.losses),
			BytesOnWire: distOf(a.bytes),
		}
		if target > 0 {
			row.Reached = a.reached
			if a.reached > 0 {
				d := distOf(a.timeToLoss)
				row.TimeToLoss = &d
			}
		}
		table.Arms = append(table.Arms, row)
	}
	return table
}

// timeToLoss finds the first curve sample at or below the target loss.
func timeToLoss(curve []engine.Point, target float64) (float64, bool) {
	for _, p := range curve {
		if p.Value <= target {
			return p.Time, true
		}
	}
	return 0, false
}

// write emits resolved-suite.json and suite.json under dir (already the
// suite's own directory; member runs have written their subdirectories).
func (rep *SuiteReport) write(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	raw, err := json.MarshalIndent(rep.Suite, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: marshal resolved suite: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "resolved-suite.json"), append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	raw, err = json.MarshalIndent(rep.Table, "", "  ")
	if err != nil {
		return fmt.Errorf("scenario: marshal suite table: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "suite.json"), append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("scenario: %w", err)
	}
	return nil
}

// WriteTable renders the joint table as aligned text: one row per arm,
// mean +/- stddev per metric.
func (t *SuiteTable) WriteTable(w io.Writer) error {
	if t.TargetLoss > 0 {
		if _, err := fmt.Fprintf(w, "suite %s (target loss %g):\n", t.Suite, t.TargetLoss); err != nil {
			return err
		}
	} else {
		if _, err := fmt.Fprintf(w, "suite %s:\n", t.Suite); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "  %-24s %3s  %-22s %-22s %-22s %s\n",
		"arm", "n", "time (s)", "final loss", "bytes on wire", "time-to-loss (s)"); err != nil {
		return err
	}
	for _, a := range t.Arms {
		ttl := "-"
		if t.TargetLoss > 0 {
			if a.TimeToLoss != nil {
				ttl = fmt.Sprintf("%s (%d/%d reached)", a.TimeToLoss.fmt(), a.Reached, a.N)
			} else {
				ttl = fmt.Sprintf("not reached (0/%d)", a.N)
			}
		}
		if _, err := fmt.Fprintf(w, "  %-24s %3d  %-22s %-22s %-22s %s\n",
			a.Arm, a.N, a.TotalTime.fmt(), a.FinalLoss.fmt(), a.BytesOnWire.fmt(), ttl); err != nil {
			return err
		}
	}
	return nil
}

func (d Dist) fmt() string {
	return fmt.Sprintf("%.4g +/- %.3g", d.Mean, d.Std)
}

// Summary returns a one-line digest of the suite run.
func (rep *SuiteReport) Summary() string {
	return fmt.Sprintf("%s: %d runs, %d arms", rep.Suite.Name, len(rep.Reports), len(rep.Table.Arms))
}
