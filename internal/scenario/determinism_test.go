package scenario

import (
	"testing"

	"netmax/internal/baselines"
	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

// flagConfig hand-assembles the engine configuration the way the examples
// and cmd flags historically did — the construction BuildEngine must match
// call-for-call. It mirrors netmax.ClusterConfig's eval-subset convention.
func flagConfig(spec nn.ModelSpec, ds data.Spec, workers, epochs int, seed int64, net *simnet.Network) *engine.Config {
	train, test := ds.Generate(seed)
	evalN := 400
	if evalN > train.Len() {
		evalN = train.Len()
	}
	idx := make([]int, evalN)
	for i := range idx {
		idx[i] = i
	}
	return &engine.Config{
		Spec:    spec,
		Part:    data.Uniform(train, workers, seed),
		Eval:    train.Slice(idx),
		Test:    test,
		Net:     net,
		LR:      0.1,
		Batch:   16,
		Epochs:  epochs,
		Seed:    seed,
		Overlap: true,
	}
}

// requireIdentical asserts two engine results are bitwise equal on every
// numeric field, including the full loss curve.
func requireIdentical(t *testing.T, name string, a, b *engine.Result) {
	t.Helper()
	if a.FinalLoss != b.FinalLoss {
		t.Fatalf("%s: FinalLoss %v vs %v", name, a.FinalLoss, b.FinalLoss)
	}
	if a.FinalAccuracy != b.FinalAccuracy {
		t.Fatalf("%s: FinalAccuracy %v vs %v", name, a.FinalAccuracy, b.FinalAccuracy)
	}
	if a.TotalTime != b.TotalTime {
		t.Fatalf("%s: TotalTime %v vs %v", name, a.TotalTime, b.TotalTime)
	}
	if a.GlobalSteps != b.GlobalSteps || a.Epochs != b.Epochs || a.BytesSent != b.BytesSent {
		t.Fatalf("%s: steps/epochs/bytes differ: %+v vs %+v", name, a, b)
	}
	if a.CompSecs != b.CompSecs || a.CommSecs != b.CommSecs {
		t.Fatalf("%s: cost decomposition differs", name)
	}
	if len(a.Curve) != len(b.Curve) {
		t.Fatalf("%s: curve lengths %d vs %d", name, len(a.Curve), len(b.Curve))
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("%s: curve[%d] = %+v vs %+v", name, i, a.Curve[i], b.Curve[i])
		}
	}
}

// TestManifestMatchesFlagPathBitwise is the scenario determinism gate: a
// nil-failure, nil-codec manifest must reproduce the hand-assembled flag
// path bitwise — same loss curve, same virtual clock, same traffic — for
// both the NetMax monitor loop and a monitor-free baseline, on both a
// static and the dynamic heterogeneous network.
func TestManifestMatchesFlagPathBitwise(t *testing.T) {
	const workers, epochs, seed = 4, 2, 1

	t.Run("netmax static", func(t *testing.T) {
		cfg := flagConfig(nn.SimMobileNet, data.SynthMNIST, workers, epochs, seed,
			simnet.NewStatic(simnet.PaperCluster(workers)))
		want := core.Run(cfg, core.Options{Ts: DefaultMonitorTs})

		m := &Manifest{
			Name: "gate-netmax-static", Model: "MobileNet", Dataset: "MNIST",
			Workers: workers, Epochs: epochs, Seed: seed,
			Network: &NetworkSpec{Kind: "static"},
		}
		rep, err := Run(m, RunOptions{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		requireIdentical(t, "netmax/static", want, rep.Engine)
	})

	t.Run("netmax heterogeneous", func(t *testing.T) {
		// The ClusterConfig path: dynamic slow link with the experiments
		// period over an effectively unbounded horizon, seeded by the run
		// seed — all defaults in the manifest path.
		cfg := flagConfig(nn.SimMobileNet, data.SynthMNIST, workers, epochs, seed,
			simnet.NewHeterogeneousPeriod(simnet.PaperCluster(workers), seed, DefaultHorizon, DefaultSlowPeriod))
		want := core.Run(cfg, core.Options{Ts: DefaultMonitorTs})

		m := &Manifest{
			Name: "gate-netmax-het", Model: "MobileNet", Dataset: "MNIST",
			Workers: workers, Epochs: epochs, Seed: seed,
		}
		rep, err := Run(m, RunOptions{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		requireIdentical(t, "netmax/heterogeneous", want, rep.Engine)
	})

	t.Run("adpsgd static", func(t *testing.T) {
		cfg := flagConfig(nn.SimMobileNet, data.SynthMNIST, workers, epochs, seed,
			simnet.NewStatic(simnet.PaperCluster(workers)))
		want := baselines.RunADPSGD(cfg)

		m := &Manifest{
			Name: "gate-adpsgd", Algorithm: "adpsgd", Model: "MobileNet", Dataset: "MNIST",
			Workers: workers, Epochs: epochs, Seed: seed,
			Network: &NetworkSpec{Kind: "static"},
		}
		rep, err := Run(m, RunOptions{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		requireIdentical(t, "adpsgd/static", want, rep.Engine)
	})

	t.Run("declarative failures", func(t *testing.T) {
		// A manifest failure block must build the same schedule as the
		// chained builder API: identical churn trajectories.
		mk := func() *engine.Config {
			return flagConfig(nn.SimMobileNet, data.SynthMNIST, workers, epochs, seed,
				simnet.NewStatic(simnet.PaperCluster(workers)))
		}
		cfg := mk()
		fs := simnet.NewFailureSchedule()
		fs.DetectSecs = 0.5
		fs.Crash(1, 2, 5).Hang(2, 1, 3)
		cfg.Failures = fs
		want := core.Run(cfg, core.Options{Ts: DefaultMonitorTs, StalePeriods: 2})

		m := &Manifest{
			Name: "gate-failures", Model: "MobileNet", Dataset: "MNIST",
			Workers: workers, Epochs: epochs, Seed: seed,
			Network: &NetworkSpec{Kind: "static"},
			NetMax:  &NetMaxSpec{StalePeriods: 2},
			Failures: &FailureSpec{
				DetectSecs: 0.5,
				Events: []FailureEvent{
					{Kind: "crash", Worker: 1, At: 2, Rejoin: 5},
					{Kind: "hang", Worker: 2, At: 1, Until: 3},
				},
			},
		}
		rep, err := Run(m, RunOptions{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		requireIdentical(t, "failures", want, rep.Engine)
	})

	t.Run("random churn", func(t *testing.T) {
		cfg := flagConfig(nn.SimMobileNet, data.SynthMNIST, workers, epochs, seed,
			simnet.NewStatic(simnet.PaperCluster(workers)))
		fs := simnet.NewRandomChurn(workers, seed, 50, 1, 3)
		fs.DetectSecs = 0.5
		cfg.Failures = fs
		want := baselines.RunADPSGD(cfg)

		m := &Manifest{
			Name: "gate-random-churn", Algorithm: "adpsgd", Model: "MobileNet", Dataset: "MNIST",
			Workers: workers, Epochs: epochs, Seed: seed,
			Network: &NetworkSpec{Kind: "static"},
			Failures: &FailureSpec{
				DetectSecs:  0.5,
				RandomChurn: &RandomChurnSpec{HorizonSecs: 50, CrashesPerWorker: 1, MeanDownSecs: 3},
			},
		}
		rep, err := Run(m, RunOptions{})
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		requireIdentical(t, "random-churn", want, rep.Engine)
	})
}
