package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"netmax/internal/baselines"
	"netmax/internal/codec"
	"netmax/internal/core"
	"netmax/internal/data"
	"netmax/internal/engine"
	"netmax/internal/live"
	"netmax/internal/nn"
	"netmax/internal/simnet"
	"netmax/internal/transport"
)

// BuildEngine translates an engine-runtime manifest into a ready-to-run
// engine.Config plus the algorithm runner that executes it. The manifest is
// resolved first, so callers may pass either raw or resolved manifests; the
// construction mirrors netmax.ClusterConfig exactly (same constructors,
// same argument order, same RNG consumption), which is what keeps the
// manifest path bitwise-identical to the hand-assembled one.
func (m *Manifest) BuildEngine() (*engine.Config, func(*engine.Config) *engine.Result, error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	r := m.Resolved()
	if r.Runtime != "engine" {
		return nil, nil, fmt.Errorf("scenario %q: BuildEngine on runtime %q", r.Name, r.Runtime)
	}
	spec, err := nn.SpecByName(r.Model)
	if err != nil {
		return nil, nil, err
	}
	ds, err := data.SpecByName(r.Dataset)
	if err != nil {
		return nil, nil, err
	}
	train, test := ds.Generate(r.Seed)
	part, err := r.buildPartition(train)
	if err != nil {
		return nil, nil, err
	}
	net, err := r.buildNetwork()
	if err != nil {
		return nil, nil, err
	}
	cdc, err := r.buildCodec()
	if err != nil {
		return nil, nil, err
	}
	failures, err := r.buildFailures()
	if err != nil {
		return nil, nil, err
	}
	evalN := 400
	if evalN > train.Len() {
		evalN = train.Len()
	}
	idx := make([]int, evalN)
	for i := range idx {
		idx[i] = i
	}
	cfg := &engine.Config{
		Spec:         spec,
		Part:         part,
		Eval:         train.Slice(idx),
		Test:         test,
		Net:          net,
		LR:           r.LR,
		Batch:        r.Batch,
		Epochs:       r.Epochs,
		Seed:         r.Seed,
		Overlap:      *r.Overlap,
		LRDecayEpoch: r.LRDecayEpoch,
		ComputeScale: r.buildComputeScale(),
		Parallelism:  r.Parallelism,
		Codec:        cdc,
		Failures:     failures,
	}
	run, err := r.engineRunner()
	if err != nil {
		return nil, nil, err
	}
	return cfg, run, nil
}

// engineRunner maps the manifest's algorithm name onto its runner.
func (r *Manifest) engineRunner() (func(*engine.Config) *engine.Result, error) {
	switch r.Algorithm {
	case "netmax":
		opts := r.coreOptions()
		return func(cfg *engine.Config) *engine.Result { return core.Run(cfg, opts) }, nil
	case "adpsgd-monitor":
		opts := r.coreOptions()
		return func(cfg *engine.Config) *engine.Result { return core.RunADPSGDMonitor(cfg, opts) }, nil
	case "adpsgd":
		return baselines.RunADPSGD, nil
	case "gossip":
		return baselines.RunGossip, nil
	case "saps":
		return baselines.RunSAPS, nil
	case "dlion":
		return baselines.RunDLion, nil
	case "hop":
		st := r.HopStaleness
		return func(cfg *engine.Config) *engine.Result { return baselines.RunHop(cfg, st) }, nil
	case "allreduce":
		return baselines.RunAllreduce, nil
	case "dpsgd":
		return baselines.RunSyncDPSGD, nil
	case "prague":
		return baselines.RunPrague, nil
	case "ps-sync":
		return baselines.RunPSSync, nil
	case "ps-async":
		return baselines.RunPSAsync, nil
	}
	return nil, fmt.Errorf("scenario %q: unknown algorithm %q", r.Name, r.Algorithm)
}

// coreOptions converts the resolved NetMax block into core.Options.
func (r *Manifest) coreOptions() core.Options {
	nm := r.NetMax
	if nm == nil {
		nm = &NetMaxSpec{TsSecs: DefaultMonitorTs}
	}
	return core.Options{
		Ts:            nm.TsSecs,
		Beta:          nm.Beta,
		PolicyRounds:  nm.PolicyRounds,
		Epsilon:       nm.Epsilon,
		UniformPolicy: nm.UniformPolicy,
		FixedBlend:    nm.FixedBlend,
		StalePeriods:  nm.StalePeriods,
	}
}

// buildTopology materializes the topology spec.
func (r *Manifest) buildTopology() (*simnet.Topology, error) {
	t := r.Topology
	switch t.Kind {
	case "paper-cluster":
		return simnet.PaperCluster(r.Workers), nil
	case "single-machine":
		return simnet.SingleMachine(r.Workers), nil
	case "ring":
		topo := simnet.SingleMachine(r.Workers)
		topo.Adj = simnet.Ring(r.Workers)
		return topo, nil
	case "cluster":
		return simnet.Cluster(t.NodesPerMachine), nil
	case "cross-region":
		// The cross-region network carries its own six-region topology.
		return nil, nil
	}
	return nil, fmt.Errorf("scenario %q: unknown topology kind %q", r.Name, t.Kind)
}

// buildNetwork materializes the network spec.
func (r *Manifest) buildNetwork() (*simnet.Network, error) {
	n := r.Network
	if n.Kind == "cross-region" {
		return simnet.NewCrossRegion(), nil
	}
	topo, err := r.buildTopology()
	if err != nil {
		return nil, err
	}
	seed := r.Seed
	if n.Seed != nil {
		seed = *n.Seed
	}
	switch n.Kind {
	case "heterogeneous":
		return simnet.NewHeterogeneousPeriod(topo, seed, n.HorizonSecs, n.PeriodSecs), nil
	case "homogeneous":
		return simnet.NewHomogeneous(topo), nil
	case "static":
		return simnet.NewStatic(topo), nil
	case "shuffled":
		return simnet.NewShuffledRates(topo, seed, n.HorizonSecs, n.PeriodSecs), nil
	}
	return nil, fmt.Errorf("scenario %q: unknown network kind %q", r.Name, n.Kind)
}

// buildPartition materializes the partition spec over the training set.
func (r *Manifest) buildPartition(train *data.Dataset) (*data.Partition, error) {
	p := r.Partition
	switch p.Kind {
	case "uniform":
		return data.Uniform(train, r.Workers, r.Seed), nil
	case "segments":
		return data.Segments(train, p.Segments, r.Seed), nil
	case "label-skew":
		return data.LabelSkew(train, p.LostLabels, r.Seed), nil
	}
	return nil, fmt.Errorf("scenario %q: unknown partition kind %q", r.Name, p.Kind)
}

// buildCodec materializes the codec spec; nil means no codec (the engine's
// uncompressed float32-on-the-wire bandwidth model).
func (r *Manifest) buildCodec() (codec.Codec, error) {
	c := r.Codec
	if c == nil {
		return nil, nil
	}
	if c.Name == "topk" {
		return codec.NewTopK(c.TopKFrac), nil
	}
	return codec.ByName(c.Name)
}

// buildComputeScale materializes the compute-heterogeneity distribution.
func (r *Manifest) buildComputeScale() []float64 {
	c := r.Compute
	if c == nil {
		return nil
	}
	switch c.Kind {
	case "explicit":
		return append([]float64(nil), c.Scale...)
	case "straggler":
		scale := make([]float64, r.Workers)
		for i := range scale {
			scale[i] = 1
		}
		scale[c.Worker] = c.Factor
		return scale
	case "linear":
		scale := make([]float64, r.Workers)
		for i := range scale {
			frac := 0.0
			if r.Workers > 1 {
				frac = float64(i) / float64(r.Workers-1)
			}
			scale[i] = c.Min + frac*(c.Max-c.Min)
		}
		return scale
	case "lognormal":
		seed := r.Seed
		if c.Seed != nil {
			seed = *c.Seed
		}
		rng := rand.New(rand.NewSource(seed))
		scale := make([]float64, r.Workers)
		for i := range scale {
			// Median 1: half the workers are faster than nominal, half
			// slower, with Sigma controlling the spread.
			scale[i] = math.Exp(rng.NormFloat64() * c.Sigma)
		}
		return scale
	}
	return nil
}

// buildFailures materializes the failure spec into a simnet schedule; a nil
// spec yields a nil schedule (the bitwise failure-free path).
func (r *Manifest) buildFailures() (*simnet.FailureSchedule, error) {
	f := r.Failures
	if f == nil {
		return nil, nil
	}
	s := simnet.NewFailureSchedule()
	s.DetectSecs = f.DetectSecs
	if rc := f.RandomChurn; rc != nil {
		seed := r.Seed
		if rc.Seed != nil {
			seed = *rc.Seed
		}
		churn := simnet.NewRandomChurn(r.Workers, seed, rc.HorizonSecs, rc.CrashesPerWorker, rc.MeanDownSecs)
		for _, ev := range churn.Events() {
			s.Crash(ev.Worker, ev.Start, ev.End)
		}
	}
	for _, ev := range f.Events {
		switch ev.Kind {
		case "crash":
			s.Crash(ev.Worker, ev.At, ev.Rejoin)
		case "hang":
			s.Hang(ev.Worker, ev.At, ev.Until)
		case "leave":
			s.Leave(ev.Worker, ev.At)
		case "blackout":
			s.Blackout(ev.A, ev.B, ev.At, ev.Until)
		default:
			return nil, fmt.Errorf("scenario %q: unknown failure kind %q", r.Name, ev.Kind)
		}
	}
	return s, nil
}

// BuildLive translates a live-runtime manifest into a live.Config plus a
// transport hub. The returned closer releases the hub's resources (a no-op
// for the in-process transport) and must be called after the run.
func (m *Manifest) BuildLive() (live.Config, live.Hub, func() error, error) {
	noop := func() error { return nil }
	if err := m.Validate(); err != nil {
		return live.Config{}, nil, noop, err
	}
	r := m.Resolved()
	if r.Runtime != "live" {
		return live.Config{}, nil, noop, fmt.Errorf("scenario %q: BuildLive on runtime %q", r.Name, r.Runtime)
	}
	spec, err := nn.SpecByName(r.Model)
	if err != nil {
		return live.Config{}, nil, noop, err
	}
	ds, err := data.SpecByName(r.Dataset)
	if err != nil {
		return live.Config{}, nil, noop, err
	}
	train, test := ds.Generate(r.Seed)
	part, err := r.buildPartition(train)
	if err != nil {
		return live.Config{}, nil, noop, err
	}
	cdc, err := r.buildCodec()
	if err != nil {
		return live.Config{}, nil, noop, err
	}
	l := r.Live
	cfg := live.Config{
		Spec:         spec,
		Part:         part,
		Test:         test,
		LR:           r.LR,
		Batch:        r.Batch,
		Seed:         r.Seed,
		Ts:           time.Duration(l.TsMillis) * time.Millisecond,
		Beta:         l.Beta,
		Duration:     time.Duration(l.DurationSecs * float64(time.Second)),
		Iterations:   l.Iterations,
		Uniform:      l.Uniform,
		Codec:        cdc,
		StalePeriods: l.StalePeriods,
	}
	switch {
	case l.PullTimeoutSecs < 0:
		cfg.PullTimeout = -1
	default:
		cfg.PullTimeout = time.Duration(l.PullTimeoutSecs * float64(time.Second))
	}
	for _, ev := range l.Churn {
		cfg.Churn = append(cfg.Churn, live.ChurnEvent{
			Worker: ev.Worker,
			At:     time.Duration(ev.AtSecs * float64(time.Second)),
			Rejoin: time.Duration(ev.RejoinSecs * float64(time.Second)),
		})
	}
	if l.Transport == "tcp" {
		hub, err := transport.NewTCPHub()
		if err != nil {
			return live.Config{}, nil, noop, fmt.Errorf("scenario %q: tcp hub: %w", r.Name, err)
		}
		return cfg, hub, hub.Close, nil
	}
	ln := transport.NewLocalNet()
	if lat := l.Latency; lat != nil {
		colocated, intra, inter := lat.Colocated, lat.IntraMillis, lat.InterMillis
		ln.Latency = func(i, j int, _ time.Time) time.Duration {
			if (i < colocated) == (j < colocated) {
				return time.Duration(intra * float64(time.Millisecond))
			}
			return time.Duration(inter * float64(time.Millisecond))
		}
	}
	return cfg, ln, noop, nil
}
