// Package scenario makes training scenarios data instead of code.
//
// Historically every evaluation scenario in this repository — a paper
// figure, a churn sweep, a compression matrix, a cross-region WAN run — was
// hand-assembled from flag soup and per-example main functions. A scenario
// manifest is a single JSON document that fully describes a run: the
// runtime (discrete-event engine or live process group), the algorithm and
// its options, the topology and network dynamics, worker count, data
// partitioning, compute heterogeneity, failure schedule, wire codec, seeds,
// host parallelism and output selections.
//
// The lifecycle is
//
//	m, err := scenario.Load("scenarios/churn-crash-rejoin.json") // parse + validate
//	rep, err := scenario.Run(m, scenario.RunOptions{OutDir: "runs"})
//
// Load rejects unknown fields (a typoed knob must fail loudly, not silently
// run the default) and Validate performs cross-field checks (a crash must
// precede its rejoin, a cluster layout must sum to the worker count, ...).
// Resolved returns the manifest with every default made explicit; Run
// writes that resolved manifest next to the run's results, so any number in
// any table is reproducible from one file. A manifest that injects no
// failures and no codec builds a configuration bitwise-identical to the
// equivalent hand-assembled one — the determinism gate in
// determinism_test.go enforces it.
package scenario

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"netmax/internal/codec"
	"netmax/internal/data"
	"netmax/internal/nn"
	"netmax/internal/simnet"
)

// Manifest is the declarative description of one training run.
//
// Zero values mean "use the documented default"; Resolved returns a copy
// with every default made explicit. Engine-runtime manifests may set
// Topology, Network, Partition, Compute, Failures and NetMax; live-runtime
// manifests use Live instead (plus Partition and Codec, which both runtimes
// share).
type Manifest struct {
	// Name identifies the scenario; it becomes the output directory name,
	// so it must be non-empty and contain no path separators.
	Name string `json:"name"`
	// Description is free-form documentation shown by `netmax-scenario list`.
	Description string `json:"description,omitempty"`
	// Runtime selects the execution substrate: "engine" (default) for the
	// deterministic discrete-event simulation, "live" for the concurrent
	// goroutine process group.
	Runtime string `json:"runtime,omitempty"`
	// Algorithm names the training approach. Engine runtime accepts
	// netmax (default), adpsgd, adpsgd-monitor, gossip, saps, dlion, hop,
	// allreduce, dpsgd, prague, ps-sync, ps-async. Live runtime runs
	// NetMax (or uniform AD-PSGD-style selection via live.uniform).
	Algorithm string `json:"algorithm,omitempty"`
	// HopStaleness is Hop's staleness bound (algorithm "hop" only;
	// 0 selects the baseline default).
	HopStaleness int `json:"hop_staleness,omitempty"`
	// Model is an nn model-zoo name: MobileNet, ResNet18 (default),
	// ResNet50, VGG19, GoogLeNet.
	Model string `json:"model,omitempty"`
	// Dataset is a synthetic dataset name: MNIST, CIFAR10 (default),
	// CIFAR100, TinyImageNet, ImageNet.
	Dataset string `json:"dataset,omitempty"`
	// Workers is the node count (default 8 for engine, 4 for live).
	Workers int `json:"workers,omitempty"`
	// Seed drives dataset generation, model init, partitioning, network
	// dynamics and every stochastic decision (default 1).
	Seed int64 `json:"seed,omitempty"`

	// Epochs bounds an engine run in passes over the union of shards
	// (default 8). Engine-only; live runs bound by iterations/duration.
	Epochs int `json:"epochs,omitempty"`
	// Batch is the per-segment batch size (default 16).
	Batch int `json:"batch,omitempty"`
	// LR is the SGD learning rate (default 0.1).
	LR float64 `json:"lr,omitempty"`
	// LRDecayEpoch divides the learning rate by 10 after that epoch
	// completes; 0 (default) disables decay. Engine-only.
	LRDecayEpoch int `json:"lr_decay_epoch,omitempty"`
	// Overlap enables Algorithm 2's compute/communication overlap
	// (default true). Engine-only.
	Overlap *bool `json:"overlap,omitempty"`
	// Parallelism bounds host-level concurrency: 0 (default) one worker
	// per CPU, 1 serial. Results are bitwise identical at any setting.
	// Engine-only.
	Parallelism int `json:"parallelism,omitempty"`

	Topology  *TopologySpec  `json:"topology,omitempty"`
	Network   *NetworkSpec   `json:"network,omitempty"`
	Partition *PartitionSpec `json:"partition,omitempty"`
	Compute   *ComputeSpec   `json:"compute,omitempty"`
	Codec     *CodecSpec     `json:"codec,omitempty"`
	Failures  *FailureSpec   `json:"failures,omitempty"`
	NetMax    *NetMaxSpec    `json:"netmax,omitempty"`
	Live      *LiveSpec      `json:"live,omitempty"`
	Output    *OutputSpec    `json:"output,omitempty"`
	Quick     *QuickSpec     `json:"quick,omitempty"`
}

// TopologySpec places workers onto machines. Engine-only.
type TopologySpec struct {
	// Kind: "paper-cluster" (default; the paper's Section V-A placement),
	// "single-machine", "ring", "cluster" (explicit NodesPerMachine), or
	// "cross-region" (implied by — and only valid with — the cross-region
	// network).
	Kind string `json:"kind"`
	// NodesPerMachine gives the per-machine worker counts for kind
	// "cluster"; entries must be positive and sum to the worker count.
	NodesPerMachine []int `json:"nodes_per_machine,omitempty"`
}

// NetworkSpec selects the link-rate model and its dynamics. Engine-only.
type NetworkSpec struct {
	// Kind: "heterogeneous" (default; cluster rates plus the moving 2-100x
	// slow link), "homogeneous" (10 Gbps virtual switch), "static"
	// (cluster rates, no dynamics), "shuffled" (a random third of links
	// congested, re-drawn every period), or "cross-region" (the Appendix G
	// six-region WAN).
	Kind string `json:"kind"`
	// Seed drives the dynamic schedules; nil uses the manifest seed.
	Seed *int64 `json:"seed,omitempty"`
	// PeriodSecs is the slow-link relocation (or shuffle) period for the
	// dynamic kinds; 0 selects the experiments default (6 virtual
	// seconds, the paper's 300s over the 50x time scale).
	PeriodSecs float64 `json:"period_secs,omitempty"`
	// HorizonSecs is how much virtual time the dynamic schedule covers;
	// 0 selects 1e7 (effectively unbounded).
	HorizonSecs float64 `json:"horizon_secs,omitempty"`
}

// PartitionSpec assigns data shards to workers.
type PartitionSpec struct {
	// Kind: "uniform" (default), "segments" (the Section V-F non-uniform
	// scheme; batch scales with segment count), or "label-skew" (each
	// worker loses whole classes).
	Kind string `json:"kind"`
	// Segments lists each worker's relative data weight (kind "segments").
	Segments []int `json:"segments,omitempty"`
	// LostLabels lists, per worker, the class labels it never sees
	// (kind "label-skew").
	LostLabels [][]int `json:"lost_labels,omitempty"`
	// Preset expands to a paper table: "paper-8"/"paper-16" (Section V-F
	// segment layouts), "table-4" (the 8-worker MNIST skew), "table-7"
	// (the 6-region skew). Resolved replaces the preset with the concrete
	// Segments/LostLabels.
	Preset string `json:"preset,omitempty"`
}

// ComputeSpec describes compute heterogeneity: per-worker multipliers on
// gradient-computation time. Engine-only.
type ComputeSpec struct {
	// Kind: "explicit" (Scale given verbatim), "straggler" (one worker
	// Factor-times slower), "linear" (a Min..Max ramp across workers), or
	// "lognormal" (deterministic lognormal draws with the given Sigma).
	Kind string `json:"kind"`
	// Scale is the per-worker multiplier vector for kind "explicit".
	Scale []float64 `json:"scale,omitempty"`
	// Worker and Factor configure kind "straggler".
	Worker int     `json:"worker,omitempty"`
	Factor float64 `json:"factor,omitempty"`
	// Min and Max configure kind "linear": worker i's multiplier ramps
	// linearly from Min (worker 0) to Max (last worker).
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// Sigma and Seed configure kind "lognormal"; nil Seed uses the
	// manifest seed.
	Sigma float64 `json:"sigma,omitempty"`
	Seed  *int64  `json:"seed,omitempty"`
}

// CodecSpec selects the wire compression codec for model pulls.
type CodecSpec struct {
	// Name: "raw", "float32", or "topk".
	Name string `json:"name"`
	// TopKFrac is the fraction of coordinates the topk codec keeps
	// (0 selects the codec default; only valid with "topk").
	TopKFrac float64 `json:"topk_frac,omitempty"`
}

// FailureSpec is the declarative form of simnet.FailureSchedule. Engine-only.
type FailureSpec struct {
	// DetectSecs is the simulated pull deadline charged for a pull at an
	// unresponsive peer; 0 selects simnet.DefaultDetectSecs.
	DetectSecs float64 `json:"detect_secs,omitempty"`
	// Events lists the scheduled failures.
	Events []FailureEvent `json:"events,omitempty"`
	// RandomChurn adds a deterministic random crash schedule on top of
	// Events.
	RandomChurn *RandomChurnSpec `json:"random_churn,omitempty"`
}

// FailureEvent is one scheduled churn event on the virtual clock.
type FailureEvent struct {
	// Kind: "crash" (Worker, At, Rejoin), "hang" (Worker, At, Until),
	// "leave" (Worker, At), or "blackout" (A, B, At, Until).
	Kind   string  `json:"kind"`
	Worker int     `json:"worker,omitempty"`
	A      int     `json:"a,omitempty"`
	B      int     `json:"b,omitempty"`
	At     float64 `json:"at"`
	Until  float64 `json:"until,omitempty"`
	Rejoin float64 `json:"rejoin,omitempty"`
}

// RandomChurnSpec parameterizes simnet.NewRandomChurn.
type RandomChurnSpec struct {
	// Seed drives the schedule; nil uses the manifest seed.
	Seed *int64 `json:"seed,omitempty"`
	// HorizonSecs is the virtual-time window the churn covers.
	HorizonSecs float64 `json:"horizon_secs"`
	// CrashesPerWorker is the expected crash count per worker.
	CrashesPerWorker float64 `json:"crashes_per_worker"`
	// MeanDownSecs is the mean downtime per crash.
	MeanDownSecs float64 `json:"mean_down_secs"`
}

// NetMaxSpec tunes the NetMax monitor/policy loop (algorithms "netmax" and
// "adpsgd-monitor" only). Engine-only; the live runtime's knobs are in
// LiveSpec.
type NetMaxSpec struct {
	// TsSecs is the Network Monitor period in virtual seconds (default
	// 2.4, the paper's 120s over the 50x time scale).
	TsSecs float64 `json:"ts_secs,omitempty"`
	// Beta is the EMA smoothing factor (default 0.5).
	Beta float64 `json:"beta,omitempty"`
	// PolicyRounds sets Algorithm 3's K and R grids (default 10).
	PolicyRounds int `json:"policy_rounds,omitempty"`
	// Epsilon is the Eq. 9 convergence target (default 0.01).
	Epsilon float64 `json:"epsilon,omitempty"`
	// UniformPolicy disables the adaptive policy (the uniform ablation).
	UniformPolicy bool `json:"uniform_policy,omitempty"`
	// FixedBlend replaces the 1/p-scaled consensus weight with plain
	// averaging (only meaningful for "netmax"; "adpsgd-monitor" implies it).
	FixedBlend bool `json:"fixed_blend,omitempty"`
	// StalePeriods enables monitor liveness eviction (0 disables — the
	// right setting for failure-free runs).
	StalePeriods int `json:"stale_periods,omitempty"`
}

// LiveSpec configures the live (goroutine / TCP) runtime.
type LiveSpec struct {
	// Transport: "local" (default; in-process with injectable latency) or
	// "tcp" (loopback sockets speaking the binary wire protocol).
	Transport string `json:"transport,omitempty"`
	// TsMillis is the monitor's wall-clock policy period (default 500).
	TsMillis int `json:"ts_millis,omitempty"`
	// DurationSecs bounds the run in wall-clock seconds; 0 relies on
	// Iterations.
	DurationSecs float64 `json:"duration_secs,omitempty"`
	// Iterations bounds per-worker iterations; 0 relies on DurationSecs.
	Iterations int `json:"iterations,omitempty"`
	// PullTimeoutSecs bounds every model pull and monitor exchange;
	// 0 selects the 2s default, negative disables deadlines.
	PullTimeoutSecs float64 `json:"pull_timeout_secs,omitempty"`
	// StalePeriods configures monitor liveness eviction; 0 selects the
	// default of 3, negative disables.
	StalePeriods int `json:"stale_periods,omitempty"`
	// Uniform disables the adaptive policy (AD-PSGD-style selection).
	Uniform bool `json:"uniform,omitempty"`
	// Beta is the EMA smoothing factor (default 0.5).
	Beta float64 `json:"beta,omitempty"`
	// Latency injects artificial latency on the local transport.
	Latency *LatencySpec `json:"latency,omitempty"`
	// Churn schedules wall-clock crash/rejoin events.
	Churn []LiveChurnEvent `json:"churn,omitempty"`
}

// LatencySpec emulates a two-tier network on the in-process transport: the
// first Colocated workers share fast links; every other pair is slow.
type LatencySpec struct {
	// Colocated is how many leading workers count as co-located.
	Colocated int `json:"colocated"`
	// IntraMillis is the latency between co-located workers (and between
	// non-co-located ones — the "same side" rule), InterMillis across.
	IntraMillis float64 `json:"intra_millis"`
	InterMillis float64 `json:"inter_millis"`
}

// LiveChurnEvent schedules one wall-clock crash; RejoinSecs at or before
// AtSecs means the worker leaves permanently.
type LiveChurnEvent struct {
	Worker     int     `json:"worker"`
	AtSecs     float64 `json:"at_secs"`
	RejoinSecs float64 `json:"rejoin_secs,omitempty"`
}

// OutputSpec selects what a run writes next to its resolved manifest.
type OutputSpec struct {
	// Curves also writes the loss curve as CSV (engine runtime).
	Curves bool `json:"curves,omitempty"`
}

// QuickSpec lists overrides applied when a run is invoked with -quick:
// fields left zero keep the manifest's full-scale values.
type QuickSpec struct {
	Workers      int     `json:"workers,omitempty"`
	Epochs       int     `json:"epochs,omitempty"`
	Iterations   int     `json:"iterations,omitempty"`
	DurationSecs float64 `json:"duration_secs,omitempty"`
}

// Default values made explicit by Resolved.
const (
	DefaultRuntime     = "engine"
	DefaultAlgorithm   = "netmax"
	DefaultModel       = "ResNet18"
	DefaultDataset     = "CIFAR10"
	DefaultWorkers     = 8
	DefaultLiveWorkers = 4
	DefaultSeed        = 1
	DefaultEpochs      = 8
	DefaultBatch       = 16
	DefaultLR          = 0.1
	// DefaultMonitorTs is the NetMax monitor period in virtual seconds:
	// the paper's 120s over the evaluation's 50x time scale (the same
	// constant as experiments.MonitorTs, duplicated to keep this package
	// off the experiment registry).
	DefaultMonitorTs = 2.4
	// DefaultSlowPeriod is the slow-link relocation period: the paper's
	// 300s over the 50x time scale (= experiments.SlowPeriod).
	DefaultSlowPeriod = 6.0
	// DefaultHorizon is the virtual-time span dynamic network schedules
	// cover; effectively unbounded.
	DefaultHorizon     = 1e7
	DefaultLiveTsMs    = 500
	DefaultPullTimeout = 2.0
	DefaultLiveStale   = 3
)

// Parse decodes a manifest from JSON, rejecting unknown fields, and
// validates it.
func Parse(raw []byte) (*Manifest, error) {
	dec := json.NewDecoder(strings.NewReader(string(raw)))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	// Trailing garbage after the manifest object is as much a mistake as
	// an unknown field.
	if dec.More() {
		return nil, fmt.Errorf("scenario: parse: trailing data after manifest object")
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// Load reads, parses and validates a manifest file.
func Load(path string) (*Manifest, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	m, err := Parse(raw)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil
}

// clone deep-copies a manifest through JSON (the schema is pure data).
func (m *Manifest) clone() *Manifest {
	raw, err := json.Marshal(m)
	if err != nil {
		panic(fmt.Sprintf("scenario: clone marshal: %v", err))
	}
	var out Manifest
	if err := json.Unmarshal(raw, &out); err != nil {
		panic(fmt.Sprintf("scenario: clone unmarshal: %v", err))
	}
	return &out
}

func boolPtr(b bool) *bool  { return &b }
func i64Ptr(v int64) *int64 { return &v }
func orStr(v, d string) string {
	if v == "" {
		return d
	}
	return v
}

// Resolved returns a copy of the manifest with every default made explicit.
// Running the resolved manifest builds a configuration identical to running
// the original, and resolving is idempotent: Resolved(Resolved(m)) equals
// Resolved(m), and a resolved manifest survives a marshal/parse round trip
// unchanged (the fixed point the round-trip test enforces).
func (m *Manifest) Resolved() *Manifest {
	r := m.clone()
	r.Runtime = orStr(r.Runtime, DefaultRuntime)
	r.Algorithm = orStr(r.Algorithm, defaultAlgorithm(r.Runtime))
	r.Model = orStr(r.Model, DefaultModel)
	r.Dataset = orStr(r.Dataset, DefaultDataset)
	if r.Seed == 0 {
		r.Seed = DefaultSeed
	}
	if r.Workers == 0 {
		if r.Runtime == "live" {
			r.Workers = DefaultLiveWorkers
		} else {
			r.Workers = DefaultWorkers
		}
	}
	if r.Batch == 0 {
		r.Batch = DefaultBatch
	}
	if r.LR == 0 {
		r.LR = DefaultLR
	}
	if r.Partition == nil {
		r.Partition = &PartitionSpec{}
	}
	r.Partition.Kind = orStr(r.Partition.Kind, "uniform")
	expandPreset(r.Partition)
	if r.Codec != nil && r.Codec.Name == "topk" && r.Codec.TopKFrac == 0 {
		r.Codec.TopKFrac = codec.DefaultTopKFrac
	}

	switch r.Runtime {
	case "live":
		if r.Live == nil {
			r.Live = &LiveSpec{}
		}
		l := r.Live
		l.Transport = orStr(l.Transport, "local")
		if l.TsMillis == 0 {
			l.TsMillis = DefaultLiveTsMs
		}
		if l.PullTimeoutSecs == 0 {
			l.PullTimeoutSecs = DefaultPullTimeout
		}
		if l.StalePeriods == 0 {
			l.StalePeriods = DefaultLiveStale
		}
		if l.Beta == 0 {
			l.Beta = 0.5
		}
	default: // engine
		if r.Epochs == 0 {
			r.Epochs = DefaultEpochs
		}
		if r.Overlap == nil {
			r.Overlap = boolPtr(true)
		}
		if r.Network == nil {
			r.Network = &NetworkSpec{}
		}
		r.Network.Kind = orStr(r.Network.Kind, "heterogeneous")
		switch r.Network.Kind {
		case "heterogeneous", "shuffled":
			if r.Network.Seed == nil {
				r.Network.Seed = i64Ptr(r.Seed)
			}
			if r.Network.PeriodSecs == 0 {
				r.Network.PeriodSecs = DefaultSlowPeriod
			}
			if r.Network.HorizonSecs == 0 {
				r.Network.HorizonSecs = DefaultHorizon
			}
		}
		if r.Topology == nil {
			r.Topology = &TopologySpec{}
		}
		if r.Topology.Kind == "" {
			if r.Network.Kind == "cross-region" {
				r.Topology.Kind = "cross-region"
			} else {
				r.Topology.Kind = "paper-cluster"
			}
		}
		if r.Failures != nil {
			if r.Failures.DetectSecs == 0 {
				r.Failures.DetectSecs = simnet.DefaultDetectSecs
			}
			if rc := r.Failures.RandomChurn; rc != nil && rc.Seed == nil {
				rc.Seed = i64Ptr(r.Seed)
			}
		}
		if r.Compute != nil && r.Compute.Kind == "lognormal" && r.Compute.Seed == nil {
			r.Compute.Seed = i64Ptr(r.Seed)
		}
		if usesMonitor(r.Algorithm) {
			if r.NetMax == nil {
				r.NetMax = &NetMaxSpec{}
			}
			nm := r.NetMax
			if nm.TsSecs == 0 {
				nm.TsSecs = DefaultMonitorTs
			}
			if nm.Beta == 0 {
				nm.Beta = 0.5
			}
			if nm.PolicyRounds == 0 {
				nm.PolicyRounds = 10
			}
			if nm.Epsilon == 0 {
				nm.Epsilon = 0.01
			}
		}
	}
	return r
}

// ApplyQuick returns a copy with the manifest's quick overrides applied and
// the Quick block cleared, so the resolved form of a quick run stands alone
// as a reproducible description of what actually ran. Manifests without a
// Quick block are returned unchanged (already their own quick form).
func (m *Manifest) ApplyQuick() *Manifest {
	if m.Quick == nil {
		return m
	}
	r := m.clone()
	q := r.Quick
	r.Quick = nil
	if q.Workers > 0 {
		r.Workers = q.Workers
	}
	if q.Epochs > 0 {
		r.Epochs = q.Epochs
	}
	if r.Live != nil || r.Runtime == "live" {
		if r.Live == nil {
			r.Live = &LiveSpec{}
		}
		if q.Iterations > 0 {
			r.Live.Iterations = q.Iterations
			r.Live.DurationSecs = 0
		}
		if q.DurationSecs > 0 {
			r.Live.DurationSecs = q.DurationSecs
			if q.Iterations == 0 {
				r.Live.Iterations = 0
			}
		}
	}
	return r
}

func defaultAlgorithm(runtime string) string {
	_ = runtime
	return DefaultAlgorithm
}

// usesMonitor reports whether the algorithm consumes the NetMax spec.
func usesMonitor(algo string) bool {
	return algo == "netmax" || algo == "adpsgd-monitor"
}

var engineAlgorithms = []string{
	"netmax", "adpsgd", "adpsgd-monitor", "gossip", "saps", "dlion",
	"hop", "allreduce", "dpsgd", "prague", "ps-sync", "ps-async",
}

func knownEngineAlgorithm(a string) bool {
	for _, k := range engineAlgorithms {
		if a == k {
			return true
		}
	}
	return false
}

// expandPreset replaces a partition preset with its concrete table.
func expandPreset(p *PartitionSpec) {
	switch p.Preset {
	case "paper-8":
		p.Kind, p.Segments = "segments", data.PaperSegments8()
	case "paper-16":
		p.Kind, p.Segments = "segments", data.PaperSegments16()
	case "table-4":
		p.Kind, p.LostLabels = "label-skew", data.TableIVSkew()
	case "table-7":
		p.Kind, p.LostLabels = "label-skew", data.TableVIISkew()
	default:
		return
	}
	p.Preset = ""
}

// errorList collects validation problems so a malformed manifest reports
// everything wrong with it at once.
type errorList struct {
	name  string
	probs []string
}

func (e *errorList) addf(format string, args ...interface{}) {
	e.probs = append(e.probs, fmt.Sprintf(format, args...))
}

func (e *errorList) err() error {
	if len(e.probs) == 0 {
		return nil
	}
	return fmt.Errorf("scenario %q: %s", e.name, strings.Join(e.probs, "; "))
}

// Validate checks the manifest for structural and cross-field consistency.
// Validation operates on the resolved view, so a manifest is valid exactly
// when its resolved form is runnable; the quick overrides are checked too.
func (m *Manifest) Validate() error {
	if err := m.validateOne(); err != nil {
		return err
	}
	if m.Quick != nil {
		if err := m.ApplyQuick().validateOne(); err != nil {
			return fmt.Errorf("%w (with quick overrides applied)", err)
		}
	}
	return nil
}

func (m *Manifest) validateOne() error {
	e := &errorList{name: m.Name}
	if m.Name == "" {
		e.addf("name must be non-empty")
	}
	if strings.ContainsAny(m.Name, "/\\") {
		e.addf("name must not contain path separators")
	}
	switch m.Runtime {
	case "", "engine", "live":
	default:
		e.addf("unknown runtime %q (want engine or live)", m.Runtime)
		return e.err()
	}
	r := m.Resolved()
	if _, err := nn.SpecByName(r.Model); err != nil {
		e.addf("unknown model %q", r.Model)
	}
	if _, err := data.SpecByName(r.Dataset); err != nil {
		e.addf("unknown dataset %q", r.Dataset)
	}
	if r.Workers < 2 {
		e.addf("workers must be >= 2, got %d", r.Workers)
	}
	if r.Batch < 1 {
		e.addf("batch must be >= 1, got %d", r.Batch)
	}
	if r.LR <= 0 {
		e.addf("lr must be positive, got %g", r.LR)
	}
	if r.Parallelism < 0 {
		e.addf("parallelism must be >= 0, got %d", r.Parallelism)
	}
	if r.HopStaleness < 0 {
		e.addf("hop_staleness must be >= 0, got %d", r.HopStaleness)
	}
	if r.HopStaleness > 0 && r.Algorithm != "hop" {
		e.addf("hop_staleness is only valid with algorithm \"hop\" (got %q)", r.Algorithm)
	}
	if q := m.Quick; q != nil {
		if q.Workers < 0 {
			e.addf("quick.workers must be >= 0, got %d", q.Workers)
		}
		if q.Epochs < 0 {
			e.addf("quick.epochs must be >= 0, got %d", q.Epochs)
		}
		if q.Iterations < 0 {
			e.addf("quick.iterations must be >= 0, got %d", q.Iterations)
		}
		if q.DurationSecs < 0 {
			e.addf("quick.duration_secs must be >= 0, got %g", q.DurationSecs)
		}
	}
	validatePartition(e, r)
	validateCodec(e, r)
	if r.Runtime == "live" {
		validateLive(e, m, r)
	} else {
		validateEngine(e, m, r)
	}
	return e.err()
}

func validatePartition(e *errorList, r *Manifest) {
	p := r.Partition
	if p.Preset != "" {
		e.addf("unknown partition preset %q (want paper-8, paper-16, table-4 or table-7)", p.Preset)
		return
	}
	switch p.Kind {
	case "uniform":
		if len(p.Segments) > 0 || len(p.LostLabels) > 0 {
			e.addf("uniform partition takes no segments or lost_labels")
		}
	case "segments":
		if len(p.Segments) != r.Workers {
			e.addf("partition segments has %d entries, want one per worker (%d)", len(p.Segments), r.Workers)
		}
		for i, s := range p.Segments {
			if s <= 0 {
				e.addf("partition segment %d must be positive, got %d", i, s)
			}
		}
	case "label-skew":
		if len(p.LostLabels) != r.Workers {
			e.addf("partition lost_labels has %d entries, want one per worker (%d)", len(p.LostLabels), r.Workers)
		}
		if ds, err := data.SpecByName(r.Dataset); err == nil {
			for w, lost := range p.LostLabels {
				for _, l := range lost {
					if l < 0 || l >= ds.Classes {
						e.addf("partition lost_labels[%d] names class %d outside %s's %d classes", w, l, r.Dataset, ds.Classes)
					}
				}
			}
		}
	default:
		e.addf("unknown partition kind %q (want uniform, segments or label-skew)", p.Kind)
	}
}

func validateCodec(e *errorList, r *Manifest) {
	c := r.Codec
	if c == nil {
		return
	}
	switch c.Name {
	case "raw", "float32":
		if c.TopKFrac != 0 {
			e.addf("topk_frac is only valid with the topk codec")
		}
	case "topk":
		if c.TopKFrac <= 0 || c.TopKFrac > 1 {
			e.addf("topk_frac must be in (0, 1], got %g", c.TopKFrac)
		}
	default:
		e.addf("unknown codec %q (want %s)", c.Name, strings.Join(codec.Names(), ", "))
	}
}

func validateEngine(e *errorList, m, r *Manifest) {
	if m.Live != nil {
		e.addf("live block is only valid with runtime \"live\"")
	}
	if !knownEngineAlgorithm(r.Algorithm) {
		e.addf("unknown algorithm %q (want one of %s)", r.Algorithm, strings.Join(engineAlgorithms, ", "))
	}
	if r.NetMax != nil && !usesMonitor(r.Algorithm) {
		e.addf("netmax block is only valid with algorithms netmax and adpsgd-monitor (got %q)", r.Algorithm)
	}
	if r.Epochs < 1 {
		e.addf("epochs must be >= 1, got %d", r.Epochs)
	}
	if r.LRDecayEpoch < 0 {
		e.addf("lr_decay_epoch must be >= 0, got %d", r.LRDecayEpoch)
	}
	validateTopologyNetwork(e, r)
	validateCompute(e, r)
	validateFailures(e, r)
	if nm := r.NetMax; nm != nil {
		if nm.TsSecs <= 0 {
			e.addf("netmax.ts_secs must be positive, got %g", nm.TsSecs)
		}
		if nm.Beta <= 0 || nm.Beta >= 1 {
			e.addf("netmax.beta must be in (0, 1), got %g", nm.Beta)
		}
		if nm.PolicyRounds < 1 {
			e.addf("netmax.policy_rounds must be >= 1, got %d", nm.PolicyRounds)
		}
		if nm.Epsilon <= 0 {
			e.addf("netmax.epsilon must be positive, got %g", nm.Epsilon)
		}
		if nm.StalePeriods < 0 {
			e.addf("netmax.stale_periods must be >= 0, got %d", nm.StalePeriods)
		}
		if nm.FixedBlend && r.Algorithm == "adpsgd-monitor" {
			e.addf("netmax.fixed_blend is implied by algorithm adpsgd-monitor; drop it")
		}
	}
}

func validateTopologyNetwork(e *errorList, r *Manifest) {
	t, n := r.Topology, r.Network
	switch n.Kind {
	case "heterogeneous", "shuffled":
		if n.PeriodSecs <= 0 {
			e.addf("network.period_secs must be positive, got %g", n.PeriodSecs)
		}
		if n.HorizonSecs <= 0 {
			e.addf("network.horizon_secs must be positive, got %g", n.HorizonSecs)
		}
	case "homogeneous", "static":
		if n.PeriodSecs != 0 || n.HorizonSecs != 0 || n.Seed != nil {
			e.addf("network kind %q has no dynamics: drop period_secs/horizon_secs/seed", n.Kind)
		}
	case "cross-region":
		if r.Workers != len(simnet.Regions) {
			e.addf("cross-region network fixes workers to %d regions, got %d", len(simnet.Regions), r.Workers)
		}
		if t.Kind != "cross-region" {
			e.addf("cross-region network implies cross-region topology, got %q", t.Kind)
		}
	default:
		e.addf("unknown network kind %q (want heterogeneous, homogeneous, static, shuffled or cross-region)", n.Kind)
	}
	switch t.Kind {
	case "paper-cluster", "single-machine", "ring":
		if len(t.NodesPerMachine) > 0 {
			e.addf("topology kind %q takes no nodes_per_machine", t.Kind)
		}
	case "cluster":
		if len(t.NodesPerMachine) == 0 {
			e.addf("topology kind cluster requires nodes_per_machine")
		}
		sum := 0
		for i, c := range t.NodesPerMachine {
			if c <= 0 {
				e.addf("nodes_per_machine[%d] must be positive, got %d", i, c)
			}
			sum += c
		}
		if sum != r.Workers && sum > 0 {
			e.addf("nodes_per_machine sums to %d, want workers (%d)", sum, r.Workers)
		}
	case "cross-region":
		if n.Kind != "cross-region" {
			e.addf("cross-region topology requires the cross-region network, got %q", n.Kind)
		}
	default:
		e.addf("unknown topology kind %q (want paper-cluster, single-machine, ring, cluster or cross-region)", t.Kind)
	}
}

func validateCompute(e *errorList, r *Manifest) {
	c := r.Compute
	if c == nil {
		return
	}
	switch c.Kind {
	case "explicit":
		if len(c.Scale) != r.Workers {
			e.addf("compute.scale has %d entries, want one per worker (%d)", len(c.Scale), r.Workers)
		}
		for i, s := range c.Scale {
			if s <= 0 {
				e.addf("compute.scale[%d] must be positive, got %g", i, s)
			}
		}
	case "straggler":
		if c.Worker < 0 || c.Worker >= r.Workers {
			e.addf("compute.worker %d outside [0, %d)", c.Worker, r.Workers)
		}
		if c.Factor <= 0 {
			e.addf("compute.factor must be positive, got %g", c.Factor)
		}
	case "linear":
		if c.Min <= 0 || c.Max < c.Min {
			e.addf("compute linear ramp requires 0 < min <= max, got min %g max %g", c.Min, c.Max)
		}
	case "lognormal":
		if c.Sigma <= 0 {
			e.addf("compute.sigma must be positive, got %g", c.Sigma)
		}
	default:
		e.addf("unknown compute kind %q (want explicit, straggler, linear or lognormal)", c.Kind)
	}
}

func validateFailures(e *errorList, r *Manifest) {
	f := r.Failures
	if f == nil {
		return
	}
	if f.DetectSecs < 0 {
		e.addf("failures.detect_secs must be >= 0, got %g", f.DetectSecs)
	}
	for i, ev := range f.Events {
		switch ev.Kind {
		case "crash":
			if ev.Rejoin <= ev.At {
				e.addf("failure event %d: crash rejoin (%g) must come after the crash (%g); use kind \"leave\" for a permanent crash", i, ev.Rejoin, ev.At)
			}
			checkEventWorker(e, r, i, ev.Worker)
		case "hang":
			if ev.Until <= ev.At {
				e.addf("failure event %d: hang until (%g) must come after at (%g)", i, ev.Until, ev.At)
			}
			checkEventWorker(e, r, i, ev.Worker)
		case "leave":
			checkEventWorker(e, r, i, ev.Worker)
		case "blackout":
			if ev.Until <= ev.At {
				e.addf("failure event %d: blackout until (%g) must come after at (%g)", i, ev.Until, ev.At)
			}
			if ev.A == ev.B {
				e.addf("failure event %d: blackout endpoints must differ", i)
			}
			if ev.A < 0 || ev.A >= r.Workers || ev.B < 0 || ev.B >= r.Workers {
				e.addf("failure event %d: blackout endpoints (%d, %d) outside [0, %d)", i, ev.A, ev.B, r.Workers)
			}
		default:
			e.addf("failure event %d: unknown kind %q (want crash, hang, leave or blackout)", i, ev.Kind)
		}
		if ev.At < 0 {
			e.addf("failure event %d: at must be >= 0, got %g", i, ev.At)
		}
	}
	if rc := f.RandomChurn; rc != nil {
		if rc.HorizonSecs <= 0 {
			e.addf("random_churn.horizon_secs must be positive, got %g", rc.HorizonSecs)
		}
		if rc.CrashesPerWorker <= 0 {
			e.addf("random_churn.crashes_per_worker must be positive, got %g", rc.CrashesPerWorker)
		}
		if rc.MeanDownSecs <= 0 {
			e.addf("random_churn.mean_down_secs must be positive, got %g", rc.MeanDownSecs)
		}
	}
}

func checkEventWorker(e *errorList, r *Manifest, i, w int) {
	if w < 0 || w >= r.Workers {
		e.addf("failure event %d: worker %d outside [0, %d)", i, w, r.Workers)
	}
}

func validateLive(e *errorList, m, r *Manifest) {
	engineOnly := []struct {
		field string
		set   bool
	}{
		{"topology", m.Topology != nil},
		{"network", m.Network != nil},
		{"compute", m.Compute != nil},
		{"failures", m.Failures != nil},
		{"netmax", m.NetMax != nil},
		{"epochs", m.Epochs != 0},
		{"lr_decay_epoch", m.LRDecayEpoch != 0},
		{"overlap", m.Overlap != nil},
		{"parallelism", m.Parallelism != 0},
	}
	for _, f := range engineOnly {
		if f.set {
			e.addf("%s is engine-only (runtime is live; use the live block)", f.field)
		}
	}
	if r.Algorithm != "netmax" {
		e.addf("live runtime runs the NetMax group (algorithm %q unsupported; use live.uniform for AD-PSGD-style selection)", r.Algorithm)
	}
	if r.Partition.Kind == "segments" {
		e.addf("segments partition is engine-only (live workers share one batch size)")
	}
	l := r.Live
	if l.Transport != "local" && l.Transport != "tcp" {
		e.addf("unknown live transport %q (want local or tcp)", l.Transport)
	}
	if l.TsMillis <= 0 {
		e.addf("live.ts_millis must be positive, got %d", l.TsMillis)
	}
	if l.DurationSecs < 0 {
		e.addf("live.duration_secs must be >= 0, got %g", l.DurationSecs)
	}
	if l.Iterations < 0 {
		e.addf("live.iterations must be >= 0, got %d", l.Iterations)
	}
	if l.DurationSecs == 0 && l.Iterations == 0 {
		e.addf("live runs need a bound: set duration_secs or iterations")
	}
	if l.Latency != nil {
		if l.Transport != "local" {
			e.addf("live.latency injection requires the local transport")
		}
		if l.Latency.Colocated < 0 || l.Latency.Colocated > r.Workers {
			e.addf("live.latency.colocated %d outside [0, %d]", l.Latency.Colocated, r.Workers)
		}
		if l.Latency.IntraMillis < 0 || l.Latency.InterMillis < 0 {
			e.addf("live.latency millis must be >= 0")
		}
	}
	for i, ev := range l.Churn {
		if ev.Worker < 0 || ev.Worker >= r.Workers {
			e.addf("live churn event %d: worker %d outside [0, %d)", i, ev.Worker, r.Workers)
		}
		if ev.AtSecs < 0 {
			e.addf("live churn event %d: at_secs must be >= 0, got %g", i, ev.AtSecs)
		}
	}
}
