// Package linalg provides the small dense linear-algebra routines the policy
// generator needs: a symmetric eigen-solver (cyclic Jacobi) and spectral /
// stochastic-matrix helpers used both by Algorithm 3 and by the tests that
// verify the paper's Theorem 3 invariants.
package linalg

import (
	"fmt"
	"math"
	"sort"
)

// Matrix is a dense row-major square matrix.
type Matrix struct {
	N    int
	Data []float64
}

// NewMatrix returns a zero n x n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.N)
	copy(c.Data, m.Data)
	return c
}

// IsSymmetric reports whether |m - mᵀ| <= tol elementwise.
func (m *Matrix) IsSymmetric(tol float64) bool {
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// IsNonNegative reports whether every entry is >= -tol.
func (m *Matrix) IsNonNegative(tol float64) bool {
	for _, v := range m.Data {
		if v < -tol {
			return false
		}
	}
	return true
}

// IsDoublyStochastic reports whether all rows and columns sum to 1 within tol
// and all entries are non-negative (Lemma 1 + Lemma 2 of the paper).
func (m *Matrix) IsDoublyStochastic(tol float64) bool {
	if !m.IsNonNegative(tol) {
		return false
	}
	for i := 0; i < m.N; i++ {
		rs, cs := 0.0, 0.0
		for j := 0; j < m.N; j++ {
			rs += m.At(i, j)
			cs += m.At(j, i)
		}
		if math.Abs(rs-1) > tol || math.Abs(cs-1) > tol {
			return false
		}
	}
	return true
}

// SymmetricEigenvalues computes all eigenvalues of a symmetric matrix using
// the cyclic Jacobi rotation method. Returned eigenvalues are sorted in
// descending order. The input is not modified.
func SymmetricEigenvalues(m *Matrix) ([]float64, error) {
	if !m.IsSymmetric(1e-9) {
		return nil, fmt.Errorf("linalg: matrix is not symmetric")
	}
	n := m.N
	a := m.Clone()
	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a.At(i, j) * a.At(i, j)
			}
		}
		if off < 1e-24 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(theta*theta+1))
				} else {
					t = -1 / (-theta + math.Sqrt(theta*theta+1))
				}
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation G(p,q,θ)ᵀ A G(p,q,θ).
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = a.At(i, i)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(eig)))
	return eig, nil
}

// SecondLargestEigenvalue returns λ₂ of a symmetric matrix.
func SecondLargestEigenvalue(m *Matrix) (float64, error) {
	eig, err := SymmetricEigenvalues(m)
	if err != nil {
		return 0, err
	}
	if len(eig) < 2 {
		return 0, fmt.Errorf("linalg: need at least a 2x2 matrix, got %d", m.N)
	}
	return eig[1], nil
}

// MatVec returns m @ v.
func (m *Matrix) MatVec(v []float64) []float64 {
	if len(v) != m.N {
		panic(fmt.Sprintf("linalg: MatVec length %d vs %d", len(v), m.N))
	}
	out := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		s := 0.0
		row := m.Data[i*m.N : (i+1)*m.N]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}
