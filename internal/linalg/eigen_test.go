package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEigenvaluesDiagonal(t *testing.T) {
	m := NewMatrix(3)
	m.Set(0, 0, 3)
	m.Set(1, 1, -1)
	m.Set(2, 2, 2)
	eig, err := SymmetricEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -1}
	for i := range want {
		if math.Abs(eig[i]-want[i]) > 1e-10 {
			t.Fatalf("eig = %v, want %v", eig, want)
		}
	}
}

func TestEigenvalues2x2Known(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewMatrix(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 2)
	eig, err := SymmetricEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-3) > 1e-10 || math.Abs(eig[1]-1) > 1e-10 {
		t.Fatalf("eig = %v, want [3 1]", eig)
	}
}

func TestEigenvaluesCompleteGraphGossip(t *testing.T) {
	// W = (1-a)I + (a/n) 11ᵀ for n=4, a=0.4 has eigenvalues 1 and 1-a (x3).
	n, a := 4, 0.4
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := a / float64(n)
			if i == j {
				v += 1 - a
			}
			m.Set(i, j, v)
		}
	}
	eig, err := SymmetricEigenvalues(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eig[0]-1) > 1e-10 {
		t.Fatalf("λ1 = %v, want 1", eig[0])
	}
	for _, l := range eig[1:] {
		if math.Abs(l-(1-a)) > 1e-10 {
			t.Fatalf("λ = %v, want %v", l, 1-a)
		}
	}
}

func TestSecondLargestEigenvalue(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 5)
	m.Set(1, 1, 7)
	l2, err := SecondLargestEigenvalue(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-5) > 1e-12 {
		t.Fatalf("λ2 = %v, want 5", l2)
	}
}

func TestEigenNonSymmetricRejected(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 1)
	if _, err := SymmetricEigenvalues(m); err == nil {
		t.Fatal("expected error for non-symmetric input")
	}
}

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigenTraceAndFrobeniusInvariants(t *testing.T) {
	// Property: sum(eig) == trace, sum(eig²) == ||A||F² for symmetric A.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := randomSymmetric(rng, n)
		eig, err := SymmetricEigenvalues(m)
		if err != nil {
			return false
		}
		trace, frob := 0.0, 0.0
		for i := 0; i < n; i++ {
			trace += m.At(i, i)
			for j := 0; j < n; j++ {
				frob += m.At(i, j) * m.At(i, j)
			}
		}
		se, se2 := 0.0, 0.0
		for _, l := range eig {
			se += l
			se2 += l * l
		}
		return math.Abs(se-trace) < 1e-8 && math.Abs(se2-frob) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEigenSortedDescending(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomSymmetric(rng, 5)
		eig, err := SymmetricEigenvalues(m)
		if err != nil {
			return false
		}
		for i := 1; i < len(eig); i++ {
			if eig[i] > eig[i-1]+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestIsDoublyStochastic(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 0.25)
	m.Set(0, 1, 0.75)
	m.Set(1, 0, 0.75)
	m.Set(1, 1, 0.25)
	if !m.IsDoublyStochastic(1e-12) {
		t.Fatal("expected doubly stochastic")
	}
	m.Set(0, 0, 0.3)
	if m.IsDoublyStochastic(1e-12) {
		t.Fatal("row sum broken but accepted")
	}
}

func TestIsDoublyStochasticRejectsNegative(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1.5)
	m.Set(0, 1, -0.5)
	m.Set(1, 0, -0.5)
	m.Set(1, 1, 1.5)
	if m.IsDoublyStochastic(1e-12) {
		t.Fatal("negative entries accepted")
	}
}

func TestMatVec(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got := m.MatVec([]float64{1, 1})
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("MatVec = %v", got)
	}
}

func TestStochasticMatrixTopEigenvalueIsOne(t *testing.T) {
	// Property: a random symmetric doubly stochastic matrix (built by mixing
	// permutation-free Birkhoff-like terms) has λ1 == 1.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		// Build W = c0*I + c1*(11ᵀ/n) + c2*C where C is a symmetric circulant
		// doubly stochastic matrix; coefficients sum to 1.
		c0 := rng.Float64()
		c1 := rng.Float64() * (1 - c0)
		c2 := 1 - c0 - c1
		m := NewMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := c1 / float64(n)
				if i == j {
					v += c0
				}
				if (i+1)%n == j || (j+1)%n == i {
					v += c2 / 2
				}
				if n == 2 && (i+1)%n == j && (j+1)%n == i {
					// both conditions coincide for n=2; handled implicitly
					_ = v
				}
				m.Set(i, j, v)
			}
		}
		if !m.IsSymmetric(1e-9) || !m.IsDoublyStochastic(1e-9) {
			return true // construction degenerate; skip
		}
		eig, err := SymmetricEigenvalues(m)
		if err != nil {
			return false
		}
		return math.Abs(eig[0]-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
