// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark runs the corresponding experiment in quick mode (reduced
// epochs/node counts) so the full suite completes in minutes; run
// cmd/netmax-bench without -quick for full-scale reproductions. Reported
// custom metrics expose the experiment's headline quantity so that
// `go test -bench . -benchmem` output doubles as a shape summary.
package netmax

import (
	"strconv"
	"strings"
	"testing"

	"netmax/internal/experiments"
)

func benchExperiment(b *testing.B, id string) *experiments.Result {
	b.Helper()
	var res *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Run(id, experiments.Options{Seed: 1, Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	return res
}

// metric extracts a numeric cell for ReportMetric; returns -1 when missing.
func metric(res *experiments.Result, match func([]string) bool, col string) float64 {
	ci := -1
	for i, h := range res.Header {
		if h == col {
			ci = i
		}
	}
	if ci == -1 {
		return -1
	}
	for _, row := range res.Rows {
		if match(row) {
			v, err := strconv.ParseFloat(strings.TrimSuffix(row[ci], "%"), 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

func rowHas(name string) func([]string) bool {
	return func(row []string) bool {
		for _, c := range row {
			if c == name {
				return true
			}
		}
		return false
	}
}

func rowHasBoth(a, bb string) func([]string) bool {
	return func(row []string) bool {
		fa, fb := false, false
		for _, c := range row {
			if c == a {
				fa = true
			}
			if c == bb {
				fb = true
			}
		}
		return fa && fb
	}
}

// BenchmarkFig3IterationTime regenerates Fig. 3 (intra vs inter-machine
// iteration time).
func BenchmarkFig3IterationTime(b *testing.B) {
	res := benchExperiment(b, "fig3")
	b.ReportMetric(metric(res, rowHas("ResNet18"), "ratio"), "resnet18-inter/intra")
	b.ReportMetric(metric(res, rowHas("VGG19"), "ratio"), "vgg19-inter/intra")
}

// BenchmarkFig5EpochTimeHetero regenerates Fig. 5 (epoch-time decomposition,
// heterogeneous network).
func BenchmarkFig5EpochTimeHetero(b *testing.B) {
	res := benchExperiment(b, "fig5")
	nm := metric(res, rowHasBoth("ResNet18", "NetMax"), "comm cost (s)")
	ad := metric(res, rowHasBoth("ResNet18", "AD-PSGD"), "comm cost (s)")
	b.ReportMetric(nm, "netmax-comm-s")
	if nm > 0 {
		b.ReportMetric(ad/nm, "adpsgd/netmax-comm")
	}
}

// BenchmarkFig6EpochTimeHomo regenerates Fig. 6 (homogeneous decomposition).
func BenchmarkFig6EpochTimeHomo(b *testing.B) {
	res := benchExperiment(b, "fig6")
	b.ReportMetric(metric(res, rowHasBoth("ResNet18", "NetMax"), "comm cost (s)"), "netmax-comm-s")
}

// BenchmarkFig7Ablation regenerates Fig. 7 (serial/parallel x
// uniform/adaptive).
func BenchmarkFig7Ablation(b *testing.B) {
	res := benchExperiment(b, "fig7")
	row := res.Rows[0]
	su, _ := strconv.ParseFloat(row[1], 64)
	pa, _ := strconv.ParseFloat(row[4], 64)
	if pa > 0 {
		b.ReportMetric(su/pa, "adaptive-speedup")
	}
}

// BenchmarkFig8LossHetero regenerates Fig. 8 (loss vs time, heterogeneous).
func BenchmarkFig8LossHetero(b *testing.B) {
	res := benchExperiment(b, "fig8")
	nm := metric(res, rowHasBoth("ResNet18", "NetMax"), "total time (s)")
	ad := metric(res, rowHasBoth("ResNet18", "AD-PSGD"), "total time (s)")
	if nm > 0 {
		b.ReportMetric(ad/nm, "netmax-vs-adpsgd")
	}
}

// BenchmarkFig9LossHomo regenerates Fig. 9 (loss vs time, homogeneous).
func BenchmarkFig9LossHomo(b *testing.B) {
	res := benchExperiment(b, "fig9")
	nm := metric(res, rowHasBoth("ResNet18", "NetMax"), "total time (s)")
	ad := metric(res, rowHasBoth("ResNet18", "AD-PSGD"), "total time (s)")
	if nm > 0 {
		b.ReportMetric(ad/nm, "netmax-vs-adpsgd")
	}
}

// BenchmarkTable2AccuracyHetero regenerates Table II.
func BenchmarkTable2AccuracyHetero(b *testing.B) {
	res := benchExperiment(b, "tab2")
	b.ReportMetric(metric(res, func(r []string) bool { return r[0] == "ResNet18" && r[1] == "8" }, "NetMax"), "netmax-acc-pct")
}

// BenchmarkTable3AccuracyHomo regenerates Table III.
func BenchmarkTable3AccuracyHomo(b *testing.B) {
	res := benchExperiment(b, "tab3")
	b.ReportMetric(metric(res, func(r []string) bool { return r[0] == "ResNet18" && r[1] == "8" }, "NetMax"), "netmax-acc-pct")
}

// BenchmarkFig10ScalabilityHetero regenerates Fig. 10.
func BenchmarkFig10ScalabilityHetero(b *testing.B) {
	res := benchExperiment(b, "fig10")
	b.ReportMetric(metric(res, rowHas("NetMax"), res.Header[len(res.Header)-1]), "netmax-speedup-max-nodes")
}

// BenchmarkFig11ScalabilityHomo regenerates Fig. 11.
func BenchmarkFig11ScalabilityHomo(b *testing.B) {
	res := benchExperiment(b, "fig11")
	b.ReportMetric(metric(res, rowHas("NetMax"), res.Header[len(res.Header)-1]), "netmax-speedup-max-nodes")
}

// BenchmarkFig12CIFAR100 regenerates Fig. 12 (segments partitioning).
func BenchmarkFig12CIFAR100(b *testing.B) {
	res := benchExperiment(b, "fig12")
	b.ReportMetric(metric(res, rowHas("NetMax"), "total time (s)"), "netmax-total-s")
}

// BenchmarkFig13ImageNet regenerates Fig. 13 (16 workers, ResNet50).
func BenchmarkFig13ImageNet(b *testing.B) {
	res := benchExperiment(b, "fig13")
	b.ReportMetric(metric(res, rowHas("NetMax"), "total time (s)"), "netmax-total-s")
}

// BenchmarkTable5AccuracyNonUniform regenerates Table V.
func BenchmarkTable5AccuracyNonUniform(b *testing.B) {
	res := benchExperiment(b, "tab5")
	b.ReportMetric(metric(res, rowHas("CIFAR10"), "NetMax"), "netmax-cifar10-acc-pct")
}

// BenchmarkFig14SmallModel regenerates Fig. 14 / Table VI (PS baselines).
func BenchmarkFig14SmallModel(b *testing.B) {
	res := benchExperiment(b, "fig14")
	nm := metric(res, rowHas("NetMax"), "total time (s)")
	ps := metric(res, rowHas("PS-syn"), "total time (s)")
	if nm > 0 {
		b.ReportMetric(ps/nm, "netmax-vs-pssyn")
	}
}

// BenchmarkFig15ADPSGDMonitor regenerates Fig. 15 (the Monitor extension).
func BenchmarkFig15ADPSGDMonitor(b *testing.B) {
	res := benchExperiment(b, "fig15")
	ad := metric(res, rowHas("AD-PSGD"), "total time (s)")
	ext := metric(res, rowHas("AD-PSGD+Monitor"), "total time (s)")
	if ext > 0 {
		b.ReportMetric(ad/ext, "monitor-speedup")
	}
}

// BenchmarkFig16CIFAR10 regenerates Appendix Fig. 16.
func BenchmarkFig16CIFAR10(b *testing.B) {
	res := benchExperiment(b, "fig16")
	b.ReportMetric(metric(res, rowHas("NetMax"), "total time (s)"), "netmax-total-s")
}

// BenchmarkFig17TinyImageNet regenerates Appendix Fig. 17.
func BenchmarkFig17TinyImageNet(b *testing.B) {
	res := benchExperiment(b, "fig17")
	b.ReportMetric(metric(res, rowHas("NetMax"), "total time (s)"), "netmax-total-s")
}

// BenchmarkFig18NonIIDMNIST regenerates Appendix Fig. 18 (Table IV skew).
func BenchmarkFig18NonIIDMNIST(b *testing.B) {
	res := benchExperiment(b, "fig18")
	nm := metric(res, rowHas("NetMax"), "total time (s)")
	ad := metric(res, rowHas("AD-PSGD"), "total time (s)")
	if nm > 0 {
		b.ReportMetric(ad/nm, "netmax-vs-adpsgd")
	}
}

// BenchmarkFig19CrossRegion regenerates Appendix Fig. 19 (six regions).
func BenchmarkFig19CrossRegion(b *testing.B) {
	res := benchExperiment(b, "fig19")
	nm := metric(res, rowHas("NetMax"), "total time (s)")
	ps := metric(res, rowHas("PS-syn"), "total time (s)")
	if nm > 0 {
		b.ReportMetric(ps/nm, "netmax-vs-pssyn")
	}
}

// BenchmarkAblationBlendWeight measures the 1/p-scaled vs fixed blend
// ablation (the algorithmic delta between NetMax and AD-PSGD+Monitor).
func BenchmarkAblationBlendWeight(b *testing.B) {
	benchExperiment(b, "abl-blend")
}

// BenchmarkAblationPolicyPeriod sweeps the monitor period Ts.
func BenchmarkAblationPolicyPeriod(b *testing.B) {
	benchExperiment(b, "abl-ts")
}

// BenchmarkAblationEMABeta sweeps the EMA smoothing factor.
func BenchmarkAblationEMABeta(b *testing.B) {
	benchExperiment(b, "abl-beta")
}

// BenchmarkAblationPolicyRounds sweeps Algorithm 3's grid size.
func BenchmarkAblationPolicyRounds(b *testing.B) {
	benchExperiment(b, "abl-rounds")
}

// BenchmarkAblationSAPS compares the static fast-subgraph against the
// adaptive policy under changing link speeds (the Fig. 2 scenario).
func BenchmarkAblationSAPS(b *testing.B) {
	benchExperiment(b, "abl-saps")
}

// BenchmarkAblationSyncDPSGD compares synchronous neighborhood averaging
// against NetMax.
func BenchmarkAblationSyncDPSGD(b *testing.B) {
	benchExperiment(b, "abl-dpsgd")
}

// BenchmarkAblationStraggler measures compute-straggler tolerance across
// all approaches.
func BenchmarkAblationStraggler(b *testing.B) {
	res := benchExperiment(b, "abl-straggler")
	b.ReportMetric(metric(res, rowHas("Allreduce"), "slowdown"), "allreduce-slowdown")
	b.ReportMetric(metric(res, rowHas("NetMax"), "slowdown"), "netmax-slowdown")
}

// BenchmarkAblationHop measures the bounded-staleness critique: Hop vs
// AD-PSGD vs NetMax under one continuously slow link.
func BenchmarkAblationHop(b *testing.B) {
	res := benchExperiment(b, "abl-hop")
	hop := metric(res, rowHas("Hop (s=2)"), "total time (s)")
	nm := metric(res, rowHas("NetMax"), "total time (s)")
	if nm > 0 {
		b.ReportMetric(hop/nm, "hop-vs-netmax")
	}
}

// BenchmarkStatsSpeedup replicates the headline speedups over seeds.
func BenchmarkStatsSpeedup(b *testing.B) {
	res := benchExperiment(b, "stats-speedup")
	b.ReportMetric(metric(res, rowHas("AD-PSGD"), "speedup mean"), "vs-adpsgd-mean")
}
