package netmax

import (
	"testing"

	"netmax/internal/simnet"
)

func TestPublicQuickstartPath(t *testing.T) {
	train, test := Dataset(SynthMNIST, 1)
	cfg := ClusterConfig(SimMobileNet, train, test, 4, 4, 1)
	r := Train(cfg, Options{})
	if r.Epochs != 4 {
		t.Fatalf("epochs = %d", r.Epochs)
	}
	if r.FinalAccuracy < 0.8 {
		t.Fatalf("accuracy = %v", r.FinalAccuracy)
	}
}

func TestPublicBaselinesShareConfigShape(t *testing.T) {
	train, test := Dataset(SynthMNIST, 1)
	for _, f := range []func(*Config) *Result{TrainADPSGD, TrainAllreduce, TrainGossip} {
		cfg := HomogeneousConfig(SimMobileNet, train, test, 4, 3, 1)
		r := f(cfg)
		if r.Epochs != 3 || r.TotalTime <= 0 {
			t.Fatalf("baseline run incomplete: %+v", r)
		}
	}
}

func TestPublicGeneratePolicy(t *testing.T) {
	times := [][]float64{
		{0, 1, 5},
		{1, 0, 5},
		{5, 5, 0},
	}
	adj := simnet.FullyConnected(3)
	pol, err := GeneratePolicy(times, adj, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Lambda2 <= 0 || pol.Lambda2 >= 1 {
		t.Fatalf("lambda2 = %v", pol.Lambda2)
	}
	if pol.P[0][1] <= pol.P[0][2] {
		t.Fatalf("fast neighbor not preferred: %v", pol.P[0])
	}
}

func TestPublicExperiment(t *testing.T) {
	res, err := Experiment("fig3", 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("fig3 rows = %d", len(res.Rows))
	}
}

func TestPublicADPSGDMonitor(t *testing.T) {
	train, test := Dataset(SynthMNIST, 1)
	cfg := ClusterConfig(SimMobileNet, train, test, 4, 3, 1)
	r := TrainADPSGDMonitor(cfg, Options{})
	if r.Algo != "AD-PSGD+Monitor" {
		t.Fatalf("algo = %q", r.Algo)
	}
}
