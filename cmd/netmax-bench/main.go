// Command netmax-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	netmax-bench -list
//	netmax-bench -exp fig8
//	netmax-bench -exp tab2 -quick -seed 7
//	netmax-bench -all -quick
//	netmax-bench -exp fig12 -curves
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"netmax/internal/experiments"
	"netmax/internal/trace"
)

func main() {
	var (
		exp    = flag.String("exp", "", "experiment id to regenerate (see -list)")
		list   = flag.Bool("list", false, "list available experiments")
		all    = flag.Bool("all", false, "run every experiment")
		quick  = flag.Bool("quick", false, "reduced epochs/node counts for a fast pass")
		seed   = flag.Int64("seed", 1, "random seed")
		curves = flag.Bool("curves", false, "also print the raw figure series")
		csvDir = flag.String("csv", "", "directory to write per-experiment curve CSVs into")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}
	opt := experiments.Options{Seed: *seed, Quick: *quick}
	runOne := func(id string) error {
		start := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			return err
		}
		res.WriteTable(os.Stdout)
		if *curves {
			res.WriteCurves(os.Stdout)
		}
		if *csvDir != "" && len(res.Curves) > 0 {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(*csvDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := trace.WriteCurvesCSV(f, res.Curves); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("curves written to %s\n", path)
		}
		fmt.Printf("(%s regenerated in %s)\n\n", id, time.Since(start).Round(time.Millisecond))
		return nil
	}
	switch {
	case *all:
		for _, r := range experiments.All() {
			if err := runOne(r.ID); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
		}
	case *exp != "":
		if err := runOne(*exp); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
