// Command netmax-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	netmax-bench -list
//	netmax-bench -exp fig8
//	netmax-bench -exp tab2 -quick -seed 7
//	netmax-bench -all -quick
//	netmax-bench -exp fig12 -curves
//	netmax-bench -all -quick -par 1 -bench-out BENCH_baseline.json -bench-label baseline
//	netmax-bench -scenario scenarios/cluster-resnet18-cifar10.json
//
// -par pins the host parallelism of the compute core (1 = the serial
// baseline, 0 = one worker per CPU); results are bitwise identical at any
// setting, only wall-clock changes. -bench-out records per-experiment
// wall-clock seconds as JSON so successive PRs can track the perf
// trajectory (see BENCH_baseline.json at the repo root). -scenario runs a
// declarative manifest (see internal/scenario and cmd/netmax-scenario)
// instead of a registered experiment id, writing the resolved manifest
// next to the results.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"netmax/internal/engine"
	"netmax/internal/experiments"
	"netmax/internal/scenario"
	"netmax/internal/tensor"
	"netmax/internal/trace"
)

// benchRecord is the schema of -bench-out files.
type benchRecord struct {
	Label       string           `json:"label"`
	RecordedAt  string           `json:"recorded_at"`
	GoMaxProcs  int              `json:"go_max_procs"`
	Parallelism int              `json:"parallelism"` // 0 = NumCPU
	Quick       bool             `json:"quick"`
	Seed        int64            `json:"seed"`
	Experiments []benchExpRecord `json:"experiments"`
	TotalSecs   float64          `json:"total_seconds"`
}

type benchExpRecord struct {
	ID      string  `json:"id"`
	Seconds float64 `json:"seconds"`
}

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id to regenerate (see -list)")
		list     = flag.Bool("list", false, "list available experiments")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "reduced epochs/node counts for a fast pass")
		seed     = flag.Int64("seed", 1, "random seed")
		curves   = flag.Bool("curves", false, "also print the raw figure series")
		csvDir   = flag.String("csv", "", "directory to write per-experiment curve CSVs into")
		par      = flag.Int("par", 0, "host parallelism: 0 = NumCPU, 1 = serial; results are identical either way")
		scen     = flag.String("scenario", "", "scenario manifest to run instead of an experiment id (engine runtime)")
		scenOut  = flag.String("scenario-out", "runs", "output directory for -scenario (resolved manifest + results); empty disables file output")
		benchOut = flag.String("bench-out", "", "write per-experiment wall-clock seconds as JSON to this file")
		benchLab = flag.String("bench-label", "run", "label stored in the -bench-out record")
		benchCmp = flag.String("bench-compare", "", "baseline -bench-out JSON to compare the recorded timings against; exits 1 on regression")
		benchTol = flag.Float64("bench-threshold", 1.30, "regression factor for -bench-compare: fail when new/old exceeds this")
	)
	flag.Parse()

	if *par < 0 {
		fmt.Fprintln(os.Stderr, "error: -par must be >= 0 (0 = NumCPU, 1 = serial)")
		os.Exit(2)
	}
	engine.DefaultParallelism = *par
	tensor.SetParallelism(*par)

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-10s %s\n", r.ID, r.Title)
		}
		return
	}
	if *scen != "" {
		// The manifest is the single source of configuration: flags that
		// would silently be ignored (the manifest's seed wins, bench
		// records are not written) are rejected instead.
		incompatible := map[string]bool{
			"exp": true, "all": true, "seed": true, "curves": true, "csv": true,
			"bench-out": true, "bench-label": true, "bench-compare": true, "bench-threshold": true,
		}
		flag.Visit(func(f *flag.Flag) {
			if incompatible[f.Name] {
				fmt.Fprintf(os.Stderr, "error: -%s does not apply to -scenario runs (the manifest governs; see netmax-scenario)\n", f.Name)
				os.Exit(2)
			}
		})
		if raw, err := os.ReadFile(*scen); err == nil && scenario.IsSuite(raw) {
			fmt.Fprintln(os.Stderr, "error: netmax-bench runs single-run manifests; use netmax-scenario run for suite files")
			os.Exit(2)
		}
		m, err := scenario.Load(*scen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if m.Runtime == "live" {
			fmt.Fprintln(os.Stderr, "error: netmax-bench runs engine-runtime scenarios; use netmax-live -scenario (or netmax-scenario run) for live manifests")
			os.Exit(2)
		}
		// -par already pins host parallelism process-wide (DefaultParallelism
		// above); the manifest stays untouched so the emitted resolved.json —
		// and any reproducibility diff over it — is identical at any -par.
		rep, err := scenario.Run(m, scenario.RunOptions{Quick: *quick, OutDir: *scenOut})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(rep.Summary())
		if rep.Dir != "" {
			fmt.Printf("outputs written to %s\n", rep.Dir)
		}
		return
	}
	opt := experiments.Options{Seed: *seed, Quick: *quick}
	record := &benchRecord{
		Label:       *benchLab,
		RecordedAt:  time.Now().UTC().Format(time.RFC3339),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: *par,
		Quick:       *quick,
		Seed:        *seed,
	}
	// runOne regenerates one experiment, reporting into w (buffered when
	// experiments run concurrently, so output stays in listing order).
	runOne := func(id string, w io.Writer) (float64, error) {
		start := time.Now()
		res, err := experiments.Run(id, opt)
		if err != nil {
			return 0, err
		}
		secs := time.Since(start).Seconds()
		res.WriteTable(w)
		if *curves {
			res.WriteCurves(w)
		}
		if *csvDir != "" && len(res.Curves) > 0 {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				return 0, err
			}
			path := filepath.Join(*csvDir, id+".csv")
			f, err := os.Create(path)
			if err != nil {
				return 0, err
			}
			if err := trace.WriteCurvesCSV(f, res.Curves); err != nil {
				f.Close()
				return 0, err
			}
			if err := f.Close(); err != nil {
				return 0, err
			}
			fmt.Fprintf(w, "curves written to %s\n", path)
		}
		fmt.Fprintf(w, "(%s regenerated in %.3fs)\n\n", id, secs)
		return secs, nil
	}
	switch {
	case *all:
		// Independent experiments run under the bounded-parallelism driver;
		// each one's output is buffered and printed in listing order. When
		// recording or comparing a perf baseline, experiments run one at a
		// time so the per-experiment seconds are contention-free and
		// comparable across machines and PRs (each experiment still
		// parallelizes internally per -par).
		driverPar := engine.ResolveParallelism(0)
		if *benchOut != "" || *benchCmp != "" {
			driverPar = 1
		}
		runners := experiments.All()
		outs := make([]bytes.Buffer, len(runners))
		secs := make([]float64, len(runners))
		errs := make([]error, len(runners))
		// Stream each experiment's buffered output as soon as it and all
		// its predecessors have finished, so -all reports progress live
		// while still printing in listing order.
		var mu sync.Mutex
		done := make([]bool, len(runners))
		printed := 0
		engine.Concurrently(len(runners), driverPar, func(k int) {
			secs[k], errs[k] = runOne(runners[k].ID, &outs[k])
			mu.Lock()
			done[k] = true
			for printed < len(runners) && done[printed] {
				if errs[printed] == nil {
					os.Stdout.Write(outs[printed].Bytes())
				} else {
					fmt.Fprintf(os.Stderr, "error: %s: %v\n", runners[printed].ID, errs[printed])
				}
				printed++
			}
			mu.Unlock()
		})
		for k, r := range runners {
			if errs[k] != nil {
				// Already reported in-stream above.
				os.Exit(1)
			}
			record.Experiments = append(record.Experiments, benchExpRecord{ID: r.ID, Seconds: secs[k]})
			record.TotalSecs += secs[k]
		}
	case *exp != "":
		s, err := runOne(*exp, os.Stdout)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		record.Experiments = append(record.Experiments, benchExpRecord{ID: *exp, Seconds: s})
		record.TotalSecs += s
	default:
		flag.Usage()
		os.Exit(2)
	}
	if *benchOut != "" {
		data, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Printf("benchmark record written to %s (total %.3fs)\n", *benchOut, record.TotalSecs)
	}
	if *benchCmp != "" {
		if err := compareBench(record, *benchCmp, *benchTol, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "bench regression:", err)
			os.Exit(1)
		}
	}
}

// compareBench checks the freshly recorded per-experiment timings against a
// committed baseline record, reporting every experiment whose time grew by
// more than the threshold factor. Experiments present on only one side are
// reported informationally but never fail the comparison (the suite grows
// across PRs, and baselines age). Sub-10ms baselines are skipped: at that
// scale scheduler noise dwarfs any real regression.
func compareBench(rec *benchRecord, baselinePath string, threshold float64, w io.Writer) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchRecord
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse %s: %w", baselinePath, err)
	}
	baseSecs := make(map[string]float64, len(base.Experiments))
	for _, e := range base.Experiments {
		baseSecs[e.ID] = e.Seconds
	}
	const minComparable = 0.010
	var regressed []string
	fmt.Fprintf(w, "\ncomparing against %s (label %q, recorded %s):\n", baselinePath, base.Label, base.RecordedAt)
	for _, e := range rec.Experiments {
		old, ok := baseSecs[e.ID]
		switch {
		case !ok:
			fmt.Fprintf(w, "  %-12s %8.3fs  (new experiment, no baseline)\n", e.ID, e.Seconds)
		case old < minComparable:
			fmt.Fprintf(w, "  %-12s %8.3fs  (baseline %.3fs too small to compare)\n", e.ID, e.Seconds, old)
		default:
			ratio := e.Seconds / old
			mark := ""
			if ratio > threshold {
				mark = "  <-- REGRESSED"
				regressed = append(regressed, fmt.Sprintf("%s %.3fs -> %.3fs (%.2fx > %.2fx)", e.ID, old, e.Seconds, ratio, threshold))
			}
			fmt.Fprintf(w, "  %-12s %8.3fs  vs %8.3fs  (%.2fx)%s\n", e.ID, e.Seconds, old, ratio, mark)
		}
		delete(baseSecs, e.ID)
	}
	for id := range baseSecs {
		fmt.Fprintf(w, "  %-12s (in baseline only; not run)\n", id)
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d experiment(s) slower than %.2fx baseline: %s", len(regressed), threshold, strings.Join(regressed, "; "))
	}
	fmt.Fprintf(w, "no timing regressions beyond %.2fx\n", threshold)
	return nil
}
