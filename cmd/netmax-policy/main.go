// Command netmax-policy runs the communication-policy generator
// (Algorithm 3) standalone on an iteration-time matrix and prints the
// resulting probabilities and spectral diagnostics. Useful for inspecting
// what the Network Monitor would ship for a given network condition.
//
// Input is JSON on stdin or via -times:
//
//	{"alpha": 0.1, "times": [[0,1,9],[1,0,2],[9,2,0]]}
//
// Missing adjacency means fully connected.
//
//	echo '{"alpha":0.1,"times":[[0,1,9],[1,0,2],[9,2,0]]}' | netmax-policy
//	netmax-policy -demo
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"netmax/internal/linalg"
	"netmax/internal/policy"
	"netmax/internal/simnet"
)

type input struct {
	Alpha float64     `json:"alpha"`
	Times [][]float64 `json:"times"`
	Adj   [][]bool    `json:"adj,omitempty"`
	K     int         `json:"outer_rounds,omitempty"`
	R     int         `json:"inner_rounds,omitempty"`
	Eps   float64     `json:"epsilon,omitempty"`
}

func main() {
	var (
		demo    = flag.Bool("demo", false, "run on the paper's Fig. 2 example instead of stdin")
		jsonOut = flag.Bool("json", false, "emit the policy as JSON")
	)
	flag.Parse()

	var in input
	if *demo {
		// Fig. 2 at time T2: node 3's links t(3,1)=9, t(3,2)=12, t(3,4)=12
		// (5 nodes, other links fast).
		in = input{Alpha: 0.1, Times: fig2Times()}
	} else {
		if err := json.NewDecoder(os.Stdin).Decode(&in); err != nil {
			fmt.Fprintln(os.Stderr, "error: reading JSON input:", err)
			os.Exit(1)
		}
	}
	if in.Alpha <= 0 {
		in.Alpha = 0.1
	}
	if in.Adj == nil {
		in.Adj = simnet.FullyConnected(len(in.Times))
	}

	pol, err := policy.Generate(policy.Input{
		Times: in.Times, Adj: in.Adj, Alpha: in.Alpha,
		OuterRounds: in.K, InnerRounds: in.R, Epsilon: in.Eps,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(pol); err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("rho          = %.4f\n", pol.Rho)
	fmt.Printf("lambda2      = %.6f\n", pol.Lambda2)
	fmt.Printf("mean iter t  = %.4fs\n", pol.TBar)
	fmt.Printf("predicted Tc = %.2fs\n", pol.TConvergence)
	fmt.Println("policy matrix P (rows: workers; diagonal: skip-communication mass):")
	for i, row := range pol.P {
		fmt.Printf("  w%-2d:", i)
		for _, v := range row {
			fmt.Printf(" %6.3f", v)
		}
		fmt.Println()
	}
	y := policy.BuildY(pol.P, in.Times, in.Adj, in.Alpha, pol.Rho)
	if y.IsDoublyStochastic(1e-6) {
		fmt.Println("Y_P check    : doubly stochastic (Theorem 3 invariant holds)")
	} else {
		fmt.Println("Y_P check    : NOT doubly stochastic — inspect the input matrix")
	}
	if eig, err := linalg.SymmetricEigenvalues(y); err == nil {
		fmt.Printf("Y_P spectrum : lambda1=%.6f lambda2=%.6f lambdaN=%.6f\n", eig[0], eig[1], eig[len(eig)-1])
	}
}

// fig2Times builds a 5-node matrix shaped like the paper's Fig. 2 (T2):
// node 2 (0-indexed) has one 9s link and two 12s links; everything else 1s.
func fig2Times() [][]float64 {
	m := 5
	t := make([][]float64, m)
	for i := range t {
		t[i] = make([]float64, m)
		for j := range t[i] {
			if i != j {
				t[i][j] = 1
			}
		}
	}
	set := func(i, j int, v float64) { t[i][j] = v; t[j][i] = v }
	set(2, 0, 9)
	set(2, 1, 12)
	set(2, 3, 12)
	return t
}
