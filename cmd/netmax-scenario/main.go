// Command netmax-scenario runs, validates and lists declarative scenario
// manifests (internal/scenario): JSON documents that fully describe a
// training run — runtime, algorithm, topology, network dynamics, data
// partitioning, heterogeneity, failure schedule, codec, seeds — so that
// scenarios are data instead of code. The checked-in library lives under
// scenarios/.
//
//	netmax-scenario list ./scenarios
//	netmax-scenario validate ./scenarios/...
//	netmax-scenario run scenarios/churn-crash-rejoin.json
//	netmax-scenario run -quick -out runs scenarios/compression-topk25.json
//	netmax-scenario run -quick scenarios/cluster-resnet18-cifar10.json scenarios/crossregion-mobilenet.json
//
// Every run writes its fully-resolved manifest (every default made
// explicit) next to its results — <out>/<name>/resolved.json — so any
// reported number is reproducible from one file:
//
//	netmax-scenario run runs/churn-crash-rejoin/resolved.json
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"netmax/internal/scenario"
	"netmax/internal/tensor"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  netmax-scenario run [-quick] [-out dir] [-par n] <manifest.json>...
  netmax-scenario validate <file|dir|dir/...>...
  netmax-scenario list <file|dir|dir/...>...
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "validate":
		validateCmd(os.Args[2:])
	case "list":
		listCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "netmax-scenario: unknown subcommand %q\n", os.Args[1])
		usage()
	}
}

// expand turns file/dir/"dir/..." arguments into a flat list of manifest
// paths (every *.json under a directory, recursively).
func expand(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "/...")
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".json") {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no manifests found in %v", args)
	}
	return out, nil
}

func runCmd(args []string) {
	fl := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fl.Bool("quick", false, "apply the manifest's quick overrides (smoke scale)")
	out := fl.String("out", "runs", "directory for per-scenario outputs (resolved.json, result.json, curve.csv); empty disables file output")
	par := fl.Int("par", 0, "host parallelism: 0 = NumCPU, 1 = serial; results are identical either way")
	fl.Parse(args)
	if fl.NArg() == 0 {
		usage()
	}
	if *par < 0 {
		fmt.Fprintln(os.Stderr, "error: -par must be >= 0")
		os.Exit(2)
	}
	tensor.SetParallelism(*par)
	paths, err := expand(fl.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, path := range paths {
		m, err := scenario.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if *par > 0 && m.Runtime != "live" {
			m.Parallelism = *par
		}
		rep, err := scenario.Run(m, scenario.RunOptions{Quick: *quick, OutDir: *out})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(rep.Summary())
		if rep.Dir != "" {
			fmt.Printf("  outputs: %s (resolved manifest + results)\n", rep.Dir)
		}
	}
}

func validateCmd(args []string) {
	if len(args) == 0 {
		usage()
	}
	paths, err := expand(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	bad := 0
	for _, path := range paths {
		if _, err := scenario.Load(path); err != nil {
			bad++
			fmt.Fprintf(os.Stderr, "INVALID %s\n  %v\n", path, err)
			continue
		}
		fmt.Printf("ok      %s\n", path)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d manifests invalid\n", bad, len(paths))
		os.Exit(1)
	}
	fmt.Printf("%d manifests valid\n", len(paths))
}

func listCmd(args []string) {
	if len(args) == 0 {
		args = []string{"scenarios"}
	}
	paths, err := expand(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, path := range paths {
		m, err := scenario.Load(path)
		if err != nil {
			fmt.Printf("%-34s  (invalid: %v)\n", filepath.Base(path), err)
			continue
		}
		r := m.Resolved()
		kind := fmt.Sprintf("%s/%s", r.Runtime, r.Algorithm)
		fmt.Printf("%-34s  %-22s  %s\n", r.Name, kind, m.Description)
	}
}
