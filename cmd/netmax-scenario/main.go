// Command netmax-scenario runs, validates and lists declarative scenario
// manifests and suites (internal/scenario): JSON documents that fully
// describe a training run — runtime, algorithm, topology, network dynamics,
// data partitioning, heterogeneity, failure schedule, codec, seeds — or a
// whole comparison (a suite: N runs expanded from algorithm/codec arms and
// replication seeds, summarized in one joint table). Scenarios are data
// instead of code; the checked-in library lives under scenarios/.
//
//	netmax-scenario list ./scenarios
//	netmax-scenario validate ./scenarios/...
//	netmax-scenario run scenarios/churn-crash-rejoin.json
//	netmax-scenario run -quick -out runs scenarios/compression-topk25.json
//	netmax-scenario run -quick -par 2 scenarios/suite-cluster-comparison.json
//
// Every run writes its fully-resolved manifest (every default made
// explicit) next to its results — <out>/<name>/resolved.json — so any
// reported number is reproducible from one file; a suite run additionally
// writes <out>/<suite>/resolved-suite.json (the explicit run list) and
// <out>/<suite>/suite.json (the per-arm mean +/- stddev table):
//
//	netmax-scenario run runs/churn-crash-rejoin/resolved.json
//	netmax-scenario run runs/suite-cluster-comparison/resolved-suite.json
package main

import (
	"flag"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"netmax/internal/engine"
	"netmax/internal/scenario"
	"netmax/internal/tensor"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  netmax-scenario run [-quick] [-out dir] [-par n] <manifest-or-suite.json>...
  netmax-scenario validate <file|dir|dir/...>...
  netmax-scenario list <file|dir|dir/...>...
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		runCmd(os.Args[2:])
	case "validate":
		validateCmd(os.Args[2:])
	case "list":
		listCmd(os.Args[2:])
	default:
		fmt.Fprintf(os.Stderr, "netmax-scenario: unknown subcommand %q\n", os.Args[1])
		usage()
	}
}

// expand turns file/dir/"dir/..." arguments into a flat list of manifest
// paths (every *.json under a directory, recursively).
func expand(args []string) ([]string, error) {
	var out []string
	for _, a := range args {
		a = strings.TrimSuffix(a, "/...")
		info, err := os.Stat(a)
		if err != nil {
			return nil, err
		}
		if !info.IsDir() {
			out = append(out, a)
			continue
		}
		err = filepath.WalkDir(a, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() && strings.HasSuffix(path, ".json") {
				out = append(out, path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no manifests found in %v", args)
	}
	return out, nil
}

func runCmd(args []string) {
	fl := flag.NewFlagSet("run", flag.ExitOnError)
	quick := fl.Bool("quick", false, "apply the manifest's quick overrides (smoke scale)")
	out := fl.String("out", "runs", "directory for per-scenario outputs (resolved.json, result.json, curve.csv); empty disables file output")
	par := fl.Int("par", 0, "host parallelism: 0 = NumCPU, 1 = serial; results are identical either way")
	fl.Parse(args)
	if fl.NArg() == 0 {
		usage()
	}
	if *par < 0 {
		fmt.Fprintln(os.Stderr, "error: -par must be >= 0")
		os.Exit(2)
	}
	// -par pins host concurrency process-wide (tensor sharding, engine
	// worker stepping, the suite driver) without touching the manifests, so
	// emitted resolved manifests — and therefore the reproducibility diffs —
	// are identical at any -par.
	tensor.SetParallelism(*par)
	engine.DefaultParallelism = *par
	paths, err := expand(fl.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, path := range paths {
		m, s, err := scenario.LoadAny(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		if s != nil {
			rep, err := scenario.RunSuite(s, scenario.SuiteRunOptions{Quick: *quick, OutDir: *out, Par: *par})
			if err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			for _, r := range rep.Reports {
				fmt.Println(r.Summary())
			}
			if err := rep.Table.WriteTable(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "error:", err)
				os.Exit(1)
			}
			if rep.Dir != "" {
				fmt.Printf("  outputs: %s (resolved run list + joint table + per-run results)\n", rep.Dir)
			}
			continue
		}
		rep, err := scenario.Run(m, scenario.RunOptions{Quick: *quick, OutDir: *out})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		fmt.Println(rep.Summary())
		if rep.Dir != "" {
			fmt.Printf("  outputs: %s (resolved manifest + results)\n", rep.Dir)
		}
	}
}

func validateCmd(args []string) {
	if len(args) == 0 {
		usage()
	}
	paths, err := expand(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	bad := 0
	for _, path := range paths {
		if _, _, err := scenario.LoadAny(path); err != nil {
			bad++
			fmt.Fprintf(os.Stderr, "INVALID %s\n  %v\n", path, err)
			continue
		}
		fmt.Printf("ok      %s\n", path)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "%d of %d manifests invalid\n", bad, len(paths))
		os.Exit(1)
	}
	fmt.Printf("%d manifests valid\n", len(paths))
}

func listCmd(args []string) {
	if len(args) == 0 {
		args = []string{"scenarios"}
	}
	paths, err := expand(args)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	for _, path := range paths {
		m, s, err := scenario.LoadAny(path)
		if err != nil {
			fmt.Printf("%-34s  (invalid: %v)\n", filepath.Base(path), err)
			continue
		}
		if s != nil {
			resolved, err := s.Resolve(false)
			if err != nil {
				fmt.Printf("%-34s  (invalid: %v)\n", filepath.Base(path), err)
				continue
			}
			kind := fmt.Sprintf("suite/%d runs", len(resolved.Runs))
			fmt.Printf("%-34s  %-22s  %s\n", s.Name, kind, s.Description)
			continue
		}
		r := m.Resolved()
		kind := fmt.Sprintf("%s/%s", r.Runtime, r.Algorithm)
		fmt.Printf("%-34s  %-22s  %s\n", r.Name, kind, m.Description)
	}
}
