// Command netmax-live runs NetMax as a real concurrent process group: live
// goroutine workers exchanging models (optionally over loopback TCP with
// the persistent binary wire protocol) under a wall-clock Network Monitor —
// the system-shaped counterpart to the discrete-event simulation used by
// netmax-bench. Model pulls go through a pluggable compression codec.
//
//	netmax-live -workers 4 -seconds 5
//	netmax-live -workers 4 -seconds 5 -tcp
//	netmax-live -tcp -codec float32
//	netmax-live -tcp -codec topk -topk 0.1
//	netmax-live -crash 2 -crash-at 1.5 -rejoin-at 3    # kill worker 2 mid-run
//	netmax-live -scenario scenarios/live-local-heterogeneous.json
//
// -scenario replaces the flag soup with a declarative manifest (runtime
// "live"; see internal/scenario): the run is configured entirely from the
// file and its resolved form is written next to the results.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"netmax/internal/codec"
	"netmax/internal/data"
	"netmax/internal/live"
	"netmax/internal/nn"
	"netmax/internal/scenario"
	"netmax/internal/transport"
)

// runScenario executes a live-runtime manifest and prints the same stats
// block as the flag path.
func runScenario(path string, quick bool, out string) {
	if raw, err := os.ReadFile(path); err == nil && scenario.IsSuite(raw) {
		fmt.Fprintln(os.Stderr, "error: netmax-live runs single-run manifests; use netmax-scenario run for suite files")
		os.Exit(2)
	}
	m, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	// Banner from the configuration that will actually run: quick
	// overrides applied first, defaults made explicit once.
	banner := m
	if quick {
		banner = m.ApplyQuick()
	}
	r := banner.Resolved()
	if r.Runtime != "live" {
		fmt.Fprintln(os.Stderr, "error: netmax-live runs live-runtime scenarios; use netmax-bench -scenario (or netmax-scenario run) for engine manifests")
		os.Exit(2)
	}
	fmt.Printf("Running scenario %q: %d live workers over %s (codec: %s, adaptive policy: %v)...\n",
		r.Name, r.Workers, r.Live.Transport, codecName(r), !r.Live.Uniform)
	rep, err := scenario.Run(m, scenario.RunOptions{Quick: quick, OutDir: out})
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	printStats(rep.Live, codecName(r))
	if rep.Dir != "" {
		fmt.Printf("outputs written to %s\n", rep.Dir)
	}
}

func codecName(r *scenario.Manifest) string {
	if r.Codec == nil {
		return "raw"
	}
	return r.Codec.Name
}

// printStats renders a live run's stats block; both the flag path and the
// scenario path go through it so the two output formats cannot diverge.
func printStats(stats *live.Stats, codec string) {
	fmt.Printf("iterations per worker: %v\n", stats.IterationsPerWorker)
	fmt.Printf("policy broadcasts:     %d\n", stats.PolicyVersions)
	fmt.Printf("model pulls:           %d\n", stats.Pulls)
	fmt.Printf("peer-down pulls:       %d\n", stats.PeerDownErrors)
	fmt.Printf("bytes on wire:         %d (%s codec)\n", stats.BytesOnWire, codec)
	fmt.Printf("final loss:            %.4f\n", stats.FinalLoss)
	fmt.Printf("final accuracy:        %.2f%%\n", 100*stats.FinalAccuracy)
}

func main() {
	var (
		workers   = flag.Int("workers", 4, "number of live workers")
		seconds   = flag.Float64("seconds", 5, "wall-clock training duration")
		tcp       = flag.Bool("tcp", false, "run the process group over loopback TCP (persistent binary wire protocol)")
		uniform   = flag.Bool("uniform", false, "disable the adaptive policy (AD-PSGD-style)")
		seed      = flag.Int64("seed", 1, "random seed")
		codecName = flag.String("codec", "raw", "model pull compression codec: "+strings.Join(codec.Names(), ", "))
		topkFrac  = flag.Float64("topk", codec.DefaultTopKFrac, "fraction of coordinates the topk codec keeps per pull")
		pullTO    = flag.Float64("pull-timeout", 2, "per-call pull deadline in seconds (0 disables)")
		crash     = flag.Int("crash", -1, "worker to crash mid-run (-1 disables)")
		crashAt   = flag.Float64("crash-at", 1, "crash time in seconds since start")
		rejoinAt  = flag.Float64("rejoin-at", 0, "rejoin time in seconds since start (<= crash-at means permanent)")
		scen      = flag.String("scenario", "", "live-runtime scenario manifest to run instead of flags")
		scenQuick = flag.Bool("quick", false, "with -scenario: apply the manifest's quick overrides")
		scenOut   = flag.String("out", "runs", "with -scenario: output directory (resolved manifest + results); empty disables file output")
	)
	flag.Parse()

	if *scen != "" {
		runScenario(*scen, *scenQuick, *scenOut)
		return
	}

	var cdc codec.Codec
	if *codecName == "topk" {
		cdc = codec.NewTopK(*topkFrac)
	} else {
		var err error
		cdc, err = codec.ByName(*codecName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(2)
		}
	}

	train, test := data.SynthMNIST.Generate(*seed)
	cfg := live.Config{
		Spec:        nn.SimMobileNet,
		Part:        data.Uniform(train, *workers, *seed),
		Test:        test,
		LR:          0.1,
		Batch:       16,
		Seed:        *seed,
		Ts:          400 * time.Millisecond,
		Duration:    time.Duration(*seconds * float64(time.Second)),
		Uniform:     *uniform,
		Codec:       cdc,
		PullTimeout: time.Duration(*pullTO * float64(time.Second)),
	}
	if cfg.PullTimeout == 0 {
		cfg.PullTimeout = -1 // flag semantics: 0 disables deadlines
	}
	if *crash >= 0 && *crash < *workers {
		cfg.Churn = []live.ChurnEvent{{
			Worker: *crash,
			At:     time.Duration(*crashAt * float64(time.Second)),
			Rejoin: time.Duration(*rejoinAt * float64(time.Second)),
		}}
		if *rejoinAt > *crashAt {
			fmt.Printf("churn: worker %d crashes at %.1fs, rejoins at %.1fs\n", *crash, *crashAt, *rejoinAt)
		} else {
			fmt.Printf("churn: worker %d leaves permanently at %.1fs\n", *crash, *crashAt)
		}
	}
	var hub live.Hub
	if *tcp {
		th, err := transport.NewTCPHub()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcp hub:", err)
			os.Exit(1)
		}
		defer th.Close()
		hub = th
		fmt.Printf("Running %d live workers over loopback TCP for %.1fs (codec: %s, adaptive policy: %v)...\n",
			*workers, *seconds, cdc.Name(), !*uniform)
	} else {
		ln := transport.NewLocalNet()
		// Emulate a heterogeneous network: workers {0,1} are "co-located"
		// (fast links), the rest are cross-machine (slower).
		ln.Latency = func(i, j int, _ time.Time) time.Duration {
			if (i < 2) == (j < 2) {
				return 1 * time.Millisecond
			}
			return 6 * time.Millisecond
		}
		hub = ln
		fmt.Printf("Running %d live workers in-process for %.1fs (codec: %s, adaptive policy: %v)...\n",
			*workers, *seconds, cdc.Name(), !*uniform)
	}
	stats := live.Run(context.Background(), cfg, hub)
	printStats(stats, cdc.Name())
}
