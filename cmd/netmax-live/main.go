// Command netmax-live runs NetMax as a real concurrent process group: live
// goroutine workers exchanging models (optionally over loopback TCP with
// the persistent binary wire protocol) under a wall-clock Network Monitor —
// the system-shaped counterpart to the discrete-event simulation used by
// netmax-bench. Model pulls go through a pluggable compression codec.
//
//	netmax-live -workers 4 -seconds 5
//	netmax-live -workers 4 -seconds 5 -tcp
//	netmax-live -tcp -codec float32
//	netmax-live -tcp -codec topk -topk 0.1
//	netmax-live -crash 2 -crash-at 1.5 -rejoin-at 3    # kill worker 2 mid-run
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"netmax/internal/codec"
	"netmax/internal/data"
	"netmax/internal/live"
	"netmax/internal/nn"
	"netmax/internal/transport"
)

func main() {
	var (
		workers   = flag.Int("workers", 4, "number of live workers")
		seconds   = flag.Float64("seconds", 5, "wall-clock training duration")
		tcp       = flag.Bool("tcp", false, "run the process group over loopback TCP (persistent binary wire protocol)")
		uniform   = flag.Bool("uniform", false, "disable the adaptive policy (AD-PSGD-style)")
		seed      = flag.Int64("seed", 1, "random seed")
		codecName = flag.String("codec", "raw", "model pull compression codec: "+strings.Join(codec.Names(), ", "))
		topkFrac  = flag.Float64("topk", codec.DefaultTopKFrac, "fraction of coordinates the topk codec keeps per pull")
		pullTO    = flag.Float64("pull-timeout", 2, "per-call pull deadline in seconds (0 disables)")
		crash     = flag.Int("crash", -1, "worker to crash mid-run (-1 disables)")
		crashAt   = flag.Float64("crash-at", 1, "crash time in seconds since start")
		rejoinAt  = flag.Float64("rejoin-at", 0, "rejoin time in seconds since start (<= crash-at means permanent)")
	)
	flag.Parse()

	var cdc codec.Codec
	if *codecName == "topk" {
		cdc = codec.NewTopK(*topkFrac)
	} else {
		var err error
		cdc, err = codec.ByName(*codecName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(2)
		}
	}

	train, test := data.SynthMNIST.Generate(*seed)
	cfg := live.Config{
		Spec:        nn.SimMobileNet,
		Part:        data.Uniform(train, *workers, *seed),
		Test:        test,
		LR:          0.1,
		Batch:       16,
		Seed:        *seed,
		Ts:          400 * time.Millisecond,
		Duration:    time.Duration(*seconds * float64(time.Second)),
		Uniform:     *uniform,
		Codec:       cdc,
		PullTimeout: time.Duration(*pullTO * float64(time.Second)),
	}
	if cfg.PullTimeout == 0 {
		cfg.PullTimeout = -1 // flag semantics: 0 disables deadlines
	}
	if *crash >= 0 && *crash < *workers {
		cfg.Churn = []live.ChurnEvent{{
			Worker: *crash,
			At:     time.Duration(*crashAt * float64(time.Second)),
			Rejoin: time.Duration(*rejoinAt * float64(time.Second)),
		}}
		if *rejoinAt > *crashAt {
			fmt.Printf("churn: worker %d crashes at %.1fs, rejoins at %.1fs\n", *crash, *crashAt, *rejoinAt)
		} else {
			fmt.Printf("churn: worker %d leaves permanently at %.1fs\n", *crash, *crashAt)
		}
	}
	var hub live.Hub
	if *tcp {
		th, err := transport.NewTCPHub()
		if err != nil {
			fmt.Fprintln(os.Stderr, "tcp hub:", err)
			os.Exit(1)
		}
		defer th.Close()
		hub = th
		fmt.Printf("Running %d live workers over loopback TCP for %.1fs (codec: %s, adaptive policy: %v)...\n",
			*workers, *seconds, cdc.Name(), !*uniform)
	} else {
		ln := transport.NewLocalNet()
		// Emulate a heterogeneous network: workers {0,1} are "co-located"
		// (fast links), the rest are cross-machine (slower).
		ln.Latency = func(i, j int, _ time.Time) time.Duration {
			if (i < 2) == (j < 2) {
				return 1 * time.Millisecond
			}
			return 6 * time.Millisecond
		}
		hub = ln
		fmt.Printf("Running %d live workers in-process for %.1fs (codec: %s, adaptive policy: %v)...\n",
			*workers, *seconds, cdc.Name(), !*uniform)
	}
	stats := live.Run(context.Background(), cfg, hub)

	fmt.Printf("iterations per worker: %v\n", stats.IterationsPerWorker)
	fmt.Printf("policy broadcasts:     %d\n", stats.PolicyVersions)
	fmt.Printf("model pulls:           %d\n", stats.Pulls)
	fmt.Printf("peer-down pulls:       %d\n", stats.PeerDownErrors)
	fmt.Printf("bytes on wire:         %d (%s codec)\n", stats.BytesOnWire, cdc.Name())
	fmt.Printf("final loss:            %.4f\n", stats.FinalLoss)
	fmt.Printf("final accuracy:        %.2f%%\n", 100*stats.FinalAccuracy)
}
