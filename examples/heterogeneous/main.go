// Heterogeneous multi-tenant cluster scenario (the paper's Section I
// motivation): a dynamic network where one link at a time is slowed 2-100x
// and the slow link moves periodically. Runs the full comparison set and
// prints the Fig. 5-style epoch-time decomposition plus Fig. 8-style
// convergence-time speedups.
//
//	go run ./examples/heterogeneous
//	go run ./examples/heterogeneous -quick
package main

import (
	"flag"
	"fmt"

	"netmax"
)

func main() {
	quick := flag.Bool("quick", false, "tiny run for smoke tests")
	flag.Parse()
	train, test := netmax.Dataset(netmax.SynthCIFAR10, 1)
	workers, epochs := 8, 30
	if *quick {
		workers, epochs = 4, 3
	}

	type run struct {
		name string
		f    func(*netmax.Config) *netmax.Result
	}
	runs := []run{
		{"Prague", netmax.TrainPrague},
		{"Allreduce", netmax.TrainAllreduce},
		{"AD-PSGD", netmax.TrainADPSGD},
		{"NetMax", func(c *netmax.Config) *netmax.Result { return netmax.Train(c, netmax.Options{}) }},
	}

	fmt.Printf("%-10s  %12s  %12s  %12s  %9s\n", "approach", "epoch time", "comp cost", "comm cost", "accuracy")
	var results []*netmax.Result
	for _, r := range runs {
		cfg := netmax.ClusterConfig(netmax.SimResNet18, train, test, workers, epochs, 1)
		// Lower LR keeps per-epoch convergence comparable across approaches
		// on the synthetic substrate (a documented deviation from the
		// paper's settings; see docs/ARCHITECTURE.md on the substrate),
		// so the time-to-loss section isolates the communication effect.
		cfg.LR = 0.03
		res := r.f(cfg)
		results = append(results, res)
		fmt.Printf("%-10s  %10.1fs  %10.2fs  %10.2fs  %8.2f%%\n",
			r.name, res.AvgEpochTime(), res.CompCostPerEpoch(workers),
			res.CommCostPerEpoch(workers), 100*res.FinalAccuracy)
	}

	nm := results[len(results)-1]
	target := 0.0
	for _, r := range results {
		if r.FinalLoss > target {
			target = r.FinalLoss
		}
	}
	target *= 1.1
	fmt.Printf("\ntime to reach loss %.3f:\n", target)
	for i, r := range results {
		t := r.TimeToLoss(target)
		note := ""
		if runs[i].name != "NetMax" && t > 0 && nm.TimeToLoss(target) > 0 {
			note = fmt.Sprintf("  (NetMax %.2fx faster)", t/nm.TimeToLoss(target))
		}
		fmt.Printf("  %-10s %8.1fs%s\n", runs[i].name, t, note)
	}
}
