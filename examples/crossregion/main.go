// Cross-region WAN training (the paper's Appendix G / Fig. 19): six workers
// in six cloud regions with up-to-12x link-speed spread and region-specific
// label skew (Table VII) train MobileNet; NetMax is compared with AD-PSGD
// and both parameter-server variants.
//
//	go run ./examples/crossregion
//	go run ./examples/crossregion -quick
package main

import (
	"flag"
	"fmt"

	"netmax"
	"netmax/internal/data"
	"netmax/internal/simnet"
)

func main() {
	quick := flag.Bool("quick", false, "tiny run for smoke tests")
	flag.Parse()
	epochs := 25
	if *quick {
		epochs = 3 // six regions are fixed by the WAN matrix; only time shrinks
	}
	train, test := netmax.Dataset(netmax.SynthMNIST, 1)

	mkCfg := func() *netmax.Config {
		cfg := netmax.ClusterConfig(netmax.SimMobileNet, train, test, 6, epochs, 1)
		cfg.Net = simnet.NewCrossRegion()
		cfg.Part = data.LabelSkew(train, data.TableVIISkew(), 1)
		cfg.Batch = 8
		cfg.LR = 0.05
		cfg.LRDecayEpoch = 0
		return cfg
	}

	fmt.Println("Regions:", simnet.Regions)
	fmt.Println("Label skew (Table VII): lost labels per region")
	for w, lost := range data.TableVIISkew() {
		fmt.Printf("  %-10s %v\n", simnet.Regions[w], lost)
	}

	fmt.Println("\nTraining across regions...")
	type run struct {
		name string
		res  *netmax.Result
	}
	results := []run{
		{"NetMax", netmax.Train(mkCfg(), netmax.Options{})},
		{"AD-PSGD", netmax.TrainADPSGD(mkCfg())},
		{"PS-asyn", netmax.TrainPSAsync(mkCfg())},
		{"PS-syn", netmax.TrainPSSync(mkCfg())},
	}
	fmt.Printf("\n%-8s  %12s  %9s\n", "approach", "total time", "accuracy")
	for _, r := range results {
		fmt.Printf("%-8s  %10.1fs  %8.2f%%\n", r.name, r.res.TotalTime, 100*r.res.FinalAccuracy)
	}
	nm := results[0].res
	fmt.Println()
	for _, r := range results[1:] {
		fmt.Printf("NetMax %.2fx faster than %s (same epochs)\n", r.res.TotalTime/nm.TotalTime, r.name)
	}
}
