// Compression-vs-accuracy scenario: the same live NetMax group trained
// under each wire codec, comparing bytes-on-wire against final accuracy —
// the communication-efficiency experiment the NetMax setting motivates but
// the paper's testbed could not vary. A second table runs the
// discrete-event engine on the heterogeneous cluster so the codecs' effect
// on *virtual* wall-clock (with MobileNet-scale transfers) is visible too.
//
//	go run ./examples/compression
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"netmax"
	"netmax/internal/codec"
	"netmax/internal/data"
	"netmax/internal/live"
	"netmax/internal/nn"
	"netmax/internal/transport"
)

func main() {
	quick := flag.Bool("quick", false, "tiny run for smoke tests")
	flag.Parse()
	workers, iters := 4, 150
	simWorkers, epochs := 8, 10
	if *quick {
		iters = 30
		simWorkers, epochs = 4, 2
	}
	codecs := []codec.Codec{
		codec.Raw{},
		codec.Float32{},
		codec.NewTopK(0.25),
		codec.NewTopK(0.10),
	}
	label := func(c codec.Codec) string {
		if tk, ok := c.(codec.TopK); ok {
			return fmt.Sprintf("topk %.0f%%", 100*tk.Frac)
		}
		return c.Name()
	}

	// --- live runtime: real goroutine workers, SynthMNIST on SimMobileNet ---
	fmt.Printf("live group: %d workers x %d iterations, SynthMNIST, %s stand-in\n\n",
		workers, iters, nn.SimMobileNet.Name)
	fmt.Printf("%-10s  %14s  %10s  %10s  %9s\n", "codec", "bytes on wire", "vs raw", "pulls", "accuracy")
	var rawBytes float64
	for _, c := range codecs {
		train, test := data.SynthMNIST.Generate(1)
		cfg := live.Config{
			Spec:       nn.SimMobileNet,
			Part:       data.Uniform(train, workers, 1),
			Test:       test,
			LR:         0.1,
			Batch:      16,
			Seed:       7,
			Ts:         50 * time.Millisecond,
			Iterations: iters,
			Codec:      c,
		}
		stats := live.Run(context.Background(), cfg, transport.NewLocalNet())
		perPull := float64(stats.BytesOnWire) / float64(stats.Pulls)
		if _, ok := c.(codec.Raw); ok {
			rawBytes = perPull
		}
		fmt.Printf("%-10s  %14d  %9.1fx  %10d  %8.2f%%\n",
			label(c), stats.BytesOnWire, rawBytes/perPull, stats.Pulls, 100*stats.FinalAccuracy)
	}

	// --- discrete-event engine: MobileNet-scale transfers on the paper's
	// heterogeneous cluster, so compression moves the virtual clock ---
	fmt.Printf("\nsimulated cluster: %d workers x %d epochs, %s (%d MB raw pulls), dynamic slow link\n\n",
		simWorkers, epochs, nn.SimMobileNet.Name, nn.SimMobileNet.ModelBytes()*2/1_000_000)
	fmt.Printf("%-10s  %14s  %12s  %12s  %9s\n", "codec", "bytes on wire", "vs raw", "total time", "accuracy")
	var rawTotal float64
	for _, c := range codecs {
		train, test := netmax.Dataset(netmax.SynthMNIST, 1)
		cfg := netmax.ClusterConfig(netmax.SimMobileNet, train, test, simWorkers, epochs, 1)
		cfg.Codec = c
		res := netmax.Train(cfg, netmax.Options{})
		if _, ok := c.(codec.Raw); ok {
			rawTotal = float64(res.BytesSent)
		}
		fmt.Printf("%-10s  %14d  %11.1fx  %11.1fs  %8.2f%%\n",
			label(c), res.BytesSent, rawTotal/float64(res.BytesSent), res.TotalTime, 100*res.FinalAccuracy)
	}
}
