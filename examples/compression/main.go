// Compression-vs-accuracy scenario: the same NetMax group trained under
// each wire codec, comparing bytes-on-wire against final accuracy — the
// communication-efficiency experiment the NetMax setting motivates but the
// paper's testbed could not vary. The first table runs the live runtime
// (real goroutine workers over the in-process transport); the second runs
// the discrete-event engine on the heterogeneous cluster so the codecs'
// effect on *virtual* wall-clock (with MobileNet-scale transfers) is
// visible too.
//
// Both tables are driven by declarative scenario manifests
// (internal/scenario) — the same schema as the checked-in
// scenarios/compression-* and scenarios/live-* library files — with only
// the codec block varying between rows.
//
//	go run ./examples/compression
//	go run ./examples/compression -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"netmax/internal/scenario"
)

func main() {
	quick := flag.Bool("quick", false, "tiny run for smoke tests")
	flag.Parse()
	workers, iters := 4, 150
	simWorkers, epochs := 8, 10
	if *quick {
		iters = 30
		simWorkers, epochs = 4, 2
	}
	codecs := []*scenario.CodecSpec{
		{Name: "raw"},
		{Name: "float32"},
		{Name: "topk", TopKFrac: 0.25},
		{Name: "topk", TopKFrac: 0.10},
	}
	label := func(c *scenario.CodecSpec) string {
		if c.Name == "topk" {
			return fmt.Sprintf("topk %.0f%%", 100*c.TopKFrac)
		}
		return c.Name
	}
	slug := func(c *scenario.CodecSpec) string {
		if c.Name == "topk" {
			return fmt.Sprintf("topk%.0f", 100*c.TopKFrac)
		}
		return c.Name
	}
	run := func(m *scenario.Manifest) *scenario.Report {
		rep, err := scenario.Run(m, scenario.RunOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return rep
	}

	// --- live runtime: real goroutine workers, SynthMNIST on SimMobileNet ---
	fmt.Printf("live group: %d workers x %d iterations, MNIST, MobileNet stand-in\n\n", workers, iters)
	fmt.Printf("%-10s  %14s  %10s  %10s  %9s\n", "codec", "bytes on wire", "vs raw", "pulls", "accuracy")
	var rawBytes float64
	for _, c := range codecs {
		m := &scenario.Manifest{
			Name:    "compression-live-" + slug(c),
			Runtime: "live",
			Model:   "MobileNet",
			Dataset: "MNIST",
			Workers: workers,
			Codec:   c,
			Live:    &scenario.LiveSpec{Iterations: iters, TsMillis: 50},
		}
		stats := run(m).Live
		perPull := float64(stats.BytesOnWire) / float64(stats.Pulls)
		if c.Name == "raw" {
			rawBytes = perPull
		}
		fmt.Printf("%-10s  %14d  %9.1fx  %10d  %8.2f%%\n",
			label(c), stats.BytesOnWire, rawBytes/perPull, stats.Pulls, 100*stats.FinalAccuracy)
	}

	// --- discrete-event engine: MobileNet-scale transfers on the paper's
	// heterogeneous cluster, so compression moves the virtual clock ---
	fmt.Printf("\nsimulated cluster: %d workers x %d epochs, MobileNet (~8 MB raw pulls), dynamic slow link\n\n",
		simWorkers, epochs)
	fmt.Printf("%-10s  %14s  %12s  %12s  %9s\n", "codec", "bytes on wire", "vs raw", "total time", "accuracy")
	var rawTotal float64
	for _, c := range codecs {
		m := &scenario.Manifest{
			Name:         "compression-sim-" + slug(c),
			Model:        "MobileNet",
			Dataset:      "MNIST",
			Workers:      simWorkers,
			Epochs:       epochs,
			LRDecayEpoch: epochs * 7 / 10,
			Codec:        c,
		}
		res := run(m).Engine
		if c.Name == "raw" {
			rawTotal = float64(res.BytesSent)
		}
		fmt.Printf("%-10s  %14d  %11.1fx  %11.1fs  %8.2f%%\n",
			label(c), res.BytesSent, rawTotal/float64(res.BytesSent), res.TotalTime, 100*res.FinalAccuracy)
	}
}
