// Non-IID scenario (the paper's Section V-F / Fig. 18): eight workers train
// MobileNet on MNIST where each worker is missing three digit classes
// entirely (Table IV). Shows that NetMax's 1/p-weighted consensus keeps
// information flowing from rarely-contacted peers, preserving accuracy.
//
//	go run ./examples/noniid
//	go run ./examples/noniid -quick
package main

import (
	"flag"
	"fmt"

	"netmax"
	"netmax/internal/data"
)

func main() {
	quick := flag.Bool("quick", false, "tiny run for smoke tests")
	flag.Parse()
	epochs := 25
	if *quick {
		epochs = 3 // the Table IV skew needs all 8 workers; only time shrinks
	}
	train, test := netmax.Dataset(netmax.SynthMNIST, 1)

	mkCfg := func() *netmax.Config {
		cfg := netmax.ClusterConfig(netmax.SimMobileNet, train, test, 8, epochs, 1)
		// Table IV: workers on server 1 never see digits {0,1,x}; workers
		// on server 2 never see {5,6,y}.
		cfg.Part = data.LabelSkew(train, data.TableIVSkew(), 1)
		cfg.Batch = 8
		cfg.LR = 0.05
		cfg.LRDecayEpoch = 0
		return cfg
	}

	fmt.Println("Label skew (Table IV): lost labels per worker")
	for w, lost := range data.TableIVSkew() {
		fmt.Printf("  w%d: %v\n", w, lost)
	}

	fmt.Println("\nTraining on the non-IID partition, heterogeneous network...")
	nm := netmax.Train(mkCfg(), netmax.Options{})
	ad := netmax.TrainADPSGD(mkCfg())
	ar := netmax.TrainAllreduce(mkCfg())

	fmt.Printf("\n%-10s total=%8.1fs  acc=%5.2f%%\n", "NetMax", nm.TotalTime, 100*nm.FinalAccuracy)
	fmt.Printf("%-10s total=%8.1fs  acc=%5.2f%%\n", "AD-PSGD", ad.TotalTime, 100*ad.FinalAccuracy)
	fmt.Printf("%-10s total=%8.1fs  acc=%5.2f%%\n", "Allreduce", ar.TotalTime, 100*ar.FinalAccuracy)
	fmt.Println("\n(The paper reports ~93% MNIST accuracy under this skew — well below")
	fmt.Println(" the ~99% IID baseline — with NetMax fastest to converge.)")
}
