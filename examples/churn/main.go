// Churn: survive a dynamic world. Workers crash, rejoin, hang, and lose
// links mid-training; the scenario table compares NetMax (adaptive policy +
// monitor liveness tracking) against uniform AD-PSGD on identical failure
// schedules, and the reconvergence trace shows the consensus loss dipping
// at the crash and recovering after the rejoin.
//
// Every run in the table is driven by a declarative scenario manifest
// (internal/scenario) — the same schema as the checked-in scenarios/churn-*
// library files — built programmatically here because the failure windows
// are calibrated against the clean run's measured horizon.
//
//	go run ./examples/churn
//	go run ./examples/churn -quick
package main

import (
	"flag"
	"fmt"
	"os"

	"netmax/internal/engine"
	"netmax/internal/scenario"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "tiny run for smoke tests")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	workers, epochs := 8, 8
	model, dataset := "ResNet18", "CIFAR10"
	if *quick {
		workers, epochs = 4, 3
		model, dataset = "MobileNet", "MNIST"
	}

	// Base manifest: a static network isolates the churn effects from the
	// moving-slow-link dynamics of the default cluster schedule. The same
	// base with the same failure block as scenarios/churn-*.json.
	base := func(name, algo string, fs *scenario.FailureSpec) *scenario.Manifest {
		m := &scenario.Manifest{
			Name:      name,
			Algorithm: algo,
			Model:     model,
			Dataset:   dataset,
			Workers:   workers,
			Epochs:    epochs,
			Seed:      *seed,
			Network:   &scenario.NetworkSpec{Kind: "static"},
			Failures:  fs,
		}
		if algo == "netmax" {
			m.NetMax = &scenario.NetMaxSpec{TsSecs: 2.4, StalePeriods: 2}
		}
		return m
	}
	run := func(m *scenario.Manifest) *engine.Result {
		rep, err := scenario.Run(m, scenario.RunOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			os.Exit(1)
		}
		return rep.Engine
	}

	// Calibrate the failure windows against a clean NetMax run.
	clean := run(base("churn-clean", "netmax", nil))
	horizon := clean.TotalTime

	const detect = 0.5 // simulated pull deadline (virtual seconds)
	crashSpec := &scenario.FailureSpec{
		DetectSecs: detect,
		Events: []scenario.FailureEvent{
			{Kind: "crash", Worker: 1, At: 0.25 * horizon, Rejoin: 0.55 * horizon},
		},
	}
	scenarios := []struct {
		name string
		fs   *scenario.FailureSpec
	}{
		{"clean", nil},
		{"crash+rejoin", crashSpec},
		{"hang", &scenario.FailureSpec{
			DetectSecs: detect,
			Events: []scenario.FailureEvent{
				{Kind: "hang", Worker: 1, At: 0.25 * horizon, Until: 0.55 * horizon},
			},
		}},
		{"blackout", &scenario.FailureSpec{
			DetectSecs: detect,
			Events: []scenario.FailureEvent{
				{Kind: "blackout", A: 0, B: 1, At: 0.25 * horizon, Until: 0.75 * horizon},
			},
		}},
		{"churn x2", &scenario.FailureSpec{
			DetectSecs: detect,
			RandomChurn: &scenario.RandomChurnSpec{
				HorizonSecs:      horizon,
				CrashesPerWorker: 2,
				MeanDownSecs:     0.1 * horizon,
			},
		}},
	}

	fmt.Printf("churn scenario table: %d workers, %d epochs, detect deadline %.1fs\n\n", workers, epochs, detect)
	fmt.Printf("%-14s  %-10s  %9s  %10s  %7s\n", "scenario", "algo", "acc", "wall-clock", "steps")
	type runPair struct {
		name string
		nm   *engine.Result
		ad   *engine.Result
	}
	var runs []runPair
	for _, sc := range scenarios {
		nm := run(base("churn-"+sc.name+"-netmax", "netmax", sc.fs))
		ad := run(base("churn-"+sc.name+"-adpsgd", "adpsgd", sc.fs))
		runs = append(runs, runPair{sc.name, nm, ad})
		fmt.Printf("%-14s  %-10s  %8.2f%%  %9.1fs  %7d\n", sc.name, "NetMax", 100*nm.FinalAccuracy, nm.TotalTime, nm.GlobalSteps)
		fmt.Printf("%-14s  %-10s  %8.2f%%  %9.1fs  %7d\n", "", "AD-PSGD", 100*ad.FinalAccuracy, ad.TotalTime, ad.GlobalSteps)
	}

	// Reconvergence trace: the consensus loss (virtual time, value) around
	// the crash window. Losses are comparable at equal TIME, not equal
	// epoch — an epoch costs uniform selection more wall-clock.
	fmt.Printf("\ncrash+rejoin reconvergence (worker 1 down %.1fs..%.1fs):\n", 0.25*horizon, 0.55*horizon)
	fmt.Printf("%8s  %22s  %22s\n", "epoch", "NetMax (t, loss)", "AD-PSGD (t, loss)")
	cr := runs[1]
	for i := range cr.nm.Curve {
		ad := "-"
		if i < len(cr.ad.Curve) {
			ad = fmt.Sprintf("%9.1fs  %10.4f", cr.ad.Curve[i].Time, cr.ad.Curve[i].Value)
		}
		fmt.Printf("%8.0f  %9.1fs  %10.4f  %s\n", cr.nm.Curve[i].Epoch, cr.nm.Curve[i].Time, cr.nm.Curve[i].Value, ad)
	}
	target := 2 * clean.FinalLoss
	fmt.Printf("\ntime to consensus loss <= %.4f under crash+rejoin: NetMax %.1fs, AD-PSGD %.1fs\n",
		target, cr.nm.TimeToLoss(target), cr.ad.TimeToLoss(target))

	// Wall-clock penalty of undetectable failures: uniform selection keeps
	// paying the detection deadline at the hung worker; the adaptive
	// policy routes around it once the EMA inflates.
	hang := runs[2]
	fmt.Printf("\nhang wall-clock: NetMax %.1fs vs AD-PSGD %.1fs (clean %.1fs)\n",
		hang.nm.TotalTime, hang.ad.TotalTime, clean.TotalTime)
	if hang.ad.TotalTime > 0 && hang.nm.TotalTime < hang.ad.TotalTime {
		fmt.Printf("adaptive routing cut the hang penalty by %.1f%%\n",
			100*(1-hang.nm.TotalTime/hang.ad.TotalTime))
	}
}
