// Churn: survive a dynamic world. Workers crash, rejoin, hang, and lose
// links mid-training; the scenario table compares NetMax (adaptive policy +
// monitor liveness tracking) against uniform AD-PSGD on identical failure
// schedules, and the reconvergence trace shows the consensus loss dipping
// at the crash and recovering after the rejoin.
//
//	go run ./examples/churn
//	go run ./examples/churn -quick
package main

import (
	"flag"
	"fmt"

	"netmax"
	"netmax/internal/simnet"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "tiny run for smoke tests")
		seed  = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	workers, epochs := 8, 8
	spec, dataset := netmax.SimResNet18, netmax.SynthCIFAR10
	if *quick {
		workers, epochs = 4, 3
		spec, dataset = netmax.SimMobileNet, netmax.SynthMNIST
	}
	train, test := netmax.Dataset(dataset, *seed)

	baseCfg := func() *netmax.Config {
		cfg := netmax.ClusterConfig(spec, train, test, workers, epochs, *seed)
		// A static base network isolates the churn effects from the
		// moving-slow-link dynamics of the default cluster schedule.
		cfg.Net = simnet.NewStatic(simnet.PaperCluster(workers))
		cfg.LRDecayEpoch = 0
		return cfg
	}
	opts := netmax.Options{Ts: 2.4, StalePeriods: 2}

	// Calibrate the failure windows against a clean NetMax run.
	clean := netmax.Train(baseCfg(), opts)
	horizon := clean.TotalTime

	detect := 0.5 // simulated pull deadline (seconds of virtual time)
	mkSchedule := func(build func(s *simnet.FailureSchedule)) *simnet.FailureSchedule {
		s := simnet.NewFailureSchedule()
		s.DetectSecs = detect
		build(s)
		return s
	}
	scenarios := []struct {
		name string
		fs   *simnet.FailureSchedule
	}{
		{"clean", nil},
		{"crash+rejoin", mkSchedule(func(s *simnet.FailureSchedule) {
			s.Crash(1, 0.25*horizon, 0.55*horizon)
		})},
		{"hang", mkSchedule(func(s *simnet.FailureSchedule) {
			s.Hang(1, 0.25*horizon, 0.55*horizon)
		})},
		{"blackout", mkSchedule(func(s *simnet.FailureSchedule) {
			s.Blackout(0, 1, 0.25*horizon, 0.75*horizon)
		})},
		{"churn x2", func() *simnet.FailureSchedule {
			s := netmax.NewRandomChurn(workers, *seed, horizon, 2, 0.1*horizon)
			s.DetectSecs = detect
			return s
		}()},
	}

	fmt.Printf("churn scenario table: %d workers, %d epochs, detect deadline %.1fs\n\n", workers, epochs, detect)
	fmt.Printf("%-14s  %-10s  %9s  %10s  %7s\n", "scenario", "algo", "acc", "wall-clock", "steps")
	type run struct {
		name string
		nm   *netmax.Result
		ad   *netmax.Result
	}
	var runs []run
	for _, sc := range scenarios {
		cfgNM := baseCfg()
		cfgNM.Failures = sc.fs
		nm := netmax.Train(cfgNM, opts)
		cfgAD := baseCfg()
		cfgAD.Failures = sc.fs
		ad := netmax.TrainADPSGD(cfgAD)
		runs = append(runs, run{sc.name, nm, ad})
		fmt.Printf("%-14s  %-10s  %8.2f%%  %9.1fs  %7d\n", sc.name, "NetMax", 100*nm.FinalAccuracy, nm.TotalTime, nm.GlobalSteps)
		fmt.Printf("%-14s  %-10s  %8.2f%%  %9.1fs  %7d\n", "", "AD-PSGD", 100*ad.FinalAccuracy, ad.TotalTime, ad.GlobalSteps)
	}

	// Reconvergence trace: the consensus loss (virtual time, value) around
	// the crash window. Losses are comparable at equal TIME, not equal
	// epoch — an epoch costs uniform selection more wall-clock.
	fmt.Printf("\ncrash+rejoin reconvergence (worker 1 down %.1fs..%.1fs):\n", 0.25*horizon, 0.55*horizon)
	fmt.Printf("%8s  %22s  %22s\n", "epoch", "NetMax (t, loss)", "AD-PSGD (t, loss)")
	cr := runs[1]
	for i := range cr.nm.Curve {
		ad := "-"
		if i < len(cr.ad.Curve) {
			ad = fmt.Sprintf("%9.1fs  %10.4f", cr.ad.Curve[i].Time, cr.ad.Curve[i].Value)
		}
		fmt.Printf("%8.0f  %9.1fs  %10.4f  %s\n", cr.nm.Curve[i].Epoch, cr.nm.Curve[i].Time, cr.nm.Curve[i].Value, ad)
	}
	target := 2 * clean.FinalLoss
	fmt.Printf("\ntime to consensus loss <= %.4f under crash+rejoin: NetMax %.1fs, AD-PSGD %.1fs\n",
		target, cr.nm.TimeToLoss(target), cr.ad.TimeToLoss(target))

	// Wall-clock penalty of undetectable failures: uniform selection keeps
	// paying the detection deadline at the hung worker; the adaptive
	// policy routes around it once the EMA inflates.
	hang := runs[2]
	fmt.Printf("\nhang wall-clock: NetMax %.1fs vs AD-PSGD %.1fs (clean %.1fs)\n",
		hang.nm.TotalTime, hang.ad.TotalTime, clean.TotalTime)
	if hang.ad.TotalTime > 0 && hang.nm.TotalTime < hang.ad.TotalTime {
		fmt.Printf("adaptive routing cut the hang penalty by %.1f%%\n",
			100*(1-hang.nm.TotalTime/hang.ad.TotalTime))
	}
}
