// Quickstart: train a ResNet18-scale model with NetMax on a synthetic
// CIFAR10 across an 8-worker heterogeneous cluster, and compare against
// AD-PSGD on the identical workload.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -quick
package main

import (
	"flag"
	"fmt"

	"netmax"
)

func main() {
	quick := flag.Bool("quick", false, "tiny run for smoke tests")
	flag.Parse()
	workers, epochs := 8, 30
	if *quick {
		workers, epochs = 4, 3
	}

	train, test := netmax.Dataset(netmax.SynthCIFAR10, 1)

	cfg := netmax.ClusterConfig(netmax.SimResNet18, train, test, workers, epochs, 1)
	fmt.Printf("Training NetMax (%d workers, heterogeneous network)...\n", workers)
	nm := netmax.Train(cfg, netmax.Options{})

	cfg2 := netmax.ClusterConfig(netmax.SimResNet18, train, test, workers, epochs, 1)
	fmt.Println("Training AD-PSGD on the identical workload...")
	ad := netmax.TrainADPSGD(cfg2)

	fmt.Println("\nloss curve (virtual seconds -> loss):")
	for i := 0; i < len(nm.Curve); i += 5 {
		p := nm.Curve[i]
		fmt.Printf("  epoch %4.0f  t=%7.1fs  loss=%.4f\n", p.Epoch, p.Time, p.Value)
	}

	fmt.Printf("\n%-8s total=%7.1fs  acc=%5.2f%%  comm/epoch=%5.2fs\n",
		"NetMax", nm.TotalTime, 100*nm.FinalAccuracy, nm.CommCostPerEpoch(workers))
	fmt.Printf("%-8s total=%7.1fs  acc=%5.2f%%  comm/epoch=%5.2fs\n",
		"AD-PSGD", ad.TotalTime, 100*ad.FinalAccuracy, ad.CommCostPerEpoch(workers))
	fmt.Printf("\nNetMax epoch-time speedup over AD-PSGD: %.2fx\n", ad.TotalTime/nm.TotalTime)
}
