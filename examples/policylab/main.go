// Policylab: watch the communication-policy generator react to a link-speed
// change (the paper's Fig. 2 story). We feed the generator the iteration
// times of a 5-node network before and after a slowdown moves, and print how
// the probabilities shift.
//
//	go run ./examples/policylab
package main

import (
	"flag"
	"fmt"

	"netmax"
	"netmax/internal/simnet"
)

func printPolicy(label string, p *netmax.Policy) {
	fmt.Printf("%s: rho=%.3f lambda2=%.4f predicted Tconv=%.1fs\n", label, p.Rho, p.Lambda2, p.TConvergence)
	for i, row := range p.P {
		fmt.Printf("  w%d:", i)
		for _, v := range row {
			fmt.Printf(" %5.3f", v)
		}
		fmt.Println()
	}
}

func main() {
	// Accepted for CI uniformity: every example takes -quick, and this one
	// is already tiny (pure policy generation, no training loop).
	flag.Bool("quick", false, "no-op; the run is already tiny")
	flag.Parse()
	const m = 5
	adj := simnet.FullyConnected(m)
	mk := func() [][]float64 {
		t := make([][]float64, m)
		for i := range t {
			t[i] = make([]float64, m)
			for j := range t[i] {
				if i != j {
					t[i][j] = 1
				}
			}
		}
		return t
	}
	set := func(t [][]float64, i, j int, v float64) { t[i][j] = v; t[j][i] = v }

	// Time T1 (paper Fig. 2, left): node 2's links to 0 and 3 are slow,
	// its link to 1 is fast.
	t1 := mk()
	set(t1, 2, 0, 9)
	set(t1, 2, 3, 12)
	p1, err := netmax.GeneratePolicy(t1, adj, 0.1)
	if err != nil {
		panic(err)
	}
	printPolicy("T1 (links 2-0 and 2-3 slow)", p1)

	// Time T2 (Fig. 2, right): the previously fast link 2-1 turns slow too.
	t2 := mk()
	set(t2, 2, 0, 9)
	set(t2, 2, 3, 12)
	set(t2, 2, 1, 12)
	p2, err := netmax.GeneratePolicy(t2, adj, 0.1)
	if err != nil {
		panic(err)
	}
	printPolicy("\nT2 (link 2-1 slowed as well)", p2)

	fmt.Println("\nObservations:")
	fmt.Printf("  w2's pull probability toward w1: %.3f -> %.3f\n", p1.P[2][1], p2.P[2][1])
	fmt.Printf("  w2's skip-communication mass:    %.3f -> %.3f\n", p1.P[2][2], p2.P[2][2])
	fmt.Println("  A static policy computed at T1 (like SAPS-PSGD's subgraph) would")
	fmt.Println("  keep routing w2's pulls over the now-slow 2-1 link; the Network")
	fmt.Println("  Monitor re-runs this generator every Ts seconds instead.")
}
